//! Property tests across the full pipeline: randomly generated Lyra
//! programs must either compile to valid code or fail with a clean error,
//! and every successful compilation must uphold the placement invariants.

use lyra::{Compiler, CompileRequest};
use lyra_topo::{Layer, Topology};
use proptest::prelude::*;

/// A random but well-formed Lyra algorithm body.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign { dst: usize, a: usize, b: usize, op: usize },
    If { cond_var: usize, cmp_const: u8, then_assign: (usize, usize), has_else: bool },
    TableCheck { table: usize, key: usize, assign: (usize, usize) },
    GlobalBump { global: usize, idx: usize },
    ActionCall { which: usize },
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        (0usize..6, 0usize..6, 0usize..6, 0usize..6)
            .prop_map(|(dst, a, b, op)| GenStmt::Assign { dst, a, b, op }),
        (0usize..6, any::<u8>(), (0usize..6, 0usize..6), any::<bool>()).prop_map(
            |(cond_var, cmp_const, then_assign, has_else)| GenStmt::If {
                cond_var,
                cmp_const,
                then_assign,
                has_else
            }
        ),
        (0usize..2, 0usize..6, (0usize..6, 0usize..6))
            .prop_map(|(table, key, assign)| GenStmt::TableCheck { table, key, assign }),
        (0usize..2, 0usize..6).prop_map(|(global, idx)| GenStmt::GlobalBump { global, idx }),
        (0usize..3).prop_map(|which| GenStmt::ActionCall { which }),
    ]
}

fn render(stmts: &[GenStmt]) -> String {
    let var = |i: usize| format!("v{i}");
    let ops = ["+", "-", "&", "|", "^", "<<"];
    let actions = ["drop();", "copy_to_cpu();", "mirror(1);"];
    let mut body = String::new();
    for s in stmts {
        match s {
            GenStmt::Assign { dst, a, b, op } => {
                body.push_str(&format!(
                    "    {} = {} {} {};\n",
                    var(*dst),
                    var(*a),
                    ops[*op % ops.len()],
                    var(*b)
                ));
            }
            GenStmt::If { cond_var, cmp_const, then_assign, has_else } => {
                body.push_str(&format!("    if ({} == {cmp_const}) {{\n", var(*cond_var)));
                body.push_str(&format!(
                    "        {} = {} + 1;\n    }}\n",
                    var(then_assign.0),
                    var(then_assign.1)
                ));
                if *has_else {
                    body.push_str(&format!(
                        "    else {{\n        {} = 0;\n    }}\n",
                        var(then_assign.0)
                    ));
                }
            }
            GenStmt::TableCheck { table, key, assign } => {
                body.push_str(&format!("    if ({} in t{table}) {{\n", var(*key)));
                body.push_str(&format!(
                    "        {} = t{table}[{}];\n    }}\n",
                    var(assign.0),
                    var(*key)
                ));
            }
            GenStmt::GlobalBump { global, idx } => {
                body.push_str(&format!(
                    "    g{global}[{}] = g{global}[{}] + 1;\n",
                    var(*idx),
                    var(*idx)
                ));
            }
            GenStmt::ActionCall { which } => {
                body.push_str(&format!("    {}\n", actions[*which % actions.len()]));
            }
        }
    }
    format!(
        r#"
pipeline[GEN]{{generated}};
algorithm generated {{
    extern dict<bit[32] k, bit[32] v>[256] t0;
    extern dict<bit[32] k, bit[32] v>[256] t1;
    global bit[32][64] g0;
    global bit[32][64] g1;
{body}
}}
"#
    )
}

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("S1", Layer::ToR, asic);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_compile_and_validate(stmts in prop::collection::vec(gen_stmt(), 1..12)) {
        let program = render(&stmts);
        for asic in ["tofino-32q", "trident4", "silicon-one"] {
            let result = Compiler::new().native_backend().compile(&CompileRequest {
                program: &program,
                scopes: "generated: [ S1 | PER-SW | - ]",
                topology: single(asic),
            });
            match result {
                Ok(out) => {
                    // Generated code must pass structural validation.
                    let v = out.validate_all();
                    prop_assert!(v.is_ok(), "invalid code on {asic}: {:?}\nprogram:\n{program}\ncode:\n{}", v.err().map(|e| e.to_string()), out.artifacts[0].code);
                    // Placement covers the single switch.
                    prop_assert!(out.placement.used_switches() <= 1);
                }
                Err(e) => {
                    // Clean failures are acceptable (resource limits), panics
                    // are not — reaching here means no panic occurred.
                    let msg = e.to_string();
                    prop_assert!(!msg.is_empty());
                }
            }
        }
    }

    #[test]
    fn backends_agree_on_random_programs(stmts in prop::collection::vec(gen_stmt(), 1..8)) {
        let program = render(&stmts);
        let native = Compiler::new().native_backend().compile(&CompileRequest {
            program: &program,
            scopes: "generated: [ S1 | PER-SW | - ]",
            topology: single("tofino-32q"),
        });
        #[cfg(feature = "z3-backend")]
        {
            let z3 = Compiler::new().compile(&CompileRequest {
                program: &program,
                scopes: "generated: [ S1 | PER-SW | - ]",
                topology: single("tofino-32q"),
            });
            prop_assert_eq!(
                native.is_ok(),
                z3.is_ok(),
                "backends disagree on feasibility for:\n{}",
                program
            );
        }
        #[cfg(not(feature = "z3-backend"))]
        {
            let _ = native;
        }
    }
}
