//! Property tests across the full pipeline: randomly generated Lyra
//! programs must either compile to valid code or fail with a clean
//! diagnostic, and every successful compilation must uphold the placement
//! invariants.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set and failures reproduce from the printed case index.

use lyra::{CompileRequest, Compiler};
use lyra_topo::{Layer, Topology};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// A random but well-formed Lyra algorithm body.
#[derive(Debug, Clone)]
enum GenStmt {
    Assign {
        dst: usize,
        a: usize,
        b: usize,
        op: usize,
    },
    If {
        cond_var: usize,
        cmp_const: u8,
        then_assign: (usize, usize),
        has_else: bool,
    },
    TableCheck {
        table: usize,
        key: usize,
        assign: (usize, usize),
    },
    GlobalBump {
        global: usize,
        idx: usize,
    },
    ActionCall {
        which: usize,
    },
}

fn gen_stmt(rng: &mut Rng) -> GenStmt {
    match rng.below(5) {
        0 => GenStmt::Assign {
            dst: rng.below(6) as usize,
            a: rng.below(6) as usize,
            b: rng.below(6) as usize,
            op: rng.below(6) as usize,
        },
        1 => GenStmt::If {
            cond_var: rng.below(6) as usize,
            cmp_const: rng.below(256) as u8,
            then_assign: (rng.below(6) as usize, rng.below(6) as usize),
            has_else: rng.next() & 1 == 1,
        },
        2 => GenStmt::TableCheck {
            table: rng.below(2) as usize,
            key: rng.below(6) as usize,
            assign: (rng.below(6) as usize, rng.below(6) as usize),
        },
        3 => GenStmt::GlobalBump {
            global: rng.below(2) as usize,
            idx: rng.below(6) as usize,
        },
        _ => GenStmt::ActionCall {
            which: rng.below(3) as usize,
        },
    }
}

fn render(stmts: &[GenStmt]) -> String {
    let var = |i: usize| format!("v{i}");
    let ops = ["+", "-", "&", "|", "^", "<<"];
    let actions = ["drop();", "copy_to_cpu();", "mirror(1);"];
    let mut body = String::new();
    for s in stmts {
        match s {
            GenStmt::Assign { dst, a, b, op } => {
                body.push_str(&format!(
                    "    {} = {} {} {};\n",
                    var(*dst),
                    var(*a),
                    ops[*op % ops.len()],
                    var(*b)
                ));
            }
            GenStmt::If {
                cond_var,
                cmp_const,
                then_assign,
                has_else,
            } => {
                body.push_str(&format!("    if ({} == {cmp_const}) {{\n", var(*cond_var)));
                body.push_str(&format!(
                    "        {} = {} + 1;\n    }}\n",
                    var(then_assign.0),
                    var(then_assign.1)
                ));
                if *has_else {
                    body.push_str(&format!(
                        "    else {{\n        {} = 0;\n    }}\n",
                        var(then_assign.0)
                    ));
                }
            }
            GenStmt::TableCheck { table, key, assign } => {
                body.push_str(&format!("    if ({} in t{table}) {{\n", var(*key)));
                body.push_str(&format!(
                    "        {} = t{table}[{}];\n    }}\n",
                    var(assign.0),
                    var(*key)
                ));
            }
            GenStmt::GlobalBump { global, idx } => {
                body.push_str(&format!(
                    "    g{global}[{}] = g{global}[{}] + 1;\n",
                    var(*idx),
                    var(*idx)
                ));
            }
            GenStmt::ActionCall { which } => {
                body.push_str(&format!("    {}\n", actions[*which % actions.len()]));
            }
        }
    }
    format!(
        r#"
pipeline[GEN]{{generated}};
algorithm generated {{
    extern dict<bit[32] k, bit[32] v>[256] t0;
    extern dict<bit[32] k, bit[32] v>[256] t1;
    global bit[32][64] g0;
    global bit[32][64] g1;
{body}
}}
"#
    )
}

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("S1", Layer::ToR, asic);
    t
}

#[test]
fn random_programs_compile_and_validate() {
    let mut rng = Rng::new(0x5eed_2001);
    for case in 0..48 {
        let stmts: Vec<GenStmt> = (0..rng.range(1, 11)).map(|_| gen_stmt(&mut rng)).collect();
        let program = render(&stmts);
        for asic in ["tofino-32q", "trident4", "silicon-one"] {
            let result = Compiler::new()
                .native_backend()
                .compile(&CompileRequest::new(
                    &program,
                    "generated: [ S1 | PER-SW | - ]",
                    single(asic),
                ));
            match result {
                Ok(out) => {
                    // Generated code must pass structural validation.
                    let v = out.validate_all();
                    assert!(
                        v.is_ok(),
                        "case {case}: invalid code on {asic}: {:?}\nprogram:\n{program}\ncode:\n{}",
                        v.err().map(|e| e.to_string()),
                        out.artifacts[0].code
                    );
                    // Placement covers the single switch.
                    assert!(out.placement.used_switches() <= 1, "case {case}");
                }
                Err(e) => {
                    // Clean failures are acceptable (resource limits), panics
                    // are not — and every failure must carry a structured
                    // diagnostic.
                    assert!(
                        !e.diagnostics().is_empty(),
                        "case {case}: error without diagnostics on {asic}:\n{program}"
                    );
                }
            }
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let mut rng = Rng::new(0x5eed_2002);
    for case in 0..24 {
        let stmts: Vec<GenStmt> = (0..rng.range(1, 7)).map(|_| gen_stmt(&mut rng)).collect();
        let program = render(&stmts);
        let req = CompileRequest::new(
            &program,
            "generated: [ S1 | PER-SW | - ]",
            single("tofino-32q"),
        );
        let compile = || Compiler::new().native_backend().compile(&req);
        match (compile(), compile()) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.artifacts.len(), b.artifacts.len(), "case {case}");
                for (x, y) in a.artifacts.iter().zip(&b.artifacts) {
                    assert_eq!(x.code, y.code, "case {case}: nondeterministic codegen");
                }
                assert_eq!(
                    a.solver.decisions, b.solver.decisions,
                    "case {case}: nondeterministic search"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "case {case}: nondeterministic error"
                )
            }
            (a, b) => panic!(
                "case {case}: feasibility flapped: {:?} vs {:?}",
                a.map(|_| "ok"),
                b.map(|_| "ok")
            ),
        }
    }
}
