//! Cross-crate integration tests: the full compiler pipeline on the paper's
//! workloads and topologies, exercising both solver backends, code
//! generation, validation, and the placement invariants the paper's
//! correctness argument rests on.

use lyra::{CompileRequest, Compiler};
use lyra_apps::{figure9_corpus, programs};
use lyra_topo::{evaluation_testbed, figure1_network, Layer, Topology};

/// A single-switch topology with the given ASIC.
fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("ToR1", Layer::ToR, asic);
    t
}

/// Single-switch PER-SW scopes for every algorithm of a corpus entry.
fn single_scopes(entry_scopes: &str) -> String {
    entry_scopes
        .lines()
        .filter_map(|l| l.split(':').next())
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn corpus_compiles_to_every_programmable_asic() {
    for entry in figure9_corpus() {
        for asic in ["tofino-32q", "tofino-64q", "trident4", "silicon-one", "rmt"] {
            let out = Compiler::new()
                .compile(&CompileRequest::new(
                    &entry.source,
                    &single_scopes(&entry.scopes),
                    single(asic),
                ))
                .unwrap_or_else(|e| panic!("{} on {asic}: {e}", entry.name));
            assert_eq!(out.artifacts.len(), 1, "{} on {asic}", entry.name);
            let summaries = out
                .validate_all()
                .unwrap_or_else(|e| panic!("{} on {asic} invalid: {e}", entry.name));
            let s0 = &summaries[0].1;
            assert!(
                s0.tables + s0.registers + s0.actions >= 1,
                "{} on {asic}: empty program",
                entry.name
            );
        }
    }
}

#[test]
fn corpus_is_feasible_and_reports_solver_stats() {
    // Every corpus program fits a Tofino, and every compile reports the
    // solver effort it took to prove so.
    for entry in figure9_corpus() {
        let scopes = single_scopes(&entry.scopes);
        let native = Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                &entry.source,
                &scopes,
                single("tofino-32q"),
            ));
        assert!(
            native.is_ok(),
            "{} infeasible for native backend: {:?}",
            entry.name,
            native.err().map(|e| e.to_string())
        );
        let out = native.unwrap();
        assert!(
            out.solver.decisions > 0,
            "{}: no solver decisions recorded",
            entry.name
        );
        assert!(
            !out.utilization.is_empty(),
            "{}: no utilization recorded",
            entry.name
        );
    }
}

#[test]
fn per_sw_placement_replicates_everything() {
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            &programs::netcache(),
            "netcache: [ ToR* | PER-SW | - ]",
            evaluation_testbed(),
        ))
        .unwrap();
    assert_eq!(out.placement.used_switches(), 4);
    // Every copy is identical in shape.
    let usages: Vec<_> = out
        .placement
        .switches
        .values()
        .map(|p| (p.usage.tables, p.usage.registers, p.extern_entries.clone()))
        .collect();
    for u in &usages[1..] {
        assert_eq!(u, &usages[0], "PER-SW copies must be identical");
    }
}

#[test]
fn multi_sw_lb_respects_flow_paths() {
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            &programs::load_balancer(1_000_000),
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
            figure1_network(),
        ))
        .unwrap();
    // Invariant (eq. 16): along each of the four Agg→ToR paths, conn_table
    // shards sum to the full size.
    let topo = figure1_network();
    let entries = |sw: &str| -> u64 {
        out.placement
            .switches
            .get(sw)
            .and_then(|p| p.extern_entries.get("conn_table"))
            .copied()
            .unwrap_or(0)
    };
    let _ = topo;
    for agg in ["Agg3", "Agg4"] {
        for tor in ["ToR3", "ToR4"] {
            let total = entries(agg) + entries(tor);
            assert!(
                total >= 1_000_000,
                "path {agg}->{tor} covers only {total} conn_table entries"
            );
        }
    }
}

#[test]
fn oversized_table_splits_when_one_switch_cannot_hold_it() {
    // 4M entries exceed a single ASIC's ~3M capacity (§7.2), so the table
    // must split across layers.
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            &programs::load_balancer(4_000_000),
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
            figure1_network(),
        ))
        .expect("4M-entry LB must still be placeable by splitting");
    let holders: Vec<&String> = out
        .placement
        .switches
        .iter()
        .filter(|(_, p)| p.extern_entries.contains_key("conn_table"))
        .map(|(n, _)| n)
        .collect();
    assert!(
        holders.len() >= 2,
        "a 4M-entry table cannot fit one switch; holders: {holders:?}"
    );
    // The split produces bridge traffic: some switch forwards hit/miss info.
    let any_bridge = out
        .placement
        .switches
        .values()
        .any(|p| !p.carried_out.is_empty() || !p.carried_in.is_empty());
    assert!(
        any_bridge,
        "split tables require carried hit/miss information"
    );
}

#[test]
fn composition_single_switch_holds_five_algorithms() {
    let program = programs::service_chain();
    let algs = ["classifier", "firewall", "gateway", "chain_lb", "scheduler"];
    let scopes: String = algs
        .iter()
        .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n");
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            &program,
            &scopes,
            single("tofino-32q"),
        ))
        .expect("five algorithms fit one Tofino");
    let plan = out.placement.switches.get("ToR1").unwrap();
    assert_eq!(plan.instrs.len(), 5, "all five algorithms co-resident");
    // Prefix isolation (§7.3).
    for t in &plan.tables {
        assert!(algs.iter().any(|a| t.name.starts_with(a)), "{}", t.name);
    }
}

#[test]
fn generated_code_differs_per_language() {
    // The same program on Tofino vs Trident-4 produces different languages
    // with the NPL multi-lookup merge visible.
    let program = r#"
        pipeline[P]{f};
        algorithm f {
            extern list<bit[32] ip>[1024] check_ip;
            if (ipv4.src_ip in check_ip) { int_enable = 1; }
            if (ipv4.dst_ip in check_ip) { int_enable = 1; }
        }
    "#;
    let p4 = Compiler::new()
        .compile(&CompileRequest::new(
            program,
            "f: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .unwrap();
    let npl = Compiler::new()
        .compile(&CompileRequest::new(
            program,
            "f: [ ToR1 | PER-SW | - ]",
            single("trident4"),
        ))
        .unwrap();
    let p4_code = &p4.artifacts[0].code;
    let npl_code = &npl.artifacts[0].code;
    assert!(p4_code.contains("table "), "P4 output: {p4_code}");
    assert!(
        npl_code.contains("logical_table "),
        "NPL output: {npl_code}"
    );
    // Figure 2's point: NPL uses one logical table with two lookups.
    assert!(npl_code.contains("_LOOKUP0"), "{npl_code}");
    assert!(npl_code.contains("_LOOKUP1"), "{npl_code}");
    let npl_summary = lyra_codegen::validate(&npl.artifacts[0]).unwrap();
    assert_eq!(npl_summary.lookups, 2);
    let p4_summary = lyra_codegen::validate(&p4.artifacts[0]).unwrap();
    assert!(npl_summary.tables < p4_summary.tables);
}

#[test]
fn control_plane_stubs_cover_every_extern() {
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            &programs::load_balancer(1024),
            "loadbalancer: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .unwrap();
    let stub = &out.artifacts[0].control_plane;
    for table in ["conn_table", "vip_table"] {
        assert!(stub.contains(&format!("{table}_entry_set")), "{stub}");
        assert!(stub.contains(&format!("{table}_entry_get")), "{stub}");
        assert!(stub.contains(&format!("{table}_entry_delete")), "{stub}");
    }
}

#[test]
fn infeasible_networks_fail_cleanly() {
    // All programmable capacity removed → clean error, not a panic.
    let mut topo = Topology::new();
    topo.add_switch("Core1", Layer::Core, "tomahawk");
    let err = Compiler::new()
        .compile(&CompileRequest::new(
            "pipeline[P]{a}; algorithm a { x = 1; }",
            "a: [ Core* | PER-SW | - ]",
            topo,
        ))
        .unwrap_err();
    assert!(err.to_string().contains("programmable"));
}

#[test]
fn figure5a_wide_compare_splits_on_p416() {
    // `if (smac == dmac)` on 48-bit MACs must split on chips whose ALUs
    // compare at most 44/48 bits (Figure 5(a)).
    let program = r#"
        header_type ethernet_t {
            fields {
                bit[48] src_mac;
                bit[48] dst_mac;
            }
        }
        parser_node start { extract(ethernet); }
        pipeline[P]{cmp};
        algorithm cmp {
            if (ethernet.src_mac == ethernet.dst_mac) {
                drop();
            }
        }
    "#;
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            program,
            "cmp: [ ToR1 | PER-SW | - ]",
            single("silicon-one"),
        ))
        .unwrap();
    let code = &out.artifacts[0].code;
    assert!(
        code.contains("&&"),
        "48-bit comparison must split into slice comparisons:\n{code}"
    );
}

#[test]
fn recirculation_packs_long_chains() {
    // A dependency chain longer than the 12-stage Tofino 64Q pipeline:
    // infeasible in one pass, feasible with one recirculation (§8).
    let mut body = String::from("    v0 = ipv4.src_ip;\n");
    for i in 1..=14 {
        body.push_str(&format!("    c{i} = v{} == {i};\n", i - 1));
        body.push_str(&format!(
            "    if (c{i}) {{\n        v{i} = v{} + {i};\n    }}\n",
            i - 1
        ));
    }
    let program = format!("pipeline[P]{{deep}};\nalgorithm deep {{\n{body}}}\n");
    let req = |topology| CompileRequest::new(&program, "deep: [ ToR1 | PER-SW | - ]", topology);

    let without = Compiler::new()
        .native_backend()
        .compile(&req(single("tofino-64q")));
    assert!(
        without.is_err(),
        "a 15-table chain cannot fit 12 stages in one pass"
    );

    let with = Compiler::new()
        .native_backend()
        .with_recirculation(true)
        .compile(&req(single("tofino-64q")))
        .expect("recirculation doubles the usable depth");
    let code = &with.artifacts[0].code;
    assert!(
        code.contains("recirculate"),
        "second pass must be requested:\n{code}"
    );
}

#[test]
fn stage_detail_mode_places_tables_in_stages() {
    // The eqs. 13–15 encoding: dependent tables occupy strictly later
    // stages; everything still fits a Tofino for a moderate program.
    let program = r#"
        pipeline[P]{staged};
        algorithm staged {
            extern dict<bit[32] k1, bit[32] v1>[2048] first;
            extern dict<bit[32] k2, bit[32] v2>[2048] second;
            if (x in first) {
                y = first[x];
                if (y in second) {
                    z = second[y];
                }
            }
        }
    "#;
    let out = Compiler::new()
        .native_backend()
        .with_stage_detail(true)
        .compile(&CompileRequest::new(
            program,
            "staged: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .expect("stage-detail placement feasible");
    assert!(out.placement.switches["ToR1"].tables.len() >= 2);

    // And an over-deep chain still fails under stage detail on a shallow
    // chip (12 stages on Tofino 64Q).
    let mut body = String::from("    v0 = ipv4.src_ip;\n");
    for i in 1..=14 {
        body.push_str(&format!("    c{i} = v{} == {i};\n", i - 1));
        body.push_str(&format!(
            "    if (c{i}) {{\n        v{i} = v{} + {i};\n    }}\n",
            i - 1
        ));
    }
    let deep = format!("pipeline[P]{{deep}};\nalgorithm deep {{\n{body}}}\n");
    let err = Compiler::new()
        .native_backend()
        .with_stage_detail(true)
        .compile(&CompileRequest::new(
            &deep,
            "deep: [ ToR1 | PER-SW | - ]",
            single("tofino-64q"),
        ));
    assert!(err.is_err(), "15-deep chain cannot fit 12 stages");
}

#[test]
fn incremental_recompile_keeps_placement_stable() {
    // §8 "Synthesizing incremental changes": seeding the solver with the
    // previous placement keeps unchanged instructions where they were.
    let base = r#"
        pipeline[P]{inc};
        algorithm inc {
            extern dict<bit[32] k, bit[32] v>[512] table_a;
            bit[32] h;
            h = crc32_hash(ipv4.srcAddr);
            if (h in table_a) {
                ipv4.dstAddr = table_a[h];
            }
        }
    "#;
    // The change: one extra metadata assignment at the end.
    let changed = base.replace(
        "            if (h in table_a) {",
        "            md_extra = h + 1;\n            if (h in table_a) {",
    );
    let scopes = "inc: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";
    let first = Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(base, scopes, figure1_network()))
        .unwrap();
    let second = Compiler::new()
        .native_backend()
        .compile_incremental(
            &CompileRequest::new(&changed, scopes, figure1_network()),
            &first.placement,
        )
        .unwrap();
    // Every switch used before is still used, and extern shards stay put.
    for (sw, plan) in &first.placement.switches {
        if plan.instrs.is_empty() {
            continue;
        }
        let new_plan = second
            .placement
            .switches
            .get(sw)
            .unwrap_or_else(|| panic!("switch {sw} lost its program"));
        assert_eq!(
            plan.extern_entries, new_plan.extern_entries,
            "extern shards moved on {sw}"
        );
    }
}
