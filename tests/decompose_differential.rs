//! Differential testing of the datacenter-scale solve path: the default
//! accelerated profile (symmetry breaking + scope decomposition + warm
//! start) against the monolithic reference profile
//! (`SolveProfile::thorough`, every acceleration off) on seeded random
//! MULTI-SW placement problems over fat-tree pods.
//!
//! The accelerations are pure solver optimizations — they must never flip
//! a verdict. Every case compiles the same program, scopes, and topology
//! under both profiles and asserts SAT/UNSAT (compiles vs infeasible)
//! agreement, plus placement sanity when both succeed.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set and failures reproduce from the printed case index.

use lyra::{CompileError, CompileOutput, CompileRequest, Compiler, SolveProfile, SolverStrategy};
use lyra_topo::fat_tree_pod;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// A random MULTI-SW-friendly program: a couple of extern tables with
/// seeded sizes, compute, conditionals, and lookups. Oversized externs
/// (one case in four) push the pod past its aggregate SRAM so UNSAT
/// agreement is exercised too.
fn gen_program(rng: &mut Rng) -> String {
    let var = |i: u64| format!("v{i}");
    let ops = ["+", "-", "&", "|", "^"];
    let t0 = if rng.below(4) == 0 {
        rng.range(60_000_000, 90_000_000)
    } else {
        rng.range(64, 512)
    };
    let t1 = rng.range(64, 512);
    let n = rng.range(2, 7);
    let mut body = String::new();
    for _ in 0..n {
        match rng.below(5) {
            0 => body.push_str(&format!(
                "    {} = {} {} {};\n",
                var(rng.below(4)),
                var(rng.below(4)),
                ops[rng.below(ops.len() as u64) as usize],
                var(rng.below(4)),
            )),
            1 => body.push_str(&format!(
                "    if ({} > {}) {{\n        {} = {} + 1;\n    }}\n",
                var(rng.below(4)),
                rng.below(256),
                var(rng.below(4)),
                var(rng.below(4)),
            )),
            2 => {
                let t = rng.below(2);
                let k = var(rng.below(4));
                body.push_str(&format!(
                    "    if ({k} in t{t}) {{\n        {} = t{t}[{k}];\n    }}\n",
                    var(rng.below(4)),
                ));
            }
            3 => body.push_str(&format!(
                "    {} = crc32_hash({}, ipv4.srcAddr);\n",
                var(rng.below(4)),
                var(rng.below(4)),
            )),
            _ => body.push_str(&format!(
                "    ipv4.dstAddr = {} ^ ipv4.dstAddr;\n",
                var(rng.below(4)),
            )),
        }
    }
    format!(
        r#"
pipeline[GEN]{{generated}};
algorithm generated {{
    extern dict<bit[32] k, bit[32] v>[{t0}] t0;
    extern dict<bit[32] k, bit[32] v>[{t1}] t1;
{body}
}}
"#
    )
}

/// One MULTI-SW scope spanning the whole pod, Aggs to ToRs.
fn pod_scopes(k: usize) -> String {
    let aggs: Vec<String> = (1..=k / 2).map(|i| format!("Agg{i}")).collect();
    let tors: Vec<String> = (1..=k / 2).map(|i| format!("ToR{i}")).collect();
    format!(
        "generated: [ ToR*,Agg* | MULTI-SW | ({}->{}) ]",
        aggs.join(","),
        tors.join(",")
    )
}

enum Verdict {
    Placed(Box<CompileOutput>),
    Infeasible,
}

fn compile(case: usize, program: &str, scopes: &str, k: usize, profile: SolveProfile) -> Verdict {
    let topo = fat_tree_pod(k, "tofino-32q", "trident4");
    let req = CompileRequest::new(program, scopes, topo).with_solve_profile(profile);
    match Compiler::new().compile(&req) {
        Ok(out) => {
            assert!(
                out.degraded.is_none(),
                "case {case}: no limits set, nothing may degrade"
            );
            Verdict::Placed(Box::new(out))
        }
        // Resource infeasibility is the only legitimate failure for a
        // generated program that already passed the front end elsewhere.
        Err(CompileError::Synth(_)) => Verdict::Infeasible,
        Err(e) => panic!("case {case}: unexpected failure phase: {e}\n{program}"),
    }
}

/// The accelerated default profile and the monolithic reference agree on
/// every verdict over ≥200 seeded fat-tree instances (k=4 and k=8).
#[test]
fn accelerated_profile_agrees_with_monolithic_reference() {
    let mut rng = Rng::new(0x5eed_dec1);
    let mut placed = 0u64;
    let mut infeasible = 0u64;
    let mut cases_run = 0u64;
    for case in 0..200 {
        let k = if case % 8 == 7 { 8 } else { 4 };
        let program = gen_program(&mut rng);
        let scopes = pod_scopes(k);
        // Sequential on both sides: the diff isolates the accelerations
        // (symmetry breaking, decomposition, warm start), not race timing.
        let fast = compile(case, &program, &scopes, k, SolveProfile::fast());
        let reference = compile(
            case,
            &program,
            &scopes,
            k,
            SolveProfile::thorough().with_strategy(SolverStrategy::Sequential),
        );
        cases_run += 1;
        match (fast, reference) {
            (Verdict::Placed(a), Verdict::Placed(b)) => {
                placed += 1;
                for out in [&a, &b] {
                    assert!(
                        !out.placement.switches.is_empty(),
                        "case {case} (k={k}): empty placement\n{program}"
                    );
                    assert!(
                        !out.artifacts.is_empty(),
                        "case {case} (k={k}): no artifacts\n{program}"
                    );
                }
                // Both placements host every extern table in full across
                // each flow path — spot-check total entry conservation.
                for table in a.ir.externs.keys() {
                    let total = |o: &CompileOutput| -> u64 {
                        o.placement
                            .switches
                            .values()
                            .filter_map(|p| p.extern_entries.get(table))
                            .sum()
                    };
                    assert!(
                        (total(&a) > 0) == (total(&b) > 0),
                        "case {case} (k={k}): `{table}` hosted by one profile only\n{program}"
                    );
                }
            }
            (Verdict::Infeasible, Verdict::Infeasible) => infeasible += 1,
            (Verdict::Placed(_), Verdict::Infeasible) => panic!(
                "case {case} (k={k}): accelerated profile placed what the \
                 monolithic reference calls infeasible\n{program}"
            ),
            (Verdict::Infeasible, Verdict::Placed(_)) => {
                panic!("case {case} (k={k}): accelerations lost a feasible placement\n{program}")
            }
        }
    }
    assert!(cases_run >= 200, "only {cases_run} instances compiled");
    assert!(placed >= 100, "only {placed} SAT agreements explored");
    assert!(
        infeasible >= 20,
        "only {infeasible} UNSAT agreements explored"
    );
}
