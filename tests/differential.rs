//! Differential semantic-preservation tests.
//!
//! The compiler's core promise is that splitting a one-big-pipeline program
//! across switches does not change what happens to packets. These tests
//! check that promise directly with the IR reference interpreter:
//!
//! * **reference run** — execute the whole algorithm against the full
//!   extern tables;
//! * **placed run** — for each flow path of the solved placement, execute
//!   each switch's instruction subset in path order against that switch's
//!   table shard (values written upstream reach downstream switches
//!   through the shared packet state, which is exactly what the generated
//!   bridge header carries).
//!
//! Final packet state and fired effects must agree.

use lyra_ir::{execute, execute_all, frontend, DataPlaneState, InstrId, PacketState};
use lyra_lang::parse_scopes;
use lyra_synth::{synthesize, Backend, EncodeOptions};
use lyra_topo::{figure1_network, resolve_scope};

/// Deterministic xorshift64* PRNG (the workspace builds offline with no
/// external crates; seeded runs explore the identical case set).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Compile `program` under `scopes` on the Figure 1 network and return,
/// per flow path, the ordered per-switch instruction subsets plus the
/// per-switch extern entry counts.
struct Placed {
    alg: lyra_ir::IrAlgorithm,
    /// paths → [(switch name, instr subset)]
    paths: Vec<Vec<(String, Vec<InstrId>)>>,
    /// switch name → (extern → entry count)
    shards: std::collections::BTreeMap<String, std::collections::BTreeMap<String, u64>>,
}

fn place(program: &str, scopes: &str) -> Placed {
    let ir = frontend(program).expect("front-end");
    let topo = figure1_network();
    let specs = parse_scopes(scopes).expect("scopes");
    let resolved: Vec<_> = specs
        .iter()
        .map(|s| resolve_scope(&topo, s).unwrap())
        .collect();
    let result = synthesize(
        &ir,
        &topo,
        &resolved,
        &EncodeOptions::default(),
        &Backend::Native,
    )
    .expect("feasible");
    let alg = ir.algorithms[0].clone();
    let alg_name = alg.name.clone();
    let mut paths = Vec::new();
    for scope in &resolved {
        for path in &scope.paths {
            let mut hops = Vec::new();
            for &sw in path {
                let name = topo.switch(sw).name.clone();
                let instrs = result
                    .placement
                    .switches
                    .get(&name)
                    .and_then(|p| p.instrs.get(&alg_name))
                    .cloned()
                    .unwrap_or_default();
                hops.push((name, instrs));
            }
            paths.push(hops);
        }
    }
    let shards = result
        .placement
        .switches
        .iter()
        .map(|(n, p)| (n.clone(), p.extern_entries.clone()))
        .collect();
    Placed { alg, paths, shards }
}

/// Distribute table entries across switch shards according to the solved
/// per-switch counts, walking a path: the first `count` undealt keys go to
/// the first holder, and so on.
fn shard_tables(
    placed: &Placed,
    path: &[(String, Vec<InstrId>)],
    full: &DataPlaneState,
) -> Vec<DataPlaneState> {
    let mut dealt: std::collections::BTreeMap<String, usize> = Default::default();
    path.iter()
        .map(|(sw, _)| {
            let mut dp = DataPlaneState::new();
            if let Some(counts) = placed.shards.get(sw) {
                for (table, &count) in counts {
                    if let Some(entries) = full.externs.get(table) {
                        let start = *dealt.get(table).unwrap_or(&0);
                        let shard: lyra_ir::ExternTable =
                            entries.iter().skip(start).take(count as usize).collect();
                        dealt.insert(table.clone(), start + shard.len());
                        dp.externs.insert(table.clone(), shard);
                    }
                }
            }
            dp
        })
        .collect()
}

/// Run the differential comparison for one packet.
fn check_packet(placed: &Placed, full: &DataPlaneState, pkt0: &PacketState) {
    for path in &placed.paths {
        // Reference.
        let mut ref_pkt = pkt0.clone();
        let mut ref_dp = full.clone();
        let ref_fx = execute_all(&placed.alg, &mut ref_pkt, &mut ref_dp);
        // Placed.
        let mut run_pkt = pkt0.clone();
        let mut shards = shard_tables(placed, path, full);
        let mut run_fx = Vec::new();
        for ((_, instrs), dp) in path.iter().zip(shards.iter_mut()) {
            run_fx.extend(execute(&placed.alg, instrs, &mut run_pkt, dp));
        }
        // Compare observable state: header fields and named metadata (not
        // compiler temporaries, which need not exist downstream).
        for (name, &v) in &ref_pkt.values {
            if name.starts_with('%') {
                continue;
            }
            assert_eq!(
                run_pkt.get(name),
                v,
                "field `{name}` differs on path {:?} for packet {pkt0:?}",
                path.iter().map(|(s, _)| s).collect::<Vec<_>>()
            );
        }
        assert_eq!(ref_fx, run_fx, "effects differ on path for packet {pkt0:?}");
    }
}

#[test]
fn lb_split_preserves_semantics() {
    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[64] conn_table;
            extern dict<bit[32] vip, bit[8] grp>[32] vip_table;
            if (flow_h in conn_table) {
                ipv4.dstAddr = conn_table[flow_h];
            } else {
                if (ipv4.dstAddr in vip_table) {
                    vip_grp = vip_table[ipv4.dstAddr];
                    copy_to_cpu();
                }
            }
        }
    "#;
    let placed = place(
        LB,
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
    );
    let mut full = DataPlaneState::new();
    for k in 0..64u64 {
        full.install("conn_table", k * 7, 0x0a00_0000 + k);
    }
    for k in 0..32u64 {
        full.install("vip_table", 0x0200_0000 + k, k % 8);
    }
    // Hits, misses, and VIP fallbacks.
    for (h, dst) in [
        (0u64, 1u64),
        (7, 2),
        (14, 0x0200_0003),
        (5, 0x0200_0001),
        (999, 42),
    ] {
        let mut pkt = PacketState::new();
        pkt.set("flow_h", h);
        pkt.set("ipv4.dstAddr", dst);
        check_packet(&placed, &full, &pkt);
    }
}

#[test]
fn computation_chain_preserves_semantics() {
    const PROG: &str = r#"
        pipeline[P]{chain};
        algorithm chain {
            bit[32] a;
            bit[32] b;
            a = ipv4.srcAddr + 100;
            b = a << 2;
            if (b > 1000) {
                ipv4.dstAddr = b & 0xffff;
            } else {
                ipv4.dstAddr = a;
            }
            out_port = b ^ a;
        }
    "#;
    let placed = place(
        PROG,
        "chain: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
    );
    let full = DataPlaneState::new();
    for src in [0u64, 1, 150, 250, 1 << 20, u32::MAX as u64] {
        let mut pkt = PacketState::new();
        pkt.set("ipv4.srcAddr", src);
        check_packet(&placed, &full, &pkt);
    }
}

#[test]
fn random_packets_through_split_lb() {
    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[64] conn_table;
            if (flow_h in conn_table) {
                ipv4.dstAddr = conn_table[flow_h];
                conn_hit = 1;
            }
        }
    "#;
    let placed = place(
        LB,
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
    );
    let mut rng = Rng::new(0x5eed_3001);
    for _case in 0..32 {
        let flow_h = rng.below(500);
        let dst = rng.below(0x0300_0000);
        let table_keys: std::collections::BTreeSet<u64> =
            (0..1 + rng.below(39)).map(|_| rng.below(500)).collect();
        let mut full = DataPlaneState::new();
        for (i, k) in table_keys.iter().enumerate() {
            full.install("conn_table", *k, 0x0a00_0000 + i as u64);
        }
        let mut pkt = PacketState::new();
        pkt.set("flow_h", flow_h);
        pkt.set("ipv4.dstAddr", dst);
        check_packet(&placed, &full, &pkt);
    }
}

#[test]
fn random_packets_through_split_computation() {
    const PROG: &str = r#"
        pipeline[P]{comp};
        algorithm comp {
            bit[32] t1;
            bit[32] t2;
            t1 = ipv4.srcAddr ^ other;
            t2 = t1 + 13;
            if (t2 > t1) {
                md_class = 1;
            } else {
                md_class = 2;
            }
            ipv4.dstAddr = t2 | md_class;
        }
    "#;
    let placed = place(
        PROG,
        "comp: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
    );
    let full = DataPlaneState::new();
    let mut rng = Rng::new(0x5eed_3002);
    for _case in 0..32 {
        let src = rng.next() as u32;
        let thresh_src = rng.next() as u32;
        let mut pkt = PacketState::new();
        pkt.set("ipv4.srcAddr", src as u64);
        pkt.set("other", thresh_src as u64);
        check_packet(&placed, &full, &pkt);
    }
}
