//! Scale suites for the rollout engine: delta-based prepares must make the
//! control-plane wire cost proportional to what changed, not to how many
//! entries the fleet holds, and the two-phase epoch guarantee must survive
//! chaos at entry counts the small property harnesses never reach.
//!
//! Three tiers:
//!
//! * non-ignored tests at 10³–10⁴ entries run in every `cargo test`;
//! * `#[ignore]`d tests at 10⁵–10⁶ entries run in the `rollout-scale` CI
//!   job (release build, `-- --ignored`) — a million-entry control plane
//!   in a debug build is deliberately out of the default suite;
//! * a 200-scenario lossy-channel chaos sweep asserting the all-or-nothing
//!   epoch invariant and zero entry loss under drops, duplicates and
//!   switch death.
//!
//! Reproducibility: every random choice comes from the seeded xorshift in
//! `tests/common`; failures reproduce from the printed scenario index.

mod common;

use common::{lb_program, scaled_entries, Rng, LB_SCOPES};
use lyra::{
    replay_under_rollout, CompileRequest, Compiler, LossyChannel, ReliableChannel, ReplayConfig,
    RolloutConfig, RolloutReport, Runtime, SolveProfile,
};
use lyra_topo::{figure1_network, FaultSet};

/// Compile the scaled LB onto pod 2 of the Figure 1 network.
fn compile_lb(program: &str) -> lyra::CompileOutput {
    let compiler = Compiler::new();
    let req = CompileRequest::new(program, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    compiler.compile(&req).expect("scaled LB compiles")
}

/// Drive an Agg3 failover at `n` entries twice — once with delta prepares,
/// once with snapshots forced — and return both reports plus the entry
/// churn the failover placement actually required.
fn failover_delta_vs_snapshot(n: usize, table_size: u64) -> (RolloutReport, RolloutReport, u64) {
    let program = lb_program(table_size);
    let compiler = Compiler::new();
    let req = CompileRequest::new(&program, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let mut faults = FaultSet::new();
    faults.add_switch("Agg3");
    let failover = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("Agg3 failover recompile");
    let entries = scaled_entries(n, 0x5ca1e + n as u64);

    let run = |force_snapshot: bool| -> RolloutReport {
        let mut rt = Runtime::new(&healthy);
        let placed = rt
            .install_many("conn_table", &entries)
            .expect("bulk install");
        assert!(placed >= n as u64, "bulk install placed {placed} < {n}");
        assert_eq!(rt.logical_entries().len(), n);
        rt.fail_switch("Agg3").expect("live failover");
        let config = RolloutConfig::default()
            .with_scope_health(failover.scope_health.clone())
            .with_force_snapshot(force_snapshot);
        let report = rt
            .apply_rollout(&failover.output, &mut ReliableChannel::new(), &config)
            .expect("failover rollout starts");
        assert!(report.committed, "reliable failover rollout must commit");
        // Zero mixed-epoch exposure after commit: every surviving switch
        // serves the new epoch.
        assert!(rt.epochs_coherent(), "mixed epochs after commit");
        // No entry lost its last replica.
        assert_eq!(
            rt.logical_entries().len(),
            n,
            "failover lost logical entries"
        );
        report
    };

    let delta = run(false);
    let snapshot = run(true);
    (delta, snapshot, failover.diff.entry_churn())
}

/// The heart of the O(delta) claim, at a size every `cargo test` runs:
/// prepare bytes for a failover scale with the entries the new placement
/// actually moved, while forced snapshots pay for the whole fleet.
#[test]
fn failover_delta_prepares_beat_snapshots_at_10k_entries() {
    let (delta, snapshot, churn) = failover_delta_vs_snapshot(10_000, 16_384);
    assert_eq!(delta.snapshot_prepares, 0, "unexpected snapshot fallback");
    assert!(delta.delta_prepares > 0, "no delta prepares recorded");
    assert!(
        snapshot.prepare_bytes >= 10 * delta.prepare_bytes.max(1),
        "snapshot {}B vs delta {}B: expected >= 10x",
        snapshot.prepare_bytes,
        delta.prepare_bytes
    );
    // The wire delta is bounded by the placement churn (each moved entry
    // is at most one remove plus one add, ~25 wire bytes each), plus the
    // per-switch batch-0 framing.
    let moved: u64 = delta
        .switches
        .iter()
        .map(|s| s.entries_added + s.entries_removed + s.entries_modified)
        .sum();
    assert!(
        moved <= 2 * churn + 2,
        "delta moved {moved} entries but the placement churn was only {churn}"
    );
}

#[test]
fn failover_delta_prepares_beat_snapshots_at_1k_entries() {
    let (delta, snapshot, _) = failover_delta_vs_snapshot(1_000, 4_096);
    assert_eq!(delta.snapshot_prepares, 0);
    assert!(
        snapshot.prepare_bytes >= 10 * delta.prepare_bytes.max(1),
        "snapshot {}B vs delta {}B",
        snapshot.prepare_bytes,
        delta.prepare_bytes
    );
}

/// 10⁵ entries — first `#[ignore]`d tier, run by the `rollout-scale` CI
/// job in release mode.
#[test]
#[ignore = "scale tier: run with --release -- --ignored (rollout-scale CI job)"]
fn failover_delta_prepares_beat_snapshots_at_100k_entries() {
    let (delta, snapshot, _) = failover_delta_vs_snapshot(100_000, 262_144);
    assert_eq!(delta.snapshot_prepares, 0);
    assert!(
        snapshot.prepare_bytes >= 10 * delta.prepare_bytes.max(1),
        "snapshot {}B vs delta {}B",
        snapshot.prepare_bytes,
        delta.prepare_bytes
    );
}

/// The million-entry control plane (ROADMAP item 5 / §8 of the paper at
/// datacenter scale): a failover rollout over 10⁶ installed entries must
/// put only the moved entries on the wire. With compact page storage and
/// the churn-aware placement hints this runs in seconds; with per-entry
/// snapshots it would ship ~25 MB per switch per attempt.
#[test]
#[ignore = "scale tier: run with --release -- --ignored (rollout-scale CI job)"]
fn million_entry_failover_is_o_delta() {
    let n = 1_000_000;
    let (delta, snapshot, churn) = failover_delta_vs_snapshot(n, 1 << 21);
    assert_eq!(delta.snapshot_prepares, 0, "unexpected snapshot fallback");
    assert!(
        snapshot.prepare_bytes >= 10 * delta.prepare_bytes.max(1),
        "snapshot {}B vs delta {}B: the O(delta) floor regressed",
        snapshot.prepare_bytes,
        delta.prepare_bytes
    );
    let moved: u64 = delta
        .switches
        .iter()
        .map(|s| s.entries_added + s.entries_removed + s.entries_modified)
        .sum();
    assert!(
        moved <= 2 * churn + 2,
        "delta moved {moved} entries but the placement churn was only {churn}"
    );
    // The delta wire cost must be a rounding error against a million
    // entries: <= 1% of what the snapshot path ships.
    assert!(
        delta.prepare_bytes <= snapshot.prepare_bytes / 100,
        "delta {}B is more than 1% of snapshot {}B",
        delta.prepare_bytes,
        snapshot.prepare_bytes
    );
}

/// Live traffic replayed while a delta rollout flips a million-entry
/// deployment: not one packet may observe a mixed old/new table set.
#[test]
#[ignore = "scale tier: run with --release -- --ignored (rollout-scale CI job)"]
fn million_entry_rollout_under_traffic_has_zero_mixed_epoch_exposure() {
    let program = lb_program(1 << 21);
    let out = compile_lb(&program);
    let entries = scaled_entries(1_000_000, 0x1_000_000);
    let mut rt = Runtime::new(&out);
    rt.install_many("conn_table", &entries)
        .expect("bulk install");
    let mut chan = LossyChannel::new(0xd1ce).with_drop_p(0.1).with_dup_p(0.05);
    let config = RolloutConfig::default().with_seed(7);
    let replay_cfg = ReplayConfig::default().with_packets(20_000).with_workers(2);
    let outcome = replay_under_rollout(&mut rt, &out, &mut chan, &config, &replay_cfg)
        .expect("rollout starts");
    assert_eq!(
        outcome.replay.mixed_epoch_exposure, 0,
        "mixed-epoch packets observed at scale"
    );
    assert!(
        outcome.rollout.committed || outcome.rollout.rolled_back,
        "rollout neither committed nor rolled back"
    );
}

/// Zero mixed-epoch exposure under live traffic at a size every
/// `cargo test` runs, across a handful of seeded lossy channels.
#[test]
fn lossy_delta_rollouts_under_traffic_never_expose_mixed_epochs() {
    let program = lb_program(4_096);
    let out = compile_lb(&program);
    let entries = scaled_entries(1_000, 0xbeef);
    for seed in [3u64, 17, 0x5eed] {
        let mut rt = Runtime::new(&out);
        rt.install_many("conn_table", &entries)
            .expect("bulk install");
        let mut chan = LossyChannel::new(seed)
            .with_drop_p(0.15)
            .with_ack_loss_p(0.1)
            .with_dup_p(0.1);
        let config = RolloutConfig::default().with_seed(seed);
        let replay_cfg = ReplayConfig::default().with_packets(4_000).with_workers(2);
        let outcome = replay_under_rollout(&mut rt, &out, &mut chan, &config, &replay_cfg)
            .expect("rollout starts");
        assert_eq!(
            outcome.replay.mixed_epoch_exposure, 0,
            "seed {seed}: mixed-epoch packets observed"
        );
    }
}

/// 200 seeded chaos scenarios: random lossy channels, random fault kind
/// (switch death, link cut, or a plain re-rollout with snapshots forced
/// at random), at 10³ entries. Invariants per scenario, commit or not:
///
/// * the epoch set stays coherent — all-or-nothing, zero mixed-epoch
///   exposure;
/// * no logical entry loses its last replica;
/// * a rolled-back attempt leaves the serving epoch untouched.
#[test]
fn chaos_200_scenarios_epochs_stay_coherent_and_no_entry_is_lost() {
    let program = lb_program(4_096);
    let out = compile_lb(&program);
    let entries = scaled_entries(1_000, 0xc4a05);
    let victims = ["Agg3", "Agg4", "ToR3", "ToR4"];
    let links = [
        ("Agg3", "ToR3"),
        ("Agg3", "ToR4"),
        ("Agg4", "ToR3"),
        ("Agg4", "ToR4"),
    ];
    let mut rng = Rng::new(0x5ca1ab1e);
    let mut committed = 0usize;
    let mut rolled_back = 0usize;
    for scenario in 0..200 {
        let mut rt = Runtime::new(&out);
        rt.install_many("conn_table", &entries)
            .unwrap_or_else(|e| panic!("scenario {scenario}: bulk install: {e}"));
        let before = rt.logical_entries().len();
        let epoch_before = rt.epoch();
        let mut chan = LossyChannel::new(1 + rng.next())
            .with_drop_p(0.05 * rng.below(7) as f64)
            .with_ack_loss_p(0.05 * rng.below(4) as f64)
            .with_dup_p(0.05 * rng.below(3) as f64);
        if scenario % 5 == 0 {
            chan = chan
                .with_switch_death(victims[rng.below(4) as usize].to_string(), 1 + rng.below(3));
        }
        let config = RolloutConfig::default()
            .with_seed(rng.next())
            .with_force_snapshot(rng.below(4) == 0);
        let report = match rng.below(3) {
            0 => rt
                .fail_switch_with_channel(victims[rng.below(4) as usize], &mut chan, &config)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_switch: {e}")),
            1 => {
                let (a, b) = links[rng.below(4) as usize];
                rt.fail_link_with_channel(a, b, &mut chan, &config)
                    .unwrap_or_else(|e| panic!("scenario {scenario}: fail_link: {e}"))
            }
            _ => rt
                .apply_rollout(&out, &mut chan, &config)
                .unwrap_or_else(|e| panic!("scenario {scenario}: rollout: {e}")),
        };
        // All-or-nothing: whatever happened on the wire, the surviving
        // fleet serves exactly one epoch.
        assert!(
            rt.epochs_coherent(),
            "scenario {scenario}: mixed epochs after {report:?}"
        );
        if report.committed {
            committed += 1;
        } else if report.rolled_back {
            rolled_back += 1;
            assert_eq!(
                rt.epoch(),
                epoch_before,
                "scenario {scenario}: rollback moved the serving epoch"
            );
        }
        // No logical entry may lose its last replica: single-element
        // failures in this scope always leave one holder of each pair.
        assert_eq!(
            rt.logical_entries().len(),
            before,
            "scenario {scenario}: logical entries lost"
        );
    }
    // The sweep must actually exercise both outcomes.
    assert!(committed >= 50, "only {committed}/200 scenarios committed");
    assert!(
        rolled_back >= 5,
        "only {rolled_back}/200 scenarios rolled back — chaos too gentle"
    );
}
