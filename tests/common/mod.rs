//! Shared helpers for the scale suites: a deterministic PRNG, a
//! parameterized load-balancer program, and a seeded large-entry-set
//! generator. The workspace builds offline with no external crates, so
//! randomness is the same xorshift64* the other property harnesses use —
//! every run explores the identical scenario set and failures reproduce
//! from the printed seed/scenario index.

#![allow(dead_code)] // each test binary uses a different subset

/// Deterministic xorshift64* PRNG.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The Figure-1 load balancer with a parameterized `conn_table` size —
/// the scale suites grow it from 10³ to 2²¹ so a million logical entries
/// fit under the per-path capacity constraint (each flow path's shard
/// sizes must sum to the declared size).
pub fn lb_program(table_size: u64) -> String {
    format!(
        r#"
        pipeline[LB]{{loadbalancer}};
        algorithm loadbalancer {{
            extern dict<bit[32] h, bit[32] ip>[{table_size}] conn_table;
            if (flow_h in conn_table) {{
                ipv4.dstAddr = conn_table[flow_h];
            }} else {{
                copy_to_cpu();
            }}
        }}
    "#
    )
}

/// The LB deployment scope over pod 2 of the Figure 1 network.
pub const LB_SCOPES: &str =
    "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

/// Seeded entry-set generator: `n` unique keys in ascending order (gaps
/// drawn from the PRNG) with pseudo-random values. Ascending keys keep
/// bulk installs append-mostly in the page store, which is what makes
/// seeding 10⁶ entries practical even in debug builds.
pub fn scaled_entries(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = Rng::new(seed);
    let mut entries = Vec::with_capacity(n);
    let mut key = 0u64;
    for _ in 0..n {
        key += 1 + rng.below(7);
        entries.push((key, rng.next()));
    }
    entries
}
