//! Compiled-bytecode differential suite.
//!
//! The batched data-plane engine (`lyra_ir::compiled`) must agree with
//! the reference IR interpreter on every observable: packet fields,
//! effect streams (drops, CPU punts), and persistent global state. This
//! suite drives that equivalence three ways:
//!
//! * **sequence differential** — ten program templates spanning the
//!   surface the compiler lowers (arithmetic/masking, predicate guards,
//!   switch dispatch, table membership + lookup, builtins, persistent
//!   counters, hash-indexed sketches, actions, bit slices, and a
//!   NetCache-style mix) each run a seeded packet *sequence* through both
//!   engines in persistent-global mode and compare every packet
//!   (≥ 200 program × packet cases in total);
//! * **worker partitioning** — the same packet set is executed in
//!   isolated (per-packet) mode by 1 thread and by 4 threads claiming
//!   packets from a shared atomic counter; the XOR-folded machine digests
//!   must be identical, because digests fold over *touched* slots in
//!   program order and are therefore partition-invariant;
//! * **deployment replay** — a compiled MULTI-SW load-balancer
//!   deployment replays live traffic via `lyra::replay_compiled` with
//!   different worker counts (equal digests, effect counts matching the
//!   interpreter replay) and via `lyra::replay_under_rollout` across a
//!   lossy control channel (zero mixed-epoch exposure).
//!
//! Randomness comes from a seeded xorshift generator, so every run
//! explores the identical case set and failures reproduce from the
//! printed template name and packet index.

use std::sync::atomic::{AtomicU64, Ordering};

use lyra::{
    replay_compiled, replay_interpreted, replay_under_rollout, CompileRequest, Compiler, FaultSet,
    LossyChannel, ReplayConfig, RolloutConfig, Runtime, SolveProfile,
};
use lyra_ir::{
    execute_all, frontend, CompiledAlgorithm, DataPlaneState, GlobalAccess, GlobalOverlay,
    IrProgram, Machine, PacketState, ProgramLayout, TableSnapshot,
};
use lyra_topo::figure1_network;

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One differential template: a source program plus the packet fields
/// its seeded traffic randomizes.
struct Template {
    name: &'static str,
    src: &'static str,
    fields: &'static [&'static str],
}

const TEMPLATES: &[Template] = &[
    Template {
        name: "arithmetic_and_masking",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                bit[8] x;
                x = a + b;
                y = x * 3;
                z = y - a;
                q = z / (b | 1);
                r = z % 7;
                s = a << 2;
                t = b >> 3;
                u = (a ^ b) & 255;
                v = a | b;
            }
        "#,
        fields: &["a", "b"],
    },
    Template {
        name: "predicates_and_logic",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                if (a < b && c != 0) {
                    x = a + c;
                } else {
                    if (a >= b || c == 0) {
                        x = b;
                    } else {
                        x = 99;
                    }
                }
                if (x <= 40) { y = 1; } else { y = 2; }
            }
        "#,
        fields: &["a", "b", "c"],
    },
    Template {
        name: "switch_dispatch",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                switch (op) {
                    case 0: { out = a + b; }
                    case 1: { out = a - b; }
                    case 2: { out = a & b; }
                    default: { out = 0; }
                }
            }
        "#,
        fields: &["op", "a", "b"],
    },
    Template {
        name: "table_membership_and_lookup",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] fwd;
                extern dict<bit[32] k, bit[32] v>[16] acl;
                hit = key in fwd;
                if (hit) {
                    out = fwd[key];
                } else {
                    copy_to_cpu();
                }
                if (key in acl) { blocked = acl[key]; }
            }
        "#,
        fields: &["key"],
    },
    Template {
        name: "builtins",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                h = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
                h16 = crc16_hash(ipv4.srcAddr);
                lo = min(h, h16);
                hi = max(h16, ipv4.srcAddr);
                q = get_queue_len();
            }
        "#,
        fields: &["ipv4.srcAddr", "ipv4.dstAddr"],
    },
    Template {
        name: "persistent_counters",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][4] ctr;
                i = key % 4;
                ctr[i] = ctr[i] + 1;
                out = ctr[i];
            }
        "#,
        fields: &["key"],
    },
    Template {
        name: "hash_indexed_sketch",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                global bit[32][8] row0;
                global bit[32][8] row1;
                h0 = crc32_hash(key);
                h1 = crc16_hash(key, 17);
                row0[h0] = row0[h0] + 1;
                row1[h1] = row1[h1] + 1;
                est = min(row0[h0], row1[h1]);
            }
        "#,
        fields: &["key"],
    },
    Template {
        name: "actions_in_branches",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                if (ttl == 0) {
                    drop();
                } else {
                    ttl = ttl - 1;
                    if (ttl < 2) { copy_to_cpu(); }
                }
            }
        "#,
        fields: &["ttl"],
    },
    Template {
        name: "slices",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                h = crc32_hash(a);
                lo = h[7:0];
                mid = h[15:8];
                top = h[31:16];
                out = (top ^ mid) + lo;
            }
        "#,
        fields: &["a"],
    },
    Template {
        name: "netcache_style_mix",
        src: r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[16] cache;
                global bit[32][8] hot;
                switch (op) {
                    case 0: {
                        if (key in cache) {
                            value = cache[key];
                            h = crc32_hash(key);
                            hot[h] = hot[h] + 1;
                        } else {
                            copy_to_cpu();
                        }
                    }
                    default: { drop(); }
                }
            }
        "#,
        fields: &["op", "key"],
    },
];

fn program(src: &str) -> IrProgram {
    frontend(src).unwrap()
}

/// Seed a data-plane state for a program: a handful of entries in every
/// extern table (small key space so the traffic hits often) and sized
/// storage for every global array.
fn seeded_dp(ir: &IrProgram, rng: &mut Rng) -> DataPlaneState {
    let mut dp = DataPlaneState::new();
    for table in ir.externs.keys() {
        for _ in 0..6 {
            dp.install(table, rng.below(16), 1 + rng.below(1 << 24));
        }
    }
    for (name, &(_width, len)) in &ir.globals {
        dp.global(name, len as usize);
    }
    dp
}

/// Seeded field value: biased small so table keys hit and switch arms
/// are reachable, with a wide-random tail for masking coverage.
fn field_value(rng: &mut Rng) -> u64 {
    match rng.below(4) {
        0 => rng.below(4),
        1 => rng.below(16),
        2 => rng.below(256),
        _ => rng.next(),
    }
}

/// Run one packet through both engines in persistent-global mode and
/// compare fields and effects. The caller owns the evolving state.
#[allow(clippy::too_many_arguments)]
fn check_packet(
    name: &str,
    idx: usize,
    alg: &lyra_ir::IrAlgorithm,
    layout: &ProgramLayout,
    compiled: &CompiledAlgorithm,
    snap: &TableSnapshot,
    fields: &[(&str, u64)],
    ref_dp: &mut DataPlaneState,
    store: &mut Vec<Vec<u64>>,
    machine: &mut Machine,
) {
    let mut ref_pkt = PacketState::new();
    for &(k, v) in fields {
        ref_pkt.set(k, v);
    }
    let ref_fx = execute_all(alg, &mut ref_pkt, ref_dp);

    machine.reset();
    let mut pkt = PacketState::new();
    for &(k, v) in fields {
        pkt.set(k, v);
    }
    machine.load_packet(layout, &pkt);
    machine.run(compiled, snap, &mut GlobalAccess::Persistent(store));
    machine.store_packet(layout, &mut pkt);

    for (field, &v) in &ref_pkt.values {
        assert_eq!(
            pkt.get(field),
            v,
            "template `{name}` packet {idx}: field `{field}` diverged"
        );
    }
    assert_eq!(
        machine.effects_vec(layout),
        ref_fx,
        "template `{name}` packet {idx}: effects diverged"
    );
}

/// ≥ 200 seeded program × packet cases: every template runs a 30-packet
/// sequence through interpreter and compiled engine with shared evolving
/// global state, comparing fields and effects per packet and globals at
/// the end of the sequence.
#[test]
fn compiled_engine_matches_interpreter_across_200_seeded_cases() {
    const PACKETS_PER_TEMPLATE: usize = 30;
    let mut rng = Rng::new(0xd1ff_5eed);
    let mut cases = 0usize;

    for template in TEMPLATES {
        let ir = program(template.src);
        let layout = ProgramLayout::new(&ir);
        let alg = &ir.algorithms[0];
        let compiled = CompiledAlgorithm::compile_all(alg, &layout);

        let dp = seeded_dp(&ir, &mut rng);
        let snap = TableSnapshot::build(&layout, &dp);
        let mut ref_dp = dp.clone();
        let mut store = layout.globals_from(&dp);
        let mut machine = Machine::new(&layout);

        for idx in 0..PACKETS_PER_TEMPLATE {
            let fields: Vec<(&str, u64)> = template
                .fields
                .iter()
                .map(|&f| (f, field_value(&mut rng)))
                .collect();
            check_packet(
                template.name,
                idx,
                alg,
                &layout,
                &compiled,
                &snap,
                &fields,
                &mut ref_dp,
                &mut store,
                &mut machine,
            );
            cases += 1;
        }

        // After the whole sequence the persistent global state must be
        // bit-identical between the engines.
        let mut out_dp = dp.clone();
        layout.globals_into(&store, &mut out_dp);
        for (global, arr) in &ref_dp.globals {
            assert_eq!(
                out_dp.globals.get(global),
                Some(arr),
                "template `{}`: global `{global}` diverged after {PACKETS_PER_TEMPLATE} packets",
                template.name
            );
        }
    }

    assert!(
        cases >= 200,
        "suite shrank below the 200-case floor: {cases}"
    );
}

/// Deterministic per-packet field material: a pure function of
/// (seed, packet index), so any worker partitioning sees identical
/// packets.
fn packet_fields(template: &Template, seed: u64, idx: u64) -> Vec<(&'static str, u64)> {
    let mut rng = Rng::new(seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    template
        .fields
        .iter()
        .map(|&f| (f, field_value(&mut rng)))
        .collect()
}

/// Execute packets `[0, packets)` in isolated mode across `workers`
/// threads claiming indices from a shared counter, and XOR-fold the
/// per-packet machine digests.
fn isolated_digest(
    layout: &ProgramLayout,
    compiled: &CompiledAlgorithm,
    snap: &TableSnapshot,
    template: &Template,
    seed: u64,
    packets: u64,
    workers: usize,
) -> u64 {
    let next = AtomicU64::new(0);
    let outs: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut machine = Machine::new(layout);
                    let mut overlay = GlobalOverlay::new();
                    let mut acc = 0u64;
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= packets {
                            return acc;
                        }
                        machine.reset();
                        overlay.clear();
                        let mut pkt = PacketState::new();
                        for (k, v) in packet_fields(template, seed, idx) {
                            pkt.set(k, v);
                        }
                        machine.load_packet(layout, &pkt);
                        machine.run(
                            compiled,
                            snap,
                            &mut GlobalAccess::Isolated {
                                baseline: &snap.globals,
                                overlay: &mut overlay,
                            },
                        );
                        acc ^= machine.digest().wrapping_mul(idx | 1);
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    outs.into_iter().fold(0, |a, b| a ^ b)
}

/// Worker partitioning must not change what the data plane computes:
/// the XOR-folded digest of 64 isolated packets is identical whether one
/// thread or four threads execute them.
#[test]
fn worker_partitioning_is_digest_invariant() {
    const PACKETS: u64 = 64;
    for template in TEMPLATES {
        let ir = program(template.src);
        let layout = ProgramLayout::new(&ir);
        let compiled = CompiledAlgorithm::compile_all(&ir.algorithms[0], &layout);
        let mut rng = Rng::new(0xba7c_4ed0 ^ template.name.len() as u64);
        let dp = seeded_dp(&ir, &mut rng);
        let snap = TableSnapshot::build(&layout, &dp);

        let one = isolated_digest(&layout, &compiled, &snap, template, 0x5eed, PACKETS, 1);
        let four = isolated_digest(&layout, &compiled, &snap, template, 0x5eed, PACKETS, 4);
        assert_eq!(
            one, four,
            "template `{}`: digest changed with worker count",
            template.name
        );
    }
}

const LB: &str = r#"
    pipeline[LB]{loadbalancer};
    algorithm loadbalancer {
        extern dict<bit[32] h, bit[32] ip>[64] conn_table;
        if (flow_h in conn_table) {
            ipv4.dstAddr = conn_table[flow_h];
        } else {
            copy_to_cpu();
        }
    }
"#;
const LB_SCOPES: &str = "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

fn lb_request() -> CompileRequest<'static> {
    CompileRequest::new(LB, LB_SCOPES, figure1_network()).with_solve_profile(SolveProfile::fast())
}

/// Deployment-level differential: replaying the compiled MULTI-SW
/// deployment is worker-count-deterministic and effect-equivalent to the
/// interpreter replay on the same seeded traffic.
#[test]
fn deployment_replay_matches_interpreter_and_is_worker_invariant() {
    let out = Compiler::new().compile(&lb_request()).unwrap();
    let mut rt = Runtime::new(&out);
    rt.install("conn_table", 3, 0xc0de).unwrap();
    rt.install("conn_table", 11, 0xfeed).unwrap();

    let base = ReplayConfig::default().with_packets(3_000).with_seed(0x1ab);
    let one = replay_compiled(&rt, &base.clone().with_workers(1));
    let four = replay_compiled(&rt, &base.clone().with_workers(4));
    let interp = replay_interpreted(&rt, &base);

    assert_eq!(one.digest, four.digest);
    assert_eq!(one.effects, four.effects);
    assert_eq!(one.delivered, 3_000);
    // LB is stateless outside its tables, so persistent interpreter
    // replay and isolated compiled replay fire identical effect counts.
    assert_eq!(one.effects, interp.effects);
    assert_eq!(one.mixed_epoch_exposure, 0);
}

/// Deployment-level rollout differential: live traffic replayed across a
/// lossy-channel rollout observes zero mixed-epoch packets — every
/// packet runs entirely in the old epoch or entirely in the new one.
#[test]
fn lossy_rollout_replay_has_zero_mixed_epoch_exposure() {
    let compiler = Compiler::new();
    let req = lb_request();
    let prior = compiler.compile(&req).unwrap();
    let faults = FaultSet::new().with_switch("Agg3");
    let r = compiler
        .recompile_for_faults(&req, &prior, &faults)
        .unwrap();

    let mut rt = Runtime::new(&prior);
    rt.install("conn_table", 42, 0xabcd).unwrap();
    rt.fail_switch("Agg3").unwrap();

    let mut chan = LossyChannel::new(0xc4a5)
        .with_drop_p(0.2)
        .with_ack_loss_p(0.1)
        .with_dup_p(0.05);
    let config = RolloutConfig {
        max_attempts: 4,
        base_backoff: std::time::Duration::from_micros(5),
        max_backoff: std::time::Duration::from_micros(50),
        seed: 0x70a5,
        scope_health: r.scope_health.clone(),
        crash: None,
        force_snapshot: false,
    };
    let outcome = replay_under_rollout(
        &mut rt,
        &r.output,
        &mut chan,
        &config,
        &ReplayConfig::default().with_packets(20_000).with_workers(2),
    )
    .unwrap();

    assert_eq!(outcome.replay.mixed_epoch_exposure, 0);
    assert_eq!(
        outcome.replay.delivered + outcome.replay.refused_epoch_mismatch,
        20_000
    );
    assert!(rt.epochs_coherent());
}
