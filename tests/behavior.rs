//! Behavioral tests: the compiled corpus programs must *do the right thing*
//! when packets flow through them. Each test compiles a corpus program,
//! stands up the runtime simulator, installs control-plane entries, and
//! checks algorithm-level semantics — sequence-number rejection in
//! NetChain-style replication, flowlet gap detection, counter persistence,
//! TTL handling in the router.

use lyra::{CompileRequest, Compiler, Runtime};
use lyra_ir::{Effect, PacketState};
use lyra_topo::{Layer, Topology};

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("ToR1", Layer::ToR, asic);
    t
}

fn compile_single(program: &str, algs: &[&str], asic: &str) -> lyra::CompileOutput {
    let scopes: String = algs
        .iter()
        .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n");
    Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(program, &scopes, single(asic)))
        .expect("program compiles")
}

#[test]
fn netchain_rejects_stale_sequence_numbers() {
    // A distilled NetChain write path: higher sequence numbers win, stale
    // ones are dropped.
    let program = r#"
        pipeline[P]{chain};
        algorithm chain {
            extern dict<bit[64] key, bit[16] index>[64] kv_index;
            global bit[16][64] seq_store;
            global bit[32][64] val_store;
            bit[16] slot;
            bit[16] cur_seq;
            if (chain_key in kv_index) {
                slot = kv_index[chain_key];
                cur_seq = seq_store[slot];
                if (chain_seq > cur_seq) {
                    seq_store[slot] = chain_seq;
                    val_store[slot] = chain_value;
                } else {
                    drop();
                }
            }
        }
    "#;
    let out = compile_single(program, &["chain"], "tofino-32q");
    let mut rt = Runtime::new(&out);
    rt.install("kv_index", 0xAB, 5).unwrap();

    // Write seq 10 → accepted.
    let mut p1 = PacketState::new();
    p1.set("chain_key", 0xAB)
        .set("chain_seq", 10)
        .set("chain_value", 111);
    let (_, fx1) = rt.inject(&["ToR1"], p1).unwrap();
    assert!(fx1.is_empty(), "fresh write must not drop: {fx1:?}");
    assert_eq!(rt.global("ToR1", "seq_store", 5), Some(10));
    assert_eq!(rt.global("ToR1", "val_store", 5), Some(111));

    // Stale write seq 7 → dropped, state unchanged.
    let mut p2 = PacketState::new();
    p2.set("chain_key", 0xAB)
        .set("chain_seq", 7)
        .set("chain_value", 222);
    let (_, fx2) = rt.inject(&["ToR1"], p2).unwrap();
    assert!(
        fx2.iter()
            .any(|e| matches!(e, Effect::Action { name, .. } if name == "drop")),
        "stale write must drop: {fx2:?}"
    );
    assert_eq!(
        rt.global("ToR1", "val_store", 5),
        Some(111),
        "stale write must not apply"
    );

    // Newer write seq 12 → accepted.
    let mut p3 = PacketState::new();
    p3.set("chain_key", 0xAB)
        .set("chain_seq", 12)
        .set("chain_value", 333);
    rt.inject(&["ToR1"], p3).unwrap();
    assert_eq!(rt.global("ToR1", "val_store", 5), Some(333));
}

#[test]
fn counters_accumulate_across_packets() {
    let program = r#"
        pipeline[P]{ctr};
        algorithm ctr {
            global bit[32][16] hits;
            extern list<bit[32] ip>[16] watched;
            if (ipv4.src_ip in watched) {
                hits[bucket] = hits[bucket] + 1;
            }
        }
    "#;
    let out = compile_single(program, &["ctr"], "trident4");
    let mut rt = Runtime::new(&out);
    rt.install("watched", 0x0a000001, 1).unwrap();
    for _ in 0..5 {
        let mut p = PacketState::new();
        p.set("ipv4.src_ip", 0x0a000001).set("bucket", 3);
        rt.inject(&["ToR1"], p).unwrap();
    }
    // Two unwatched packets do not count.
    for _ in 0..2 {
        let mut p = PacketState::new();
        p.set("ipv4.src_ip", 0x0b000001).set("bucket", 3);
        rt.inject(&["ToR1"], p).unwrap();
    }
    assert_eq!(rt.global("ToR1", "hits", 3), Some(5));
}

#[test]
fn router_drops_on_ttl_expiry() {
    let program = r#"
        pipeline[P]{rt};
        algorithm rt {
            extern dict<bit[32] dst, bit[32] nhop>[64] routes;
            bit[32] nh;
            if (ipv4.dst_ip in routes) {
                nh = routes[ipv4.dst_ip];
                ipv4.ttl = ipv4.ttl - 1;
                if (ipv4.ttl == 0) {
                    drop();
                }
            } else {
                drop();
            }
        }
    "#;
    let out = compile_single(program, &["rt"], "tofino-32q");
    let mut rt = Runtime::new(&out);
    rt.install("routes", 0x0a00_0001, 0x0b00_0001).unwrap();

    // Healthy packet: routed, TTL decremented, not dropped.
    let mut p1 = PacketState::new();
    p1.set("ipv4.dst_ip", 0x0a00_0001).set("ipv4.ttl", 64);
    let (end1, fx1) = rt.inject(&["ToR1"], p1).unwrap();
    assert_eq!(end1.get("ipv4.ttl"), 63);
    assert!(fx1.is_empty());

    // TTL 1 → decrements to 0 → dropped.
    let mut p2 = PacketState::new();
    p2.set("ipv4.dst_ip", 0x0a00_0001).set("ipv4.ttl", 1);
    let (_, fx2) = rt.inject(&["ToR1"], p2).unwrap();
    assert!(fx2
        .iter()
        .any(|e| matches!(e, Effect::Action { name, .. } if name == "drop")));

    // No route → dropped.
    let mut p3 = PacketState::new();
    p3.set("ipv4.dst_ip", 0x0c00_0001).set("ipv4.ttl", 64);
    let (_, fx3) = rt.inject(&["ToR1"], p3).unwrap();
    assert!(fx3
        .iter()
        .any(|e| matches!(e, Effect::Action { name, .. } if name == "drop")));
}

#[test]
fn flowlet_gap_repicks_next_hop() {
    // Distilled flowlet switching: a large inter-packet gap re-picks the
    // hop; a small gap keeps it.
    let program = r#"
        pipeline[P]{fl};
        algorithm fl {
            global bit[32][16] flowlet_ts;
            global bit[16][16] flowlet_hop;
            bit[32] last;
            bit[32] gap;
            bit[16] hop;
            last = flowlet_ts[fid];
            gap = now - last;
            if (gap > 50) {
                hop = crc16_hash(now, fid);
                flowlet_hop[fid] = hop;
            } else {
                hop = flowlet_hop[fid];
            }
            flowlet_ts[fid] = now;
            out_hop = hop;
        }
    "#;
    let out = compile_single(program, &["fl"], "tofino-32q");
    let mut rt = Runtime::new(&out);

    // First packet at t=1000: gap from 0 exceeds 50 → picks a hop.
    let mut p1 = PacketState::new();
    p1.set("fid", 4).set("now", 1000);
    let (e1, _) = rt.inject(&["ToR1"], p1).unwrap();
    let hop1 = e1.get("out_hop");
    assert_eq!(rt.global("ToR1", "flowlet_ts", 4), Some(1000));

    // Second packet 10 ticks later: same flowlet → same hop.
    let mut p2 = PacketState::new();
    p2.set("fid", 4).set("now", 1010);
    let (e2, _) = rt.inject(&["ToR1"], p2).unwrap();
    assert_eq!(e2.get("out_hop"), hop1, "small gap must keep the hop");

    // Third packet after a long pause: new flowlet → hop re-picked from the
    // new timestamp (deterministically different input to the hash).
    let mut p3 = PacketState::new();
    p3.set("fid", 4).set("now", 5000);
    let (e3, _) = rt.inject(&["ToR1"], p3).unwrap();
    // The hash of (5000, 4) differs from hash of (1000, 4) under the
    // reference hash.
    assert_ne!(e3.get("out_hop"), hop1, "long gap must re-pick");
}

#[test]
fn netcache_read_path_counts_misses() {
    let program = r#"
        pipeline[P]{nc};
        algorithm nc {
            extern dict<bit[64] key, bit[16] index>[32] cache_lookup;
            global bit[8][32] cache_valid;
            global bit[32][32] miss_count;
            bit[16] slot;
            bit[8] valid;
            if (nc_key in cache_lookup) {
                slot = cache_lookup[nc_key];
                valid = cache_valid[slot];
                if (valid == 1) {
                    nc_hit = 1;
                } else {
                    miss_count[slot] = miss_count[slot] + 1;
                    copy_to_cpu();
                }
            }
        }
    "#;
    let out = compile_single(program, &["nc"], "tofino-32q");
    let mut rt = Runtime::new(&out);
    rt.install("cache_lookup", 0xFEED, 9).unwrap();

    // Key known but slot invalid → misses counted + punted.
    for _ in 0..3 {
        let mut p = PacketState::new();
        p.set("nc_key", 0xFEED);
        let (end, fx) = rt.inject(&["ToR1"], p).unwrap();
        assert_eq!(end.get("nc_hit"), 0);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Action { name, .. } if name == "copy_to_cpu")));
    }
    assert_eq!(rt.global("ToR1", "miss_count", 9), Some(3));
}
