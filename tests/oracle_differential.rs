//! Cross-backend differential fuzzing through the semantic oracle.
//!
//! Every emitted artifact is parsed back into an executable model and
//! driven with seeded packets; the final observable state must match the
//! IR reference interpreter (`lyra::check_output`), and — for the same
//! program compiled to different ASICs — the backends must also agree
//! with each other on every canonical observable they share
//! (`lyra::oracle::run_case`).
//!
//! Randomness comes from a seeded xorshift generator (the workspace
//! builds offline with no external crates), so every run explores the
//! identical case set and failures reproduce from the printed case
//! index and seed.

use lyra::oracle::run_case;
use lyra::{CompileOutput, CompileRequest, Compiler, OracleConfig};
use lyra_topo::{Layer, Topology};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

/// The three single-switch targets, one per backend language.
const ASICS: [&str; 3] = ["tofino-32q", "silicon-one", "trident4"];

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("S1", Layer::ToR, asic);
    t
}

/// A random but oracle-friendly Lyra algorithm: straight-line compute,
/// conditionals, extern lookups (both membership and value reads), global
/// register bumps, hashes, and intrinsic actions.
fn gen_program(rng: &mut Rng) -> String {
    let var = |i: u64| format!("v{i}");
    let ops = ["+", "-", "&", "|", "^"];
    let actions = ["drop();", "copy_to_cpu();", "mirror(1);"];
    let n = rng.range(2, 9);
    let mut body = String::new();
    for _ in 0..n {
        match rng.below(7) {
            0 => {
                body.push_str(&format!(
                    "    {} = {} {} {};\n",
                    var(rng.below(5)),
                    var(rng.below(5)),
                    ops[rng.below(ops.len() as u64) as usize],
                    var(rng.below(5)),
                ));
            }
            1 => {
                body.push_str(&format!(
                    "    if ({} > {}) {{\n        {} = {} + 1;\n    }}\n",
                    var(rng.below(5)),
                    rng.below(256),
                    var(rng.below(5)),
                    var(rng.below(5)),
                ));
            }
            2 => {
                let t = rng.below(2);
                let k = var(rng.below(5));
                body.push_str(&format!(
                    "    if ({k} in t{t}) {{\n        {} = t{t}[{k}];\n    }}\n",
                    var(rng.below(5)),
                ));
            }
            3 => {
                body.push_str(&format!(
                    "    g0[{}] = g0[{}] + 1;\n",
                    rng.below(8),
                    rng.below(8),
                ));
            }
            4 => {
                body.push_str(&format!(
                    "    {} = crc32_hash({}, ipv4.srcAddr);\n",
                    var(rng.below(5)),
                    var(rng.below(5)),
                ));
            }
            5 => {
                body.push_str(&format!(
                    "    if ({} == {}) {{\n        {}\n    }}\n",
                    var(rng.below(5)),
                    rng.below(16),
                    actions[rng.below(actions.len() as u64) as usize],
                ));
            }
            _ => {
                body.push_str(&format!(
                    "    ipv4.dstAddr = {} ^ ipv4.dstAddr;\n",
                    var(rng.below(5)),
                ));
            }
        }
    }
    format!(
        r#"
pipeline[GEN]{{generated}};
algorithm generated {{
    extern dict<bit[32] k, bit[32] v>[64] t0;
    extern dict<bit[32] k, bit[32] v>[64] t1;
    global bit[32][16] g0;
{body}
}}
"#
    )
}

fn compile_on(program: &str, asic: &str) -> Option<CompileOutput> {
    Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(
            program,
            "generated: [ S1 | PER-SW | - ]",
            single(asic),
        ))
        .ok()
}

fn render_diags(report: &lyra::OracleReport) -> String {
    report
        .diagnostics
        .iter()
        .map(|d| {
            let mut s = match d.code {
                Some(c) => format!("[{c}] {}", d.message),
                None => d.message.clone(),
            };
            for n in &d.notes {
                s.push_str(&format!("\n  note: {n}"));
            }
            s
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Every emitted artifact agrees with the IR reference interpreter on
/// hundreds of seeded packets, for every backend.
#[test]
fn emitted_code_matches_ir_reference() {
    let mut rng = Rng::new(0x5eed_6001);
    let cfg = OracleConfig {
        cases: 24,
        seed: 0x0d15ea5e,
    };
    let mut cases_run = [0u64; 3];
    for case in 0..36 {
        let program = gen_program(&mut rng);
        for (ai, asic) in ASICS.iter().enumerate() {
            let Some(out) = compile_on(&program, asic) else {
                continue; // clean resource-limit failures are fine
            };
            let report = lyra::check_output(&out, &cfg);
            assert!(
                report.is_clean(),
                "case {case} on {asic}: oracle divergence\n{}\nprogram:\n{program}\ncode:\n{}",
                render_diags(&report),
                out.artifacts[0].code
            );
            cases_run[ai] += cfg.cases * report.artifacts_checked as u64;
        }
    }
    for (ai, asic) in ASICS.iter().enumerate() {
        assert!(
            cases_run[ai] >= 200,
            "only {} IR-vs-emitted cases ran on {asic}",
            cases_run[ai]
        );
    }
}

/// The same program compiled to two different ASICs produces artifacts
/// that agree with each other: identical canonical effects, identical
/// register contents, and identical values on every canonical observable
/// the two backends share.
#[test]
fn backend_pairs_agree() {
    let mut rng = Rng::new(0x5eed_6002);
    let mut pair_cases = 0u64;
    for case in 0..40 {
        let program = gen_program(&mut rng);
        let outs: Vec<CompileOutput> = match ASICS
            .iter()
            .map(|asic| compile_on(&program, asic))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => continue, // needs all three backends
        };
        for case_i in 0..8u64 {
            let seed = 0x0bed_f00d_u64
                .wrapping_add((case as u64) << 32)
                .wrapping_add(case_i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let runs: Vec<_> = outs
                .iter()
                .map(|out| {
                    run_case(out, &out.artifacts[0], seed).unwrap_or_else(|e| {
                        panic!("case {case}.{case_i}: oracle cannot run: {e}\n{program}")
                    })
                })
                .collect();
            for a in 0..runs.len() {
                for b in a + 1..runs.len() {
                    let (_, ea, ia) = &runs[a];
                    let (_, eb, ib) = &runs[b];
                    assert_eq!(
                        ia, ib,
                        "case {case}.{case_i}: {} and {} generated different inputs",
                        ASICS[a], ASICS[b]
                    );
                    assert_eq!(
                        ea.effects, eb.effects,
                        "case {case}.{case_i}: effects diverge between {} and {}\n{program}",
                        ASICS[a], ASICS[b]
                    );
                    assert_eq!(
                        ea.globals, eb.globals,
                        "case {case}.{case_i}: registers diverge between {} and {}\n{program}",
                        ASICS[a], ASICS[b]
                    );
                    for (name, va) in &ea.vars {
                        if let Some(vb) = eb.vars.get(name) {
                            assert_eq!(
                                va, vb,
                                "case {case}.{case_i}: `{name}` diverges between {} and {}\n{program}",
                                ASICS[a], ASICS[b]
                            );
                        }
                    }
                    pair_cases += 1;
                }
            }
        }
    }
    // 40 programs x 8 seeds minus clean compile failures; the floor keeps
    // this an actual fuzzer rather than a vacuous loop.
    assert!(
        pair_cases / 3 >= 200,
        "only {} cases per backend pair ran",
        pair_cases / 3
    );
}

/// Property: the structural validator accepts every artifact the three
/// backends emit over the generator — emitted code is always well-formed
/// (balanced braces, every applied table declared, every referenced
/// action/function defined).
#[test]
fn validator_accepts_all_emitted_artifacts() {
    let mut rng = Rng::new(0x5eed_6004);
    let mut validated = 0u64;
    for case in 0..25 {
        let program = gen_program(&mut rng);
        for asic in ASICS {
            let Some(out) = compile_on(&program, asic) else {
                continue;
            };
            let summaries = out.validate_all().unwrap_or_else(|e| {
                panic!(
                    "case {case} on {asic}: emitted code fails validation: {e}\n{program}\n{}",
                    out.artifacts[0].code
                )
            });
            validated += summaries.len() as u64;
        }
    }
    assert!(validated >= 50, "only {validated} artifacts validated");
}

/// The reference side of `run_case` is backend-independent: for one
/// program and one seed, every backend's run starts from the identical
/// canonical input and reference outcome.
#[test]
fn reference_outcome_is_backend_independent() {
    let mut rng = Rng::new(0x5eed_6003);
    for case in 0..12 {
        let program = gen_program(&mut rng);
        let outs: Vec<CompileOutput> = match ASICS
            .iter()
            .map(|asic| compile_on(&program, asic))
            .collect::<Option<Vec<_>>>()
        {
            Some(v) => v,
            None => continue,
        };
        let seed = 0xfeed_0000 + case as u64;
        let runs: Vec<_> = outs
            .iter()
            .map(|out| run_case(out, &out.artifacts[0], seed).expect("runnable"))
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.2, runs[0].2, "case {case}: inputs differ\n{program}");
            assert_eq!(
                r.0.effects, runs[0].0.effects,
                "case {case}: reference effects differ\n{program}"
            );
            assert_eq!(
                r.0.globals, runs[0].0.globals,
                "case {case}: reference registers differ\n{program}"
            );
        }
    }
}
