//! Fault-injection property harness.
//!
//! Random *survivable* fault scenarios (switch and link failures that
//! leave the load-balancer scope with at least one working flow path) are
//! injected into a compiled deployment two ways, and both must preserve
//! packet semantics against the IR reference interpreter:
//!
//! * **failover recompilation** — `Compiler::recompile_for_faults`
//!   produces a new placement on the survivors; every surviving flow path
//!   must forward exactly like the unsplit reference algorithm running
//!   against the full logical table;
//! * **runtime failure** — `Runtime::fail_switch` / `fail_link` re-sync
//!   entries onto surviving shards; surviving paths must keep hitting.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! scenario set and failures reproduce from the printed scenario index.
//!
//! The file also carries the solver-watchdog acceptance test: a 1 ms
//! deadline on the k = 16 LB MULTI-SW case (the hardest Figure 10 pod)
//! must return promptly with a `LYR0550` degraded-result warning instead
//! of hanging or failing.

use std::time::{Duration, Instant};

use lyra::{
    replay_under_recovery, run_selfheal, ChaosSchedule, CompileRequest, Compiler, CrashPlan,
    CrashPoint, DriftOp, HealthConfig, HealthState, IntentStore, LossyChannel, MemIntentStore,
    ReliableChannel, ReplayConfig, RolloutConfig, Runtime, SelfHealConfig, SolveProfile, Target,
};
use lyra_ir::{execute_all, DataPlaneState, Effect, PacketState};
use lyra_lang::parse_scopes;
use lyra_topo::{fat_tree_pod, figure1_network, resolve_scope, scope_health, FaultSet};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const LB: &str = r#"
    pipeline[LB]{loadbalancer};
    algorithm loadbalancer {
        extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
        if (flow_h in conn_table) {
            ipv4.dstAddr = conn_table[flow_h];
        } else {
            copy_to_cpu();
        }
    }
"#;
const LB_SCOPES: &str = "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

/// Scope switches and links a scenario may fail.
const SWITCH_POOL: [&str; 4] = ["Agg3", "Agg4", "ToR3", "ToR4"];
const LINK_POOL: [(&str, &str); 4] = [
    ("Agg3", "ToR3"),
    ("Agg3", "ToR4"),
    ("Agg4", "ToR3"),
    ("Agg4", "ToR4"),
];

/// Draw a random fault set over the LB scope, retrying until the scope
/// survives it (at least one Agg→ToR path fully alive).
fn survivable_faults(rng: &mut Rng) -> FaultSet {
    let topo = figure1_network();
    let spec = &parse_scopes(LB_SCOPES).unwrap()[0];
    let resolved = resolve_scope(&topo, spec).unwrap();
    loop {
        let mut faults = FaultSet::new();
        for sw in SWITCH_POOL {
            if rng.below(4) == 0 {
                faults.add_switch(sw);
            }
        }
        for (a, b) in LINK_POOL {
            if rng.below(4) == 0 {
                faults.add_link(a, b);
            }
        }
        if scope_health(&topo, &resolved, &faults).survivable() {
            return faults;
        }
    }
}

/// Reference semantics: the unsplit algorithm against the full table.
fn reference(ir: &lyra_ir::IrProgram, entries: &[(u64, u64)], flow_h: u64) -> (u64, Vec<Effect>) {
    let alg = ir.algorithm("loadbalancer").unwrap();
    let mut dp = DataPlaneState::new();
    for &(k, v) in entries {
        dp.install("conn_table", k, v);
    }
    let mut pkt = PacketState::new();
    pkt.set("flow_h", flow_h);
    pkt.set("ipv4.dstAddr", 0xdead);
    let effects = execute_all(alg, &mut pkt, &mut dp);
    (pkt.get("ipv4.dstAddr"), effects)
}

/// Check every surviving flow path of `rt` against the reference for the
/// given packets. Paths with no surviving shard of the table are skipped —
/// install() never covers them, exactly like a real control plane.
fn check_paths(
    rt: &mut Runtime,
    out: &lyra::CompileOutput,
    faults: &FaultSet,
    entries: &[(u64, u64)],
    probes: &[u64],
    scenario: usize,
) {
    let (flow_paths, placement, ir) = (&out.flow_paths, &out.placement, &out.ir);
    let holders: Vec<&String> = placement
        .switches
        .iter()
        .filter(|(n, p)| p.extern_entries.contains_key("conn_table") && !faults.switch_failed(n))
        .map(|(n, _)| n)
        .collect();
    for path in flow_paths.values().flatten() {
        if !faults.path_survives(path) {
            continue;
        }
        if !path.iter().any(|sw| holders.contains(&sw)) {
            continue;
        }
        let hops: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
        for &flow_h in probes {
            let (want_dst, want_effects) = reference(ir, entries, flow_h);
            let mut pkt = PacketState::new();
            pkt.set("flow_h", flow_h);
            pkt.set("ipv4.dstAddr", 0xdead);
            let (end, effects) = rt
                .inject(&hops, pkt)
                .unwrap_or_else(|e| panic!("scenario {scenario}: inject on {path:?}: {e}"));
            assert_eq!(
                end.get("ipv4.dstAddr"),
                want_dst,
                "scenario {scenario}: path {path:?} flow_h={flow_h} diverged from reference"
            );
            assert_eq!(
                effects.len(),
                want_effects.len(),
                "scenario {scenario}: path {path:?} flow_h={flow_h} effects diverged: \
                 {effects:?} vs {want_effects:?}"
            );
        }
    }
}

/// ≥200 random survivable fault scenarios, each differentially checked:
/// recompile onto the survivors, install random entries, and compare every
/// surviving flow path against the reference interpreter.
#[test]
fn failover_recompilation_preserves_semantics_across_200_scenarios() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let prior = compiler.compile(&req).expect("healthy compile");
    let mut rng = Rng::new(0xfau64 * 0x1_0001);

    let mut checked = 0usize;
    for scenario in 0..200 {
        let faults = survivable_faults(&mut rng);
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap_or_else(|e| panic!("scenario {scenario}: survivable faults {faults:?}: {e}"));
        // The new placement never touches a dead switch.
        for dead in faults.failed_switches() {
            assert!(
                !r.output.placement.switches.contains_key(dead),
                "scenario {scenario}: placement uses failed switch {dead}"
            );
        }
        // Install random entries through the runtime and probe random keys
        // (some hit, some miss) on every surviving path.
        let mut rt = Runtime::new(&r.output);
        let n = 1 + rng.below(8);
        let entries: Vec<(u64, u64)> = (0..n)
            .map(|_| (rng.below(64), 1 + rng.below(1 << 24)))
            .collect();
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for &(k, v) in &entries {
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue; // duplicate key: the first value wins, as in a real table
            }
            rt.install("conn_table", k, v)
                .unwrap_or_else(|e| panic!("scenario {scenario}: install: {e}"));
            installed.push((k, v));
        }
        let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
        check_paths(&mut rt, &r.output, &faults, &installed, &probes, scenario);
        checked += 1;
    }
    assert!(checked >= 200, "ran only {checked} scenarios");
}

/// The same scenarios injected at runtime (shards die live, entries
/// re-sync onto survivors) instead of through recompilation.
#[test]
fn runtime_fault_injection_resyncs_and_preserves_semantics() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let out = compiler.compile(&req).expect("healthy compile");
    let mut rng = Rng::new(0xc0ffee);

    for scenario in 0..100 {
        let faults = survivable_faults(&mut rng);
        let mut rt = Runtime::new(&out);
        let n = 1 + rng.below(8);
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let (k, v) = (rng.below(64), 1 + rng.below(1 << 24));
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue;
            }
            rt.install("conn_table", k, v)
                .unwrap_or_else(|e| panic!("scenario {scenario}: install: {e}"));
            installed.push((k, v));
        }
        // Fail the scenario's elements live; re-sync must succeed because
        // the scope survives and capacity (1024 per shard) is ample.
        for sw in faults.failed_switches() {
            rt.fail_switch(sw)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_switch({sw}): {e}"));
        }
        for (a, b) in faults.failed_links() {
            rt.fail_link(a, b)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_link({a},{b}): {e}"));
        }
        // Dead paths refuse traffic.
        for path in out.flow_paths.values().flatten() {
            if faults.path_survives(path) {
                continue;
            }
            let hops: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
            let mut pkt = PacketState::new();
            pkt.set("flow_h", 1);
            assert!(
                rt.inject(&hops, pkt).is_err(),
                "scenario {scenario}: dead path {path:?} accepted a packet"
            );
        }
        let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
        check_paths(&mut rt, &out, &faults, &installed, &probes, scenario);
    }
}

/// Chaos acceptance for the transactional rollout engine (§ tentpole):
/// ≥200 seeded scenarios drive `Runtime::apply_rollout` over a lossy
/// control channel — drop probability 0.3, ack loss, duplicates, late
/// replays, and (every fourth scenario) a switch whose control session
/// dies mid-rollout. Every scenario must leave the deployment serving
/// either the full old placement or the full new placement — never a
/// mix — and the post-rollout data plane must match the reference
/// interpreter for whichever epoch won.
#[test]
fn rollout_chaos_commits_fully_or_rolls_back_fully_across_200_scenarios() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let mut rng = Rng::new(0x0_5eed_fa11);

    let (mut committed_n, mut rolled_back_n, mut mixed_epoch_n) = (0usize, 0usize, 0usize);
    for scenario in 0..200 {
        let faults = survivable_faults(&mut rng);
        let r = compiler
            .recompile_for_faults(&req, &healthy, &faults)
            .unwrap_or_else(|e| panic!("scenario {scenario}: recompile: {e}"));

        // Bring up the old placement, install entries, and apply the
        // faults live (reliable re-sync) so the rollout starts from a
        // coherent degraded deployment.
        let mut rt = Runtime::new(&healthy);
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for _ in 0..(1 + rng.below(8)) {
            let (k, v) = (rng.below(64), 1 + rng.below(1 << 24));
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue;
            }
            rt.install("conn_table", k, v)
                .unwrap_or_else(|e| panic!("scenario {scenario}: install: {e}"));
            installed.push((k, v));
        }
        for sw in faults.failed_switches() {
            rt.fail_switch(sw)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_switch({sw}): {e}"));
        }
        for (a, b) in faults.failed_links() {
            rt.fail_link(a, b)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_link({a},{b}): {e}"));
        }

        // The chaos channel: heavy loss, plus a mid-rollout control-session
        // death on one of the new placement's switches every 4th scenario.
        let mut chan = LossyChannel::new(1 + rng.next())
            .with_drop_p(0.3)
            .with_ack_loss_p(0.15)
            .with_dup_p(0.15)
            .with_late_p(0.1);
        if scenario % 4 == 0 {
            if let Some(victim) = r.output.placement.switches.keys().next() {
                chan = chan.with_switch_death(victim.clone(), 1 + rng.below(4));
            }
        }
        let config = RolloutConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            seed: rng.next(),
            scope_health: r.scope_health.clone(),
            crash: None,
            force_snapshot: false,
        };

        let old_epoch = rt.epoch();
        let report = rt
            .apply_rollout(&r.output, &mut chan, &config)
            .unwrap_or_else(|e| panic!("scenario {scenario}: apply_rollout: {e}"));

        // All-or-nothing: exactly one outcome, and no switch may be left
        // serving a stale epoch or carrying staged/prior side state.
        assert!(
            report.committed ^ report.rolled_back,
            "scenario {scenario}: rollout neither committed nor rolled back cleanly"
        );
        if !rt.epochs_coherent() {
            mixed_epoch_n += 1;
        }
        if report.committed {
            committed_n += 1;
            assert!(
                rt.epoch() > old_epoch,
                "scenario {scenario}: commit did not advance the epoch"
            );
            let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
            check_paths(&mut rt, &r.output, &faults, &installed, &probes, scenario);
        } else {
            rolled_back_n += 1;
            assert_eq!(
                rt.epoch(),
                old_epoch,
                "scenario {scenario}: rollback did not restore the old epoch"
            );
            let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
            check_paths(&mut rt, &healthy, &faults, &installed, &probes, scenario);
        }
    }
    assert_eq!(
        mixed_epoch_n, 0,
        "{mixed_epoch_n} scenarios observed mixed-epoch state"
    );
    assert!(
        committed_n > 0 && rolled_back_n > 0,
        "chaos must exercise both outcomes: {committed_n} commits, {rolled_back_n} rollbacks"
    );
}

/// Runtime switch failure over a *lossy* control channel: the re-sync
/// transaction either commits (entries live on survivors, semantics match
/// the reference) or rolls back (old epoch restored everywhere) — and the
/// epoch invariant holds either way.
#[test]
fn lossy_fail_switch_resync_commits_or_rolls_back_cleanly() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let out = compiler.compile(&req).expect("healthy compile");
    let mut rng = Rng::new(0xdead_10cc);

    let (mut committed_n, mut rolled_back_n) = (0usize, 0usize);
    for scenario in 0..40 {
        let mut rt = Runtime::new(&out);
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for _ in 0..4 {
            let (k, v) = (rng.below(64), 1 + rng.below(1 << 24));
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue;
            }
            rt.install("conn_table", k, v).unwrap();
            installed.push((k, v));
        }
        let victim = SWITCH_POOL[rng.below(2) as usize]; // Agg3 or Agg4: always survivable
        let mut chan = LossyChannel::new(1 + rng.next())
            .with_drop_p(0.35)
            .with_ack_loss_p(0.2)
            .with_dup_p(0.2);
        let config = RolloutConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            ..RolloutConfig::default()
        };
        let old_epoch = rt.epoch();
        let report = rt
            .fail_switch_with_channel(victim, &mut chan, &config)
            .unwrap_or_else(|e| panic!("scenario {scenario}: fail_switch({victim}): {e}"));

        assert!(
            rt.epochs_coherent(),
            "scenario {scenario}: lossy re-sync left mixed-epoch state"
        );
        // The failed switch refuses traffic regardless of outcome.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 1);
        assert!(rt.inject(&[victim], pkt).is_err());
        if report.committed {
            committed_n += 1;
            let mut faults = FaultSet::new();
            faults.add_switch(victim);
            let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
            check_paths(&mut rt, &out, &faults, &installed, &probes, scenario);
        } else {
            rolled_back_n += 1;
            assert_eq!(rt.epoch(), old_epoch);
        }
    }
    assert!(
        committed_n > 0,
        "no lossy re-sync ever committed ({rolled_back_n} rollbacks)"
    );
}

/// The rollout engine is fully deterministic for a fixed seed: replaying
/// the same scenario (same channel seed, same config seed, same mid-
/// rollout death) reproduces the exact channel counters and outcome.
#[test]
fn rollout_outcome_is_deterministic_for_a_fixed_seed() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let mut faults = FaultSet::new();
    faults.add_switch("ToR3");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("recompile");

    let run = || {
        let mut rt = Runtime::new(&healthy);
        rt.install("conn_table", 7, 0x0a00_0007).unwrap();
        rt.fail_switch("ToR3").unwrap();
        let victim = r.output.placement.switches.keys().next().unwrap().clone();
        let mut chan = LossyChannel::new(0xabad_cafe)
            .with_drop_p(0.3)
            .with_ack_loss_p(0.15)
            .with_switch_death(victim, 2);
        let config = RolloutConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            seed: 99,
            scope_health: r.scope_health.clone(),
            crash: None,
            force_snapshot: false,
        };
        rt.apply_rollout(&r.output, &mut chan, &config).unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.rolled_back, b.rolled_back);
    assert_eq!(a.forced_rollbacks, b.forced_rollbacks);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.ack_lost, b.ack_lost);
    assert_eq!(a.duplicates, b.duplicates);
}

/// Retries and rollbacks surface in the compile-session JSON (`lyrac
/// --emit-stats` carries the same object).
#[test]
fn rollout_report_lands_in_session_json() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let mut faults = FaultSet::new();
    faults.add_switch("Agg3");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("recompile");

    let mut rt = Runtime::new(&healthy);
    rt.install("conn_table", 3, 0x0a00_0003).unwrap();
    rt.fail_switch("Agg3").unwrap();
    let mut chan = LossyChannel::new(11).with_ack_loss_p(0.8);
    let config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
    let report = rt.apply_rollout(&r.output, &mut chan, &config).unwrap();
    assert!(report.retries > 0, "ack loss at 0.8 must force retries");

    let json = healthy.session().with_rollout(report).to_json().to_string();
    for key in [
        "\"rollout\"",
        "\"retries\"",
        "\"rolled_back\"",
        "\"forced_rollbacks\"",
    ] {
        assert!(json.contains(key), "session JSON missing {key}: {json}");
    }
}

/// Watchdog acceptance: a 1 ms deadline on the hardest Figure 10 pod
/// (k = 16, LB MULTI-SW) must come back promptly via the degradation
/// ladder — `LYR0550` names the rung — rather than hang for the full
/// solve or fail.
#[test]
fn one_ms_deadline_on_k16_lb_returns_promptly_and_degraded() {
    let k = 16;
    let topo = fat_tree_pod(k, "tofino-32q", "trident4");
    let aggs: Vec<String> = (1..=k / 2).map(|i| format!("Agg{i}")).collect();
    let tors: Vec<String> = (1..=k / 2).map(|i| format!("ToR{i}")).collect();
    let scopes = format!(
        "loadbalancer: [ ToR*,Agg* | MULTI-SW | ({}->{}) ]",
        aggs.join(","),
        tors.join(",")
    );
    let req = CompileRequest::new(LB, &scopes, topo)
        .with_solve_profile(SolveProfile::deadline(Duration::from_millis(1)));

    let t = Instant::now();
    let out = Compiler::new().compile(&req).expect("ladder must not fail");
    let elapsed = t.elapsed();

    // The accelerated solve (symmetry quotient + warm start) occasionally
    // beats even a 1 ms deadline outright; that is a success, not a
    // watchdog miss. When it does degrade, the rung must be reported.
    if let Some(rung) = out.degraded {
        let warning = out
            .warnings
            .iter()
            .find(|w| w.code == Some(lyra_diag::codes::DEGRADED))
            .expect("degraded output must carry the LYR0550 warning");
        assert!(
            warning.message.contains(&rung.to_string()),
            "warning must name the rung: {warning:?}"
        );
    }
    // Release builds come back in ~100 ms (40 ms grace + greedy/codegen);
    // allow debug-build slack but still catch a hang or a full solve.
    assert!(
        elapsed < Duration::from_secs(10),
        "watchdog did not bound the compile: {elapsed:?}"
    );
}

/// Controller crash-and-restart chaos: ≥150 seeded scenarios crash the
/// controller at every rollout phase boundary (and after the Nth journaled
/// intent) under a heavily lossy channel, then restart it over the SAME
/// channel — the network outlives the controller. Recovery must drive every
/// in-flight rollout to a coherent all-commit or all-rollback, with the
/// winning placement differentially checked against the IR interpreter and
/// zero scenarios left in mixed-epoch state.
#[test]
fn controller_crash_recovery_converges_across_150_scenarios() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let mut rng = Rng::new(0xc7a5_4ed0_c0de);

    // Crash-point coverage: the five phase boundaries plus send-count
    // crashes (`after_sends`), which land between a journaled intent and
    // its wire transmit.
    let mut crashed_by_pick = [0usize; 6];
    let (mut committed_n, mut rolled_back_n, mut mixed_epoch_n) = (0usize, 0usize, 0usize);
    let mut crashed_n = 0usize;
    let mut scenario = 0usize;
    while crashed_n < 156 && scenario < 400 {
        scenario += 1;
        let faults = survivable_faults(&mut rng);
        let r = compiler
            .recompile_for_faults(&req, &healthy, &faults)
            .unwrap_or_else(|e| panic!("scenario {scenario}: recompile: {e}"));

        let mut rt = Runtime::new(&healthy);
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for _ in 0..(1 + rng.below(8)) {
            let (k, v) = (rng.below(64), 1 + rng.below(1 << 24));
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue;
            }
            rt.install("conn_table", k, v)
                .unwrap_or_else(|e| panic!("scenario {scenario}: install: {e}"));
            installed.push((k, v));
        }
        for sw in faults.failed_switches() {
            rt.fail_switch(sw)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_switch({sw}): {e}"));
        }
        for (a, b) in faults.failed_links() {
            rt.fail_link(a, b)
                .unwrap_or_else(|e| panic!("scenario {scenario}: fail_link({a},{b}): {e}"));
        }

        // Not every boundary is reached on every run (rollback-decision
        // only fires on the failure path, before-finalize only on the
        // commit path), so the sweep oversamples until ≥156 real crashes.
        let pick = scenario % 6;
        let plan = if pick < 5 {
            CrashPlan::at(CrashPoint::ALL[pick])
        } else {
            CrashPlan::after_sends(1 + rng.below(2))
        };
        let mut chan = LossyChannel::new(1 + rng.next())
            .with_drop_p(0.3)
            .with_ack_loss_p(0.15)
            .with_dup_p(0.15)
            .with_late_p(0.1);
        if scenario.is_multiple_of(4) {
            if let Some(victim) = r.output.placement.switches.keys().next() {
                chan = chan.with_switch_death(victim.clone(), 1 + rng.below(4));
            }
        }
        let config = RolloutConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            seed: rng.next(),
            scope_health: r.scope_health.clone(),
            crash: None,
            force_snapshot: false,
        }
        .with_crash(plan);

        let old_epoch = rt.epoch();
        let mut store = MemIntentStore::new();
        match rt.apply_rollout_logged(&r.output, &mut chan, &config, &mut store) {
            Ok(report) => {
                // The crash point was never reached; the rollout must have
                // behaved exactly like the uninstrumented engine.
                assert!(
                    report.committed ^ report.rolled_back,
                    "scenario {scenario}: uncrashed rollout was not all-or-nothing"
                );
                assert!(
                    rt.epochs_coherent(),
                    "scenario {scenario}: uncrashed mixed state"
                );
            }
            Err(err) => {
                assert_eq!(
                    err.code,
                    Some(lyra_diag::codes::CONTROLLER_CRASHED),
                    "scenario {scenario}: unexpected rollout error: {err:?}"
                );
                crashed_n += 1;
                crashed_by_pick[pick] += 1;

                // Restart: a fresh controller process replays the journal
                // over the same (still lossy) network.
                let recover_cfg = RolloutConfig {
                    max_attempts: 4,
                    base_backoff: Duration::from_micros(1),
                    max_backoff: Duration::from_micros(10),
                    seed: rng.next(),
                    scope_health: r.scope_health.clone(),
                    crash: None,
                    force_snapshot: false,
                };
                let rep = rt
                    .recover(&r.output, &mut store, &mut chan, &recover_cfg)
                    .unwrap_or_else(|e| panic!("scenario {scenario}: recover: {e}"));
                assert!(
                    rep.in_flight,
                    "scenario {scenario}: crash left a journal but recovery saw nothing in flight"
                );
                assert!(
                    rep.committed ^ rep.rolled_back,
                    "scenario {scenario}: recovery was not all-or-nothing: {rep:?}"
                );
                if !rt.epochs_coherent() {
                    mixed_epoch_n += 1;
                }
                let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
                if rep.committed {
                    committed_n += 1;
                    assert!(
                        rt.epoch() > old_epoch,
                        "scenario {scenario}: recovered commit did not advance the epoch"
                    );
                    assert!(
                        std::ptr::eq(rt.output(), &r.output),
                        "scenario {scenario}: recovered commit must serve the new output"
                    );
                    check_paths(&mut rt, &r.output, &faults, &installed, &probes, scenario);
                } else {
                    rolled_back_n += 1;
                    assert_eq!(
                        rt.epoch(),
                        old_epoch,
                        "scenario {scenario}: recovered rollback did not restore the old epoch"
                    );
                    assert!(
                        std::ptr::eq(rt.output(), &healthy),
                        "scenario {scenario}: recovered rollback must keep the prior output"
                    );
                    check_paths(&mut rt, &healthy, &faults, &installed, &probes, scenario);
                }
            }
        }
    }

    assert!(
        crashed_n >= 156,
        "only {crashed_n} of {scenario} scenarios actually crashed"
    );
    assert_eq!(
        mixed_epoch_n, 0,
        "{mixed_epoch_n} recoveries left mixed-epoch state"
    );
    assert!(
        committed_n > 0 && rolled_back_n > 0,
        "recovery chaos must exercise both outcomes: \
         {committed_n} commits, {rolled_back_n} rollbacks"
    );
    // Every phase boundary and the send-count crash must have fired.
    for (pick, n) in crashed_by_pick.iter().enumerate() {
        assert!(
            *n > 0,
            "crash pick {pick} never fired across {scenario} scenarios: {crashed_by_pick:?}"
        );
    }
}

/// Restart recovery under live traffic: worker threads replay packets
/// through the mid-flight state a crashed controller left behind while
/// `recover` drives the fleet to an outcome. Epoch pinning must hold the
/// whole way through — zero packets may execute under two epochs.
#[test]
fn recovery_under_live_replay_sees_no_mixed_epochs() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let faults = FaultSet::new().with_switch("Agg3");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("failover recompile");
    let mut rng = Rng::new(0x11fe_7afc);

    let mut fired = 0usize;
    for scenario in 0..12 {
        let mut rt = Runtime::new(&healthy);
        for i in 0..6u64 {
            rt.install("conn_table", i * 7, 0x0a00 + i).unwrap();
        }
        rt.fail_switch("Agg3").unwrap();

        let pick = scenario % 6;
        let plan = if pick < 5 {
            CrashPlan::at(CrashPoint::ALL[pick])
        } else {
            CrashPlan::after_sends(1 + rng.below(2))
        };
        let mut chan = LossyChannel::new(1 + rng.next())
            .with_drop_p(0.15)
            .with_ack_loss_p(0.1);
        let config = RolloutConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            seed: rng.next(),
            scope_health: r.scope_health.clone(),
            crash: None,
            force_snapshot: false,
        }
        .with_crash(plan);

        let mut store = MemIntentStore::new();
        let crashed = rt
            .apply_rollout_logged(&r.output, &mut chan, &config, &mut store)
            .is_err();
        if !crashed {
            continue; // the boundary was not on this run's path
        }
        fired += 1;

        let recover_cfg = RolloutConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            seed: rng.next(),
            scope_health: r.scope_health.clone(),
            crash: None,
            force_snapshot: false,
        };
        let replay_cfg = ReplayConfig::default()
            .with_packets(20_000)
            .with_workers(2)
            .with_seed(rng.next());
        let outcome = replay_under_recovery(
            &mut rt,
            &r.output,
            &mut store,
            &mut chan,
            &recover_cfg,
            &replay_cfg,
        )
        .unwrap_or_else(|e| panic!("scenario {scenario}: replay_under_recovery: {e}"));

        assert_eq!(
            outcome.replay.mixed_epoch_exposure, 0,
            "scenario {scenario}: traffic executed under two epochs during recovery"
        );
        assert!(
            outcome.replay.delivered > 0,
            "scenario {scenario}: no packet survived the recovery window"
        );
        assert!(
            outcome.recovery.committed ^ outcome.recovery.rolled_back,
            "scenario {scenario}: recovery was not all-or-nothing: {:?}",
            outcome.recovery
        );
        assert!(
            rt.epochs_coherent(),
            "scenario {scenario}: recovery under traffic left mixed-epoch state"
        );
    }
    assert!(
        fired >= 8,
        "only {fired}/12 replay scenarios actually crashed"
    );
}

/// Anti-entropy chaos: seed every drift class behind the controller's back
/// (lost entries, foreign entries, stale values, regressed epoch tags),
/// then audit. Every injected op must surface as exactly one finding, every
/// finding must be repaired, a second audit must come back clean, and the
/// repaired deployment must again match the reference interpreter.
#[test]
fn audit_detects_and_repairs_seeded_drift_across_40_scenarios() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let faults = FaultSet::new().with_switch("Agg3");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("failover recompile");
    let mut rng = Rng::new(0x00d2_1f75_eed1);

    for scenario in 0..40 {
        let mut rt = Runtime::new(&healthy);
        let mut installed: Vec<(u64, u64)> = Vec::new();
        for _ in 0..(2 + rng.below(6)) {
            let (k, v) = (rng.below(64), 1 + rng.below(1 << 24));
            if installed.iter().any(|&(ik, _)| ik == k) {
                continue;
            }
            rt.install("conn_table", k, v).unwrap();
            installed.push((k, v));
        }
        rt.fail_switch("Agg3").unwrap();
        // Advance past epoch 0 so a regressed tag is representable.
        let report = rt
            .apply_rollout(
                &r.output,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap_or_else(|e| panic!("scenario {scenario}: rollout: {e}"));
        assert!(report.committed);

        // Drift targets: live switches of the serving placement.
        let alive: Vec<String> = r
            .output
            .placement
            .switches
            .keys()
            .filter(|sw| rt.switch_epoch(sw).is_some())
            .cloned()
            .collect();
        assert!(!alive.is_empty());

        // Seed 1..6 drift ops, deduplicated per (switch, key) so each
        // successful injection maps to exactly one audit finding.
        let mut injected = 0usize;
        let mut touched: Vec<(String, u64)> = Vec::new();
        let mut regressed: Vec<String> = Vec::new();
        let mut foreign_key = 0xd41f_7000u64 + rng.below(1 << 10);
        for _ in 0..(1 + rng.below(5)) {
            let sw = alive[rng.below(alive.len() as u64) as usize].clone();
            let op = match rng.below(4) {
                0 if !installed.is_empty() => {
                    let (k, _) = installed[rng.below(installed.len() as u64) as usize];
                    DriftOp::Remove {
                        table: "conn_table".into(),
                        key: k,
                    }
                }
                1 if !installed.is_empty() => {
                    let (k, v) = installed[rng.below(installed.len() as u64) as usize];
                    DriftOp::Corrupt {
                        table: "conn_table".into(),
                        key: k,
                        value: v ^ 0xffff,
                    }
                }
                2 => {
                    foreign_key += 1;
                    DriftOp::Insert {
                        table: "conn_table".into(),
                        key: foreign_key,
                        value: 0xbad,
                    }
                }
                _ => DriftOp::RegressEpoch,
            };
            match &op {
                DriftOp::RegressEpoch => {
                    if regressed.contains(&sw) {
                        continue;
                    }
                    if rt.inject_drift(&sw, &op).is_ok() {
                        regressed.push(sw);
                        injected += 1;
                    }
                }
                DriftOp::Remove { key, .. }
                | DriftOp::Corrupt { key, .. }
                | DriftOp::Insert { key, .. } => {
                    if touched.iter().any(|(s, k)| *s == sw && k == key) {
                        continue;
                    }
                    // Remove/Corrupt miss when this switch's shard does not
                    // hold the key — that is not drift, just a bad draw.
                    if rt.inject_drift(&sw, &op).is_ok() {
                        touched.push((sw, *key));
                        injected += 1;
                    }
                }
            }
        }
        if injected == 0 {
            continue;
        }

        let audit = rt.audit_switches();
        assert_eq!(
            audit.findings.len(),
            injected,
            "scenario {scenario}: audit found {} of {injected} seeded drifts: {:?}",
            audit.findings.len(),
            audit.counts()
        );
        assert_eq!(
            audit.repaired as usize,
            audit.findings.len(),
            "scenario {scenario}: audit left findings unrepaired"
        );
        let second = rt.audit_switches();
        assert!(
            second.clean(),
            "scenario {scenario}: second audit still drifted: {:?}",
            second.counts()
        );
        assert!(
            rt.epochs_coherent(),
            "scenario {scenario}: audit broke coherence"
        );
        // Repaired semantics match the reference again.
        let probes: Vec<u64> = (0..4).map(|_| rng.below(80)).collect();
        check_paths(&mut rt, &r.output, &faults, &installed, &probes, scenario);
    }
}

/// A failing intent store halts the rollout exactly like a crash
/// (`LYR0577`), and whatever prefix of the journal survived still recovers
/// the fleet to a coherent outcome: no journaled decision can only mean
/// rollback, a journaled commit decision drives the commit home.
#[test]
fn failing_intent_store_halts_and_partial_journal_recovers() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let healthy = compiler.compile(&req).expect("healthy compile");
    let faults = FaultSet::new().with_switch("Agg3");
    let r = compiler
        .recompile_for_faults(&req, &healthy, &faults)
        .expect("failover recompile");

    let (mut committed_n, mut rolled_back_n, mut survived_n) = (0usize, 0usize, 0usize);
    for budget in 1..=8u64 {
        let mut rt = Runtime::new(&healthy);
        rt.install("conn_table", 3, 0x0c0ffee).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();

        let mut store = MemIntentStore::failing_after(budget);
        match rt.apply_rollout_logged(
            &r.output,
            &mut ReliableChannel::new(),
            &RolloutConfig::default(),
            &mut store,
        ) {
            Ok(report) => {
                // The journal fit the budget — a plain committed rollout.
                assert!(report.committed, "budget {budget}: {report:?}");
                survived_n += 1;
                continue;
            }
            Err(err) => {
                assert_eq!(
                    err.code,
                    Some(lyra_diag::codes::INTENT_STORE_IO),
                    "budget {budget}: {err:?}"
                );
            }
        }

        // The surviving journal prefix is what a restarted controller
        // finds on disk; recovery reads it from a healthy store.
        let mut readable = MemIntentStore::new();
        for rec in store.load().unwrap() {
            readable.append(&rec).unwrap();
        }
        let rep = rt
            .recover(
                &r.output,
                &mut readable,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap_or_else(|e| panic!("budget {budget}: recover: {e}"));
        assert!(
            rep.committed ^ rep.rolled_back,
            "budget {budget}: recovery was not all-or-nothing: {rep:?}"
        );
        assert!(rt.epochs_coherent(), "budget {budget}: mixed state");
        if rep.committed {
            committed_n += 1;
            assert!(rt.epoch() > epoch_before);
        } else {
            rolled_back_n += 1;
            assert_eq!(rt.epoch(), epoch_before);
        }
    }
    // The sweep must see both recovery outcomes (short prefixes can only
    // roll back; a journaled decision drives the commit) and at least one
    // budget large enough for the whole journal.
    assert!(
        committed_n > 0 && rolled_back_n > 0 && survived_n > 0,
        "sweep degenerate: {committed_n} commits, {rolled_back_n} rollbacks, \
         {survived_n} survived"
    );
}

// ---------------------------------------------------------------------------
// Closed-loop self-healing under seeded chaos (lyra::health)
// ---------------------------------------------------------------------------

/// Draw a random chaos schedule over the LB scope whose *worst case* —
/// every scheduled target faulted at once — still leaves the scope
/// survivable, so `recompile_for_faults` always has a placement to heal
/// onto. Events quiesce early enough that the healer can restore whatever
/// comes back (including quarantined flappers waiting out penalty decay)
/// inside the tick budget.
fn survivable_chaos(rng: &mut Rng) -> (ChaosSchedule, bool) {
    let topo = figure1_network();
    let spec = &parse_scopes(LB_SCOPES).unwrap()[0];
    let resolved = resolve_scope(&topo, spec).unwrap();
    loop {
        let n = 1 + rng.below(3);
        let mut targets: Vec<Target> = Vec::new();
        let mut faults = FaultSet::new();
        while targets.len() < n as usize {
            let t = if rng.below(2) == 0 {
                Target::switch(SWITCH_POOL[rng.below(4) as usize])
            } else {
                let (a, b) = LINK_POOL[rng.below(4) as usize];
                Target::link(a, b)
            };
            if targets.contains(&t) {
                continue;
            }
            match &t {
                Target::Switch(s) => faults.add_switch(s),
                Target::Link(a, b) => faults.add_link(a, b),
            }
            targets.push(t);
        }
        if !scope_health(&topo, &resolved, &faults).survivable() {
            continue;
        }
        let mut schedule = ChaosSchedule::new();
        let mut has_kill = false;
        for t in targets {
            match rng.below(5) {
                0 => {
                    has_kill = true;
                    schedule = schedule.kill(4 + rng.below(12), t);
                }
                1 => {
                    has_kill = true;
                    let at = 4 + rng.below(8);
                    let back = at + 8 + rng.below(10);
                    schedule = schedule.kill(at, t.clone()).restore(back, t);
                }
                2 => {
                    schedule =
                        schedule.flap(4 + rng.below(8), t, 2 + rng.below(3), 3 + rng.below(4));
                }
                3 => {
                    let at = 4 + rng.below(8);
                    schedule = schedule.slow(at, at + 8 + rng.below(16), t);
                }
                _ => {
                    let at = 4 + rng.below(8);
                    let p = 0.55 + 0.1 * rng.below(3) as f64;
                    schedule = schedule.lossy(at, at + 8 + rng.below(16), t, p);
                }
            }
        }
        return (schedule, has_kill);
    }
}

/// ≥200 random chaos schedules — kills, kill+restore cycles, flaps, slow
/// and lossy windows over the LB scope — each driven through the full
/// closed loop. Every scenario must end converged (desired == active,
/// epochs coherent), pass the final anti-entropy audit, and never expose
/// mixed-epoch state; every committed remediation must audit clean.
#[test]
fn selfheal_chaos_converges_across_200_scenarios() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let entries: Vec<(String, u64, u64)> = (0..4u64)
        .map(|k| ("conn_table".to_string(), k, 0x0a00_0100 + k))
        .collect();
    let mut rng = Rng::new(0x5e1f_4ea1);

    let (mut remediated_total, mut restored_total, mut quarantined_total) = (0u64, 0u64, 0usize);
    for scenario in 0..200usize {
        let (schedule, has_kill) = survivable_chaos(&mut rng);
        let mut cfg = SelfHealConfig {
            health: HealthConfig::default().with_seed(0x9_0000 + scenario as u64),
            ticks: 240,
            ..SelfHealConfig::default()
        };
        if scenario % 20 == 0 {
            cfg.traffic_packets = 1500;
            cfg.workers = 2;
        }
        let outcome = run_selfheal(&compiler, &req, &entries, &schedule, &cfg)
            .unwrap_or_else(|e| panic!("scenario {scenario}: selfheal: {e}"));
        assert!(
            outcome.converged,
            "scenario {scenario}: did not converge: {} remediations, health {:?}",
            outcome.remediations.len(),
            outcome
                .health
                .targets
                .iter()
                .filter(|t| t.state != HealthState::Healthy)
                .collect::<Vec<_>>()
        );
        assert!(
            outcome.final_audit_clean,
            "scenario {scenario}: final audit found drift"
        );
        assert_eq!(
            outcome.mixed_epoch_exposure, 0,
            "scenario {scenario}: mixed-epoch packets escaped"
        );
        assert_eq!(
            outcome.worker_panics, 0,
            "scenario {scenario}: replay worker panicked"
        );
        for (i, r) in outcome.remediations.iter().enumerate() {
            if r.committed {
                assert!(
                    r.audit_clean,
                    "scenario {scenario}: remediation {i} committed but audited dirty"
                );
            }
        }
        if has_kill {
            assert!(
                outcome.recompiles >= 1,
                "scenario {scenario}: a kill was scheduled but nothing was remediated"
            );
        }
        remediated_total += outcome.rollouts_committed;
        restored_total += outcome.restores;
        // Quarantines are often served and *exited* (penalty decays, the
        // target is restored) before the run ends, so count the verdicts
        // the monitor raised rather than the final states.
        quarantined_total += outcome
            .health
            .diagnostics
            .iter()
            .filter(|d| d.code == Some(lyra_diag::codes::HEALTH_QUARANTINED))
            .count();
    }
    // The sweep must actually exercise the loop: remediations commit,
    // restores bring targets back, and at least one flapper is quarantined.
    assert!(
        remediated_total > 0 && restored_total > 0 && quarantined_total > 0,
        "sweep degenerate: {remediated_total} commits, {restored_total} restores, \
         {quarantined_total} quarantines"
    );
}

/// The flap-damping acceptance test: a link flapping 8 times inside the
/// damping window triggers exactly ONE recompile+rollout — the penalty
/// quarantines the target instead of chasing every edge — and the final
/// health report carries the quarantine verdict.
#[test]
fn flapping_link_is_damped_to_one_recompile_and_quarantined() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let victim = Target::link("Agg3", "ToR3");
    let schedule = ChaosSchedule::new().flap(5, victim.clone(), 3, 8);
    let cfg = SelfHealConfig {
        ticks: 80,
        ..SelfHealConfig::default()
    };
    let outcome = run_selfheal(&compiler, &req, &[], &schedule, &cfg).expect("selfheal");

    assert_eq!(
        outcome.recompiles, 1,
        "flap storm caused {} recompiles; damping must hold it to one",
        outcome.recompiles
    );
    assert_eq!(outcome.rollouts_committed, 1);
    let status = outcome
        .health
        .targets
        .iter()
        .find(|t| t.target == victim)
        .expect("victim watched");
    assert_eq!(
        status.state,
        HealthState::Quarantined,
        "flapper ended {:?}, expected quarantine",
        status.state
    );
    assert!(
        outcome
            .health
            .diagnostics
            .iter()
            .any(|d| d.code == Some(lyra_diag::codes::HEALTH_QUARANTINED)),
        "no LYR0583 quarantine diagnostic was raised"
    );
    assert_eq!(outcome.mixed_epoch_exposure, 0);
}

/// A slow flapper (long up phases that clear probation) is allowed to be
/// restored and re-remediated — but the cycle count stays bounded well
/// below one rollout per edge, and the loop still converges.
#[test]
fn slow_flap_restore_refail_cycles_stay_bounded() {
    let compiler = Compiler::new();
    let req = CompileRequest::new(LB, LB_SCOPES, figure1_network())
        .with_solve_profile(SolveProfile::fast());
    let victim = Target::switch("Agg4");
    // Down [5,25) up [25,45) down [45,65) up [65,85): 3 down edges.
    let schedule = ChaosSchedule::new().flap(5, victim, 20, 3);
    let cfg = SelfHealConfig {
        ticks: 160,
        ..SelfHealConfig::default()
    };
    let outcome = run_selfheal(&compiler, &req, &[], &schedule, &cfg).expect("selfheal");

    assert!(
        outcome.converged,
        "slow flap did not converge: {:?}",
        outcome.health.targets
    );
    // Each down edge may cost a fail round and each recovery a restore
    // round, but damping/backoff must keep the total bounded.
    assert!(
        (2..=6).contains(&outcome.recompiles),
        "slow flap drove {} recompiles (expected a handful, not a storm)",
        outcome.recompiles
    );
    assert_eq!(outcome.mixed_epoch_exposure, 0);
    assert!(outcome.final_audit_clean);
}
