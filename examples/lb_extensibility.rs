//! The §7.2 extensibility case study: grow the load balancer's ConnTable
//! from one million to 2.5 million to four million entries and watch Lyra
//! re-split it across the aggregation and ToR layers automatically —
//! including the hit/miss information passed between cooperating switches.
//!
//! Run with: `cargo run --release -p lyra-apps --example lb_extensibility`

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_topo::figure1_network;

fn main() {
    let scopes = "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";
    for conn_entries in [1_000_000u64, 2_500_000, 4_000_000] {
        let program = programs::load_balancer(conn_entries);
        let t = std::time::Instant::now();
        let out = Compiler::new()
            .compile(&CompileRequest::new(&program, scopes, figure1_network()))
            .unwrap_or_else(|e| panic!("{conn_entries}-entry LB failed: {e}"));
        println!(
            "ConnTable = {:>9} entries: compiled in {:?} (paper target: <10 s)",
            conn_entries,
            t.elapsed()
        );
        for (switch, plan) in &out.placement.switches {
            if plan.extern_entries.is_empty() && plan.carried_in.is_empty() {
                continue;
            }
            let shards: Vec<String> = plan
                .extern_entries
                .iter()
                .map(|(t, n)| format!("{t}={n}"))
                .collect();
            let bridges: Vec<&str> = plan.carried_in.iter().map(|c| c.name.as_str()).collect();
            println!(
                "    {switch:<6} holds [{}]{}",
                shards.join(", "),
                if bridges.is_empty() {
                    String::new()
                } else {
                    format!("  (receives bridge fields: {})", bridges.join(", "))
                }
            );
        }
        // Invariant: along every Agg→ToR path the full table is reachable.
        let total: u64 = out
            .placement
            .switches
            .values()
            .filter_map(|p| p.extern_entries.get("conn_table"))
            .sum();
        assert!(
            total >= conn_entries,
            "entries lost: {total} < {conn_entries}"
        );
        println!();
    }
}
