//! Quickstart: compile a small cross-platform Lyra program against the
//! paper's Figure 1 network and print the generated chip-specific code.
//!
//! Run with: `cargo run --release -p lyra-apps --example quickstart`

use lyra::{CompileRequest, Compiler};
use lyra_topo::figure1_network;

const PROGRAM: &str = r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[8]  ttl;
        bit[32] src_ip;
        bit[32] dst_ip;
    }
}
parser_node start {
    extract(ipv4);
}

>PIPELINES:
pipeline[DEMO]{ watch };

algorithm watch {
    extern list<bit[32] ip>[512] watch_list;
    global bit[32][512] hit_count;
    bit[32] idx;
    if (ipv4.src_ip in watch_list) {
        idx = crc32_hash(ipv4.src_ip);
        hit_count[idx] = hit_count[idx] + 1;
        copy_to_cpu();
    }
}
"#;

fn main() {
    // Deploy one copy per ToR switch. The ToR layer of Figure 1 is
    // heterogeneous: Tofino 32Q, Tofino 64Q, and two Silicon One chips —
    // the same Lyra program becomes P4_14 on the former and P4_16 on the
    // latter without changing a line.
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            PROGRAM,
            "watch: [ ToR* | PER-SW | - ]",
            figure1_network(),
        ))
        .expect("quickstart program compiles");

    println!(
        "compiled in {:?} ({} artifacts)\n",
        out.stats.total,
        out.artifacts.len()
    );
    for a in &out.artifacts {
        println!("==== {} ({} / {}) ====", a.switch, a.asic, a.lang.name());
        println!("{}", a.code);
        println!("---- control plane stub ----");
        println!("{}", a.control_plane);
    }
    for (switch, summary) in out.validate_all().expect("generated code validates") {
        println!(
            "{switch}: {} tables, {} actions, {} registers, {} LoC",
            summary.tables, summary.actions, summary.registers, summary.loc
        );
    }
}
