//! The §7.3 composition case study: a five-algorithm service chain
//! (classifier → firewall → gateway → load balancer → scheduler) compiled
//! while the scope shrinks from the whole testbed to a single switch.
//! Smaller scopes are harder — the whole chain must be compressed into one
//! ASIC's resources. The paper reports under five seconds per compile.
//!
//! Run with: `cargo run --release -p lyra-apps --example service_chain_composition`

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_topo::evaluation_testbed;

fn main() {
    let program = programs::service_chain();
    let algs = ["classifier", "firewall", "gateway", "chain_lb", "scheduler"];
    // From all eight programmable edge switches down to one ToR.
    let regions = ["ToR*,Agg*", "ToR*", "ToR1,ToR2", "ToR1"];
    for region in regions {
        let scopes: String = algs
            .iter()
            .map(|a| format!("{a}: [ {region} | PER-SW | - ]"))
            .collect::<Vec<_>>()
            .join("\n");
        let t = std::time::Instant::now();
        let out = Compiler::new()
            .compile(&CompileRequest::new(
                &program,
                &scopes,
                evaluation_testbed(),
            ))
            .unwrap_or_else(|e| panic!("composition in region `{region}` failed: {e}"));
        let elapsed = t.elapsed();
        println!(
            "region {region:<12} → {} switch(es), compiled in {elapsed:?} (paper target: <5 s)",
            out.placement.used_switches()
        );
        // §7.3: per-algorithm resources are prefix-isolated — every table
        // name begins with its algorithm's name, so co-resident programs
        // cannot collide.
        for plan in out.placement.switches.values() {
            for table in &plan.tables {
                assert!(
                    algs.iter().any(|a| table.name.starts_with(a)),
                    "table {} lacks its algorithm prefix",
                    table.name
                );
            }
        }
        assert!(
            elapsed.as_secs() < 5,
            "composition exceeded the paper's 5 s target"
        );
    }
    println!("\nall compositions compiled; per-algorithm table prefixes verified");
}
