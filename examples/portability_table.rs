//! Regenerate the Figure 9 portability table: compile every corpus program
//! to both a P4 target (Tofino 32Q) and an NPL target (Trident-4), measure
//! lines of code, tables, actions, registers, and compile time, and print
//! them next to the paper's published numbers.
//!
//! Run with: `cargo run --release -p lyra-apps --example portability_table`

use lyra::{CompileRequest, Compiler};
use lyra_apps::{figure9_corpus, paper_baselines};
use lyra_topo::{Layer, Topology};

fn main() {
    let baselines = paper_baselines();
    println!(
        "{:<18} | {:>9} | {:>13} | {:>22} | {:>18}",
        "program", "Lyra LoC", "manual (P4)", "ours P4 (t/a/r, time)", "ours NPL (t/r)"
    );
    println!("{}", "-".repeat(95));
    for entry in figure9_corpus() {
        let row = baselines.iter().find(|r| r.program == entry.name).unwrap();
        let loc = lyra_lang::count_loc(&entry.source);

        let mut cells = Vec::new();
        for asic in ["tofino-32q", "trident4"] {
            let mut topo = Topology::new();
            topo.add_switch("ToR1", Layer::ToR, asic);
            let alg_names: Vec<&str> = entry
                .scopes
                .lines()
                .filter_map(|l| l.split(':').next())
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            let scopes: String = alg_names
                .iter()
                .map(|a| format!("{a}: [ ToR1 | PER-SW | - ]"))
                .collect::<Vec<_>>()
                .join("\n");
            let t = std::time::Instant::now();
            let out = Compiler::new()
                .compile(&CompileRequest::new(&entry.source, &scopes, topo))
                .unwrap_or_else(|e| panic!("{} on {asic}: {e}", entry.name));
            let elapsed = t.elapsed();
            let summary = &out.validate_all().expect("validates")[0].1;
            cells.push((summary.tables, summary.actions, summary.registers, elapsed));
        }
        let (p4t, p4a, p4r, p4time) = cells[0];
        let (nplt, _, nplr, _) = cells[1];
        println!(
            "{:<18} | {loc:>4} ({:>3}) | {:>3}t {:>3}a {:>2}r | {p4t:>3}t {p4a:>3}a {p4r:>2}r {:>8.2?} | {nplt:>4}t {nplr:>3}r",
            entry.name,
            row.lyra_loc,
            row.manual_tables,
            row.manual_actions,
            row.manual_registers,
            p4time,
        );
        // Shape checks mirroring §7.1's claims.
        assert!(
            (loc as u64) < row.manual_loc,
            "{}: Lyra must be shorter than the manual program",
            entry.name
        );
        assert!(
            p4t <= row.manual_tables,
            "{}: Lyra-generated P4 must not use more tables than the manual program ({p4t} > {})",
            entry.name,
            row.manual_tables
        );
    }
    println!("\nshape checks passed: Lyra shorter than manual, tables ≤ manual everywhere");
}
