//! End-to-end runtime simulation of the Figure 1(c) load-balancer flow:
//! compile the stateful L4 LB across the second pod, have the "control
//! plane" install connection entries through the logical table interface
//! (not knowing which switch holds which shard), then inject packets and
//! watch hits get rewritten in the data plane while misses punt to the
//! controller.
//!
//! Run with: `cargo run --release -p lyra-apps --example runtime_simulation`

use lyra::{CompileRequest, Compiler, Runtime};
use lyra_ir::{Effect, PacketState};
use lyra_topo::figure1_network;

const LB: &str = r#"
    pipeline[LB]{loadbalancer};
    algorithm loadbalancer {
        extern dict<bit[32] h, bit[32] dip>[128] conn_table;
        extern dict<bit[32] vip, bit[8] group>[32] vip_table;
        if (flow_h in conn_table) {
            ipv4.dstAddr = conn_table[flow_h];
        } else {
            if (ipv4.dstAddr in vip_table) {
                dip_group = vip_table[ipv4.dstAddr];
                copy_to_cpu();
            }
        }
    }
"#;

fn main() {
    let out = Compiler::new()
        .compile(&CompileRequest::new(
            LB,
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
            figure1_network(),
        ))
        .expect("LB compiles");
    println!("compiled; table placement:");
    for (sw, plan) in &out.placement.switches {
        for (t, n) in &plan.extern_entries {
            println!("  {sw}: {t} × {n}");
        }
    }

    let mut rt = Runtime::new(&out);
    // Control plane: publish the VIP and install two known connections.
    // Note the API never names a switch — the runtime routes each entry to
    // a shard with capacity (§5.8's abstraction).
    rt.install("vip_table", 0x0200_0001, 3).unwrap();
    let s1 = rt.install("conn_table", 0xBEEF, 0x0a00_0002).unwrap();
    let s2 = rt.install("conn_table", 0xCAFE, 0x0a00_0003).unwrap();
    println!("\ninstalled conn entries on {s1:?} and {s2:?}");

    // Packet 1: known connection — rewritten in the data plane.
    let mut p1 = PacketState::new();
    p1.set("flow_h", 0xBEEF);
    p1.set("ipv4.dstAddr", 0x0200_0001);
    let (end1, fx1) = rt.inject(&["Agg3", "ToR3"], p1).unwrap();
    println!(
        "\npacket 1 (known conn):   dstAddr 0x02000001 → 0x{:08x}, effects: {}",
        end1.get("ipv4.dstAddr"),
        fx1.len()
    );
    assert_eq!(end1.get("ipv4.dstAddr"), 0x0a00_0002);
    assert!(fx1.is_empty());

    // Packet 2: new connection to the VIP — punts to the controller.
    let mut p2 = PacketState::new();
    p2.set("flow_h", 0x1234);
    p2.set("ipv4.dstAddr", 0x0200_0001);
    let (end2, fx2) = rt.inject(&["Agg4", "ToR4"], p2).unwrap();
    let punted = fx2
        .iter()
        .any(|e| matches!(e, Effect::Action { name, .. } if name == "copy_to_cpu"));
    println!(
        "packet 2 (new conn):     dstAddr unchanged (0x{:08x}), punted to CPU: {punted}",
        end2.get("ipv4.dstAddr")
    );
    assert!(punted);

    // Controller reacts: installs the new connection; subsequent packets hit.
    rt.install("conn_table", 0x1234, 0x0a00_0004).unwrap();
    let mut p3 = PacketState::new();
    p3.set("flow_h", 0x1234);
    p3.set("ipv4.dstAddr", 0x0200_0001);
    let (end3, fx3) = rt.inject(&["Agg4", "ToR4"], p3).unwrap();
    println!(
        "packet 3 (after install): dstAddr → 0x{:08x}, effects: {}",
        end3.get("ipv4.dstAddr"),
        fx3.len()
    );
    assert_eq!(end3.get("ipv4.dstAddr"), 0x0a00_0004);
    assert!(fx3.is_empty());
    println!("\nFigure 1(c) install → hit flow reproduced.");
}
