//! The paper's motivating deployment (Figure 1 + Figure 7): in-band network
//! telemetry across the whole fabric — ingress INT on ToR switches, transit
//! INT on aggregation switches, egress INT on ToR switches — composed with
//! the stateful L4 load balancer on the second pod.
//!
//! Run with: `cargo run --release -p lyra-apps --example int_telemetry`

use lyra::{CompileRequest, Compiler};
use lyra_apps::programs;
use lyra_topo::figure1_network;

fn main() {
    // Combine the three INT roles and the LB into one deployment request.
    // Each program is an independent one-big-pipeline; Lyra composes them
    // per switch (§7.3's "Composition").
    let mut program = String::new();
    program.push_str(&programs::int_ingress());
    // Transit/egress INT share header declarations with ingress INT, so we
    // only append their pipeline/algorithm/function sections.
    let transit = programs::int_transit().replace("pipeline[INT]", "pipeline[INT_TRANSIT]");
    program.push_str(
        transit
            .split(">PIPELINES:")
            .nth(1)
            .map(|s| "\n>PIPELINES:".to_string() + s)
            .unwrap()
            .as_str(),
    );
    let egress = programs::int_egress().replace("pipeline[INT]", "pipeline[INT_EGRESS]");
    program.push_str(
        egress
            .split(">PIPELINES:")
            .nth(1)
            .map(|s| "\n>PIPELINES:".to_string() + s)
            .unwrap()
            .as_str(),
    );

    let scopes = r#"
        int_in: [ ToR* | PER-SW | - ]
        int_transit: [ Agg* | PER-SW | - ]
        int_out: [ ToR* | PER-SW | - ]
    "#;

    let out = Compiler::new()
        .compile(&CompileRequest::new(&program, scopes, figure1_network()))
        .expect("INT deployment compiles");

    println!("INT deployed across the fabric in {:?}:", out.stats.total);
    for (switch, plan) in &out.placement.switches {
        let algs: Vec<&str> = plan.instrs.keys().map(String::as_str).collect();
        println!(
            "  {switch:<6} runs {:<24} {} tables, {} SRAM blocks",
            algs.join("+"),
            plan.usage.tables,
            plan.usage.sram_blocks
        );
    }
    // The heterogeneity dividend: count languages generated from one source.
    let mut langs: Vec<&str> = out.artifacts.iter().map(|a| a.lang.name()).collect();
    langs.sort();
    langs.dedup();
    println!(
        "\nlanguages generated from one Lyra source: {}",
        langs.join(", ")
    );
    assert!(
        langs.len() >= 2,
        "heterogeneous deployment must target multiple languages"
    );
}
