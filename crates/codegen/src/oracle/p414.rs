//! P4₁₄ artifact parser: reads the emitted Tofino program back into an
//! [`ArtifactModel`].
//!
//! The grammar is exactly what `crate::p414::emit` produces: `header_type`
//! declarations + instances, a metadata bundle, parser `set_metadata`
//! moves, `register` blocks, `field_list`/`field_list_calculation` pairs,
//! primitive-call action bodies, `table` blocks with `reads`/`actions`
//! sections, and `control ingress`/`control egress` apply sequences.

use std::collections::BTreeMap;

use super::expr::{parse_expr, Expr};
use super::{strip_comments, ArtifactModel, OAction, OStmt, OTable, Step};

/// Parse an emitted P4₁₄ program.
pub fn parse(code: &str) -> Result<ArtifactModel, String> {
    let lines: Vec<String> = code.lines().map(strip_comments).collect();
    let mut m = ArtifactModel::default();
    // header_type name → fields.
    let mut header_fields: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    // field_list name → arg expressions; calculation name → (list, bits).
    let mut field_lists: BTreeMap<String, Vec<Expr>> = BTreeMap::new();
    let mut calcs: BTreeMap<String, (String, u32)> = BTreeMap::new();

    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim().to_string();
        if let Some(rest) = t.strip_prefix("header_type ") {
            let name = rest.trim_end_matches('{').trim().to_string();
            let (fields, next) = parse_fields_block(&lines, i + 1)?;
            header_fields.insert(name, fields);
            i = next;
            continue;
        }
        if let Some(rest) = t.strip_prefix("header ") {
            // `header TYPE inst;`
            let mut parts = rest.trim_end_matches(';').split_whitespace();
            if let (Some(ty), Some(inst)) = (parts.next(), parts.next()) {
                register_instance(&mut m, &header_fields, ty, inst);
            }
            i += 1;
            continue;
        }
        if let Some(rest) = t.strip_prefix("metadata ") {
            let mut parts = rest.trim_end_matches(';').split_whitespace();
            if let (Some(ty), Some(inst)) = (parts.next(), parts.next()) {
                register_instance(&mut m, &header_fields, ty, inst);
            }
            i += 1;
            continue;
        }
        if t.starts_with("parser ") && t.ends_with('{') {
            i = parse_parser_block(&lines, i + 1, &mut m)?;
            continue;
        }
        if t.starts_with("register ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("register ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let (mut w, mut len) = (32u32, 1u64);
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if let Some(v) = l.strip_prefix("width :") {
                    w = num(v)? as u32;
                }
                if let Some(v) = l.strip_prefix("instance_count :") {
                    len = num(v)?;
                }
                j += 1;
            }
            m.registers.insert(name, (w, len));
            i = j + 1;
            continue;
        }
        if t.starts_with("field_list_calculation ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("field_list_calculation ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let (mut list, mut bits) = (String::new(), 32u32);
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if let Some(v) = l.strip_prefix("input {") {
                    list = v.trim_end_matches('}').trim().trim_end_matches(';').into();
                }
                if let Some(v) = l.strip_prefix("output_width :") {
                    bits = num(v)? as u32;
                }
                j += 1;
            }
            calcs.insert(name, (list, bits));
            i = j + 1;
            continue;
        }
        if t.starts_with("field_list ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("field_list ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let mut args = Vec::new();
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim().trim_end_matches(';');
                if !l.is_empty() {
                    args.push(parse_expr(l)?);
                }
                j += 1;
            }
            field_lists.insert(name, args);
            i = j + 1;
            continue;
        }
        if t.starts_with("action ") && t.ends_with('{') {
            let sig = t.trim_start_matches("action ").trim_end_matches('{').trim();
            let (name, params) = parse_signature(sig)?;
            let mut body = Vec::new();
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if !l.is_empty() {
                    if let Some(s) = parse_primitive(l, &field_lists, &calcs)? {
                        body.push(s);
                    }
                }
                j += 1;
            }
            m.actions.insert(name, OAction { params, body });
            i = j + 1;
            continue;
        }
        if t.starts_with("table ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("table ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let mut table = OTable::default();
            let mut j = i + 1;
            let mut section = "";
            let mut depth = 1i32;
            while j < lines.len() {
                let l = lines[j].trim();
                depth += braces(l);
                if depth == 0 {
                    break;
                }
                if l.starts_with("reads {") {
                    section = "reads";
                } else if l.starts_with("actions {") {
                    section = "actions";
                } else if l == "}" {
                    section = "";
                } else if section == "reads" {
                    if let Some((field, _kind)) = l.trim_end_matches(';').split_once(" : ") {
                        table.keys.push(parse_expr(field.trim())?);
                    }
                } else if section == "actions" {
                    let a = l.trim_end_matches(';').trim();
                    if !a.is_empty() {
                        table.actions.push(a.to_string());
                    }
                }
                j += 1;
            }
            m.tables.insert(name, table);
            i = j + 1;
            continue;
        }
        if t.starts_with("control ") && t.ends_with('{') {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if let Some(rest) = l.strip_prefix("apply(") {
                    let table = rest.trim_end_matches(';').trim_end_matches(')').to_string();
                    m.steps.push(Step::Apply { table, gate: None });
                } else if l.starts_with("recirculate(") {
                    m.steps.push(Step::Recirculate);
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    Ok(m)
}

/// Register `inst.field → width` for an instantiated header/metadata type.
fn register_instance(
    m: &mut ArtifactModel,
    header_fields: &BTreeMap<String, Vec<(String, u32)>>,
    ty: &str,
    inst: &str,
) {
    if let Some(fields) = header_fields.get(ty) {
        for (f, w) in fields {
            m.widths.insert(format!("{inst}.{f}"), *w);
        }
    }
}

/// Parse `fields { name : w; ... }` inside a header_type, returning the
/// fields and the index just past the header_type's closing brace.
fn parse_fields_block(
    lines: &[String],
    start: usize,
) -> Result<(Vec<(String, u32)>, usize), String> {
    let mut fields = Vec::new();
    let mut depth = 1i32;
    let mut j = start;
    while j < lines.len() {
        let l = lines[j].trim();
        depth += braces(l);
        if depth <= 0 {
            return Ok((fields, j + 1));
        }
        if let Some((n, w)) = l.trim_end_matches(';').split_once(" : ") {
            if let Ok(w) = w.trim().parse::<u32>() {
                fields.push((n.trim().to_string(), w));
            }
        }
        j += 1;
    }
    Err("unterminated header_type block".into())
}

/// Consume a parser state block, collecting `set_metadata` constant moves.
fn parse_parser_block(
    lines: &[String],
    start: usize,
    m: &mut ArtifactModel,
) -> Result<usize, String> {
    let mut depth = 1i32;
    let mut j = start;
    while j < lines.len() {
        let l = lines[j].trim();
        depth += braces(l);
        if depth <= 0 {
            return Ok(j + 1);
        }
        if let Some(rest) = l.strip_prefix("set_metadata(") {
            let inner = rest.trim_end_matches(';').trim_end_matches(')');
            let (d, v) = inner
                .split_once(',')
                .ok_or_else(|| format!("malformed set_metadata `{l}`"))?;
            match parse_expr(v.trim())? {
                Expr::Num(n) => m.parser_inits.push((d.trim().to_string(), n)),
                other => return Err(format!("non-constant parser set {other:?} in `{l}`")),
            }
        }
        j += 1;
    }
    Err("unterminated parser block".into())
}

/// `name(p1, p2)` → (name, params).
fn parse_signature(sig: &str) -> Result<(String, Vec<String>), String> {
    let open = sig
        .find('(')
        .ok_or_else(|| format!("malformed action signature `{sig}`"))?;
    let name = sig[..open].trim().to_string();
    let inner = sig[open + 1..].trim_end_matches(')').trim();
    let params = if inner.is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|p| p.trim().to_string()).collect()
    };
    Ok((name, params))
}

/// Parse one primitive-call statement into an [`OStmt`].
fn parse_primitive(
    line: &str,
    field_lists: &BTreeMap<String, Vec<Expr>>,
    calcs: &BTreeMap<String, (String, u32)>,
) -> Result<Option<OStmt>, String> {
    let src = line.trim().trim_end_matches(';');
    if src.is_empty() {
        return Ok(None);
    }
    let e = parse_expr(src)?;
    let Expr::Call(name, args) = e else {
        return Err(format!("P4_14 statement is not a primitive call: `{line}`"));
    };
    let dst = |i: usize| -> Result<String, String> {
        match args.get(i) {
            Some(Expr::Var(v)) => Ok(v.clone()),
            other => Err(format!(
                "expected field name operand, got {other:?} in `{line}`"
            )),
        }
    };
    let bin = |op: super::expr::BinOp| -> Result<Option<OStmt>, String> {
        Ok(Some(OStmt::Assign {
            dst: dst(0)?,
            rhs: Expr::Bin(op, Box::new(args[1].clone()), Box::new(args[2].clone())),
        }))
    };
    use super::expr::BinOp as B;
    match name.as_str() {
        "modify_field" => {
            let d = dst(0)?;
            if d == "ig_intr_md_for_tm.ucast_egress_port" {
                return Ok(Some(OStmt::Effect {
                    name: "set_egress_port".into(),
                    args: vec![args[1].clone()],
                }));
            }
            Ok(Some(OStmt::Assign {
                dst: d,
                rhs: args[1].clone(),
            }))
        }
        "add" => bin(B::Add),
        "subtract" => bin(B::Sub),
        "bit_and" => bin(B::And),
        "bit_or" => bin(B::Or),
        "bit_xor" => bin(B::Xor),
        "shift_left" => bin(B::Shl),
        "shift_right" => bin(B::Shr),
        "min" | "max" => Ok(Some(OStmt::Assign {
            dst: dst(0)?,
            rhs: Expr::Call(name.clone(), args[1..].to_vec()),
        })),
        "bit_not" => Ok(Some(OStmt::Assign {
            dst: dst(0)?,
            rhs: Expr::BitNot(Box::new(args[1].clone())),
        })),
        "modify_field_with_hash_based_offset" => {
            let flc = match &args[2] {
                Expr::Var(v) => v.clone(),
                other => return Err(format!("expected calculation name, got {other:?}")),
            };
            let (list, bits) = calcs
                .get(&flc)
                .ok_or_else(|| format!("unknown field_list_calculation `{flc}`"))?;
            let hash_args = field_lists
                .get(list)
                .ok_or_else(|| format!("unknown field_list `{list}`"))?
                .clone();
            Ok(Some(OStmt::Hash {
                dst: dst(0)?,
                args: hash_args,
                bits: *bits,
            }))
        }
        "register_read" => Ok(Some(OStmt::RegRead {
            dst: dst(0)?,
            reg: match &args[1] {
                Expr::Var(v) => v.clone(),
                other => return Err(format!("expected register name, got {other:?}")),
            },
            idx: args[2].clone(),
        })),
        "register_write" => Ok(Some(OStmt::RegWrite {
            reg: dst(0)?,
            idx: args[1].clone(),
            val: args[2].clone(),
        })),
        "no_op" => Ok(None),
        "drop" | "recirculate" | "resubmit" | "count" | "add_header" | "remove_header" => {
            Ok(Some(OStmt::Effect {
                name: name.clone(),
                args: Vec::new(),
            }))
        }
        "clone_ingress_pkt_to_egress" => Ok(Some(OStmt::Effect {
            name: "copy_to_cpu".into(),
            args: args[1..].to_vec(),
        })),
        "clone_egress_pkt_to_egress" => Ok(Some(OStmt::Effect {
            name: "mirror".into(),
            args: args[1..].to_vec(),
        })),
        other => Err(format!("unknown P4_14 primitive `{other}` in `{line}`")),
    }
}

/// Net brace depth change of one line.
fn braces(l: &str) -> i32 {
    l.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

fn num(s: &str) -> Result<u64, String> {
    s.trim()
        .trim_end_matches(';')
        .parse::<u64>()
        .map_err(|e| format!("bad number `{s}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"/* P4_14 program for S1 (tofino-32q) — generated by Lyra */
header_type ipv4_t {
    fields {
        srcAddr : 32;
        dstAddr : 32;
    }
}
header ipv4_t ipv4;
header_type lyra_metadata_t {
    fields {
        lb_hash : 32;
        lb_hit : 1;
    }
}
metadata lyra_metadata_t md;
parser start {
    set_metadata(md.lb_hash, 0);
    return ingress;
}
register pkt_count {
    width : 32;
    instance_count : 16;
}
field_list lyra_fl_0 {
    ipv4.srcAddr;
    ipv4.dstAddr;
}
field_list_calculation lyra_flc_0 {
    input { lyra_fl_0; }
    algorithm : crc32;
    output_width : 32;
}
action lb_act0(val_ip) {
    modify_field_with_hash_based_offset(md.lb_hash, 0, lyra_flc_0, 4294967296);
    modify_field(ipv4.dstAddr, val_ip);
}
table lb_t0 {
    reads {
        md.lb_hash : exact;
    }
    actions {
        lb_act0;
    }
    size : 1024;
}
control ingress {
    apply(lb_t0);
}
control egress {
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.widths.get("ipv4.srcAddr"), Some(&32));
        assert_eq!(m.widths.get("md.lb_hash"), Some(&32));
        assert_eq!(m.parser_inits, vec![("md.lb_hash".to_string(), 0)]);
        assert_eq!(m.registers.get("pkt_count"), Some(&(32, 16)));
        let a = &m.actions["lb_act0"];
        assert_eq!(a.params, vec!["val_ip"]);
        assert_eq!(a.body.len(), 2);
        assert!(matches!(&a.body[0], OStmt::Hash { bits: 32, .. }));
        let t = &m.tables["lb_t0"];
        assert_eq!(t.keys.len(), 1);
        assert_eq!(t.actions, vec!["lb_act0"]);
        assert_eq!(m.steps.len(), 1);
    }

    #[test]
    fn effect_primitives() {
        let fl = BTreeMap::new();
        let c = BTreeMap::new();
        let s = parse_primitive("clone_ingress_pkt_to_egress(250, md.x);", &fl, &c)
            .unwrap()
            .unwrap();
        match s {
            OStmt::Effect { name, args } => {
                assert_eq!(name, "copy_to_cpu");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_primitive(
            "modify_field(ig_intr_md_for_tm.ucast_egress_port, 7);",
            &fl,
            &c,
        )
        .unwrap()
        .unwrap();
        assert!(matches!(s, OStmt::Effect { ref name, .. } if name == "set_egress_port"));
    }
}
