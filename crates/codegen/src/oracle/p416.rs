//! P4₁₆ artifact parser: reads the emitted Silicon One program back into
//! an [`ArtifactModel`].
//!
//! The grammar is exactly what `crate::p416::emit` produces: `header`
//! declarations, `struct headers_t` / `struct metadata_t`, a parser whose
//! start state may carry hoisted constant assignments, `register`
//! declarations, `action`/`table` blocks inside a single control, and an
//! `apply` block of `t.apply()` calls optionally behind one-level
//! gateway `if`s.

use std::collections::BTreeMap;

use super::expr::{parse_expr, Expr};
use super::{strip_comments, ArtifactModel, OAction, OStmt, OTable, Step};

/// Parse an emitted P4₁₆ program.
pub fn parse(code: &str) -> Result<ArtifactModel, String> {
    let lines: Vec<String> = code.lines().map(strip_comments).collect();
    let mut m = ArtifactModel::default();
    let mut header_fields: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();

    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim().to_string();
        if t.starts_with("header ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("header ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let mut fields = Vec::new();
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                if let Some((w, f)) = parse_bit_decl(lines[j].trim()) {
                    fields.push((f, w));
                }
                j += 1;
            }
            header_fields.insert(name, fields);
            i = j + 1;
            continue;
        }
        if t.starts_with("struct headers_t") {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim().trim_end_matches(';');
                if let Some((ty, inst)) = l.split_once(' ') {
                    if let Some(fields) = header_fields.get(ty.trim()) {
                        for (f, w) in fields {
                            m.widths.insert(format!("{}.{f}", inst.trim()), *w);
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.starts_with("struct metadata_t") {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                if let Some((w, f)) = parse_bit_decl(lines[j].trim()) {
                    m.widths.insert(format!("md.{f}"), w);
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.starts_with("parser ") {
            let mut depth = braces(&t);
            let mut j = i + 1;
            while j < lines.len() && depth > 0 {
                let l = lines[j].trim();
                depth += braces(l);
                if let Some((lhs, rhs)) = l.trim_end_matches(';').split_once(" = ") {
                    match parse_expr(rhs.trim())? {
                        Expr::Num(n) => m.parser_inits.push((lhs.trim().to_string(), n)),
                        other => return Err(format!("non-constant parser assignment {other:?}")),
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.starts_with("register<") {
            // `register<bit<W>>(LEN) name;`
            let w = t
                .trim_start_matches("register<bit<")
                .split('>')
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| format!("malformed register decl `{t}`"))?;
            let len = t
                .split('(')
                .nth(1)
                .and_then(|s| s.split(')').next())
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("malformed register decl `{t}`"))?;
            let name = t
                .rsplit(' ')
                .next()
                .unwrap_or("")
                .trim_end_matches(';')
                .to_string();
            m.registers.insert(name, (w, len));
            i += 1;
            continue;
        }
        if t.starts_with("action ") && t.ends_with('{') {
            let sig = t.trim_start_matches("action ").trim_end_matches('{').trim();
            let (name, params) = parse_signature(sig)?;
            let mut body = Vec::new();
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if !l.is_empty() {
                    if let Some(s) = parse_stmt(l)? {
                        body.push(s);
                    }
                }
                j += 1;
            }
            m.actions.insert(name, OAction { params, body });
            i = j + 1;
            continue;
        }
        if t.starts_with("table ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("table ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let mut table = OTable::default();
            let mut j = i + 1;
            let mut depth = 1i32;
            let mut section = "";
            while j < lines.len() {
                let l = lines[j].trim();
                depth += braces(l);
                if depth == 0 {
                    break;
                }
                if l.starts_with("key = {") {
                    section = "key";
                } else if l.starts_with("actions = {") {
                    section = "actions";
                } else if l == "}" {
                    section = "";
                } else if section == "key" {
                    if let Some((field, _)) = l.trim_end_matches(';').split_once(" : ") {
                        table.keys.push(parse_expr(field.trim())?);
                    }
                } else if section == "actions" {
                    let a = l.trim_end_matches(';').trim();
                    if !a.is_empty() && a != "NoAction" {
                        table.actions.push(a.to_string());
                    }
                }
                j += 1;
            }
            m.tables.insert(name, table);
            i = j + 1;
            continue;
        }
        if t == "apply {" {
            let mut j = i + 1;
            let mut depth = 1i32;
            while j < lines.len() && depth > 0 {
                let l = lines[j].trim().to_string();
                depth += braces(&l);
                if let Some(cond) = l.strip_prefix("if ").and_then(|r| r.strip_suffix('{')) {
                    // One-level gateway: the next line applies the table.
                    let gate = parse_expr(cond.trim())?;
                    let inner = lines
                        .get(j + 1)
                        .map(|x| x.trim().to_string())
                        .unwrap_or_default();
                    let table = inner
                        .strip_suffix(".apply();")
                        .ok_or_else(|| format!("gateway if without apply: `{inner}`"))?
                        .to_string();
                    m.steps.push(Step::Apply {
                        table,
                        gate: Some(gate),
                    });
                    depth += braces(&inner) - 1; // consume inner line + closing brace
                    j += 3;
                    continue;
                }
                if let Some(table) = l.strip_suffix(".apply();") {
                    m.steps.push(Step::Apply {
                        table: table.to_string(),
                        gate: None,
                    });
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    Ok(m)
}

/// `bit<W> name;` → (W, name).
fn parse_bit_decl(l: &str) -> Option<(u32, String)> {
    let rest = l.strip_prefix("bit<")?;
    let (w, name) = rest.split_once('>')?;
    let w = w.parse::<u32>().ok()?;
    Some((w, name.trim().trim_end_matches(';').to_string()))
}

/// `name(bit<W> p1, ...)` → (name, param names).
fn parse_signature(sig: &str) -> Result<(String, Vec<String>), String> {
    let open = sig
        .find('(')
        .ok_or_else(|| format!("malformed action signature `{sig}`"))?;
    let name = sig[..open].trim().to_string();
    let inner = sig[open + 1..].trim_end_matches(')').trim();
    let params = if inner.is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .filter_map(|p| p.split_whitespace().last())
            .map(|p| p.to_string())
            .collect()
    };
    Ok((name, params))
}

/// Parse one P4₁₆ statement line into an [`OStmt`].
fn parse_stmt(line: &str) -> Result<Option<OStmt>, String> {
    let src = line.trim().trim_end_matches(';');
    if src.is_empty() {
        return Ok(None);
    }
    if let Some(rest) = src.strip_prefix("hash(") {
        // `hash(d, HashAlgorithm.X, (bit<32>)0, { a, b }, (bit<64>)base)`
        let dst = rest
            .split(',')
            .next()
            .ok_or_else(|| format!("malformed hash `{line}`"))?
            .trim()
            .to_string();
        let bits = if rest.contains("crc16") { 16 } else { 32 };
        let open = rest
            .find('{')
            .ok_or_else(|| format!("hash without field list `{line}`"))?;
        let close = rest
            .rfind('}')
            .ok_or_else(|| format!("hash without field list `{line}`"))?;
        let mut args = Vec::new();
        for a in rest[open + 1..close].split(',') {
            let a = a.trim();
            if !a.is_empty() {
                args.push(parse_expr(a)?);
            }
        }
        return Ok(Some(OStmt::Hash { dst, args, bits }));
    }
    if src == "mark_to_drop()" {
        return Ok(Some(OStmt::Effect {
            name: "drop".into(),
            args: Vec::new(),
        }));
    }
    if src.starts_with("hdr.") && src.ends_with(".setValid()") {
        return Ok(Some(OStmt::Effect {
            name: "add_header".into(),
            args: Vec::new(),
        }));
    }
    if src.starts_with("hdr.") && src.ends_with(".setInvalid()") {
        return Ok(Some(OStmt::Effect {
            name: "remove_header".into(),
            args: Vec::new(),
        }));
    }
    if let Some((lhs, rhs)) = src.split_once(" = ") {
        return Ok(Some(OStmt::Assign {
            dst: lhs.trim().to_string(),
            rhs: parse_expr(rhs.trim())?,
        }));
    }
    // Statement-position call: register access or an effect shim.
    let e = parse_expr(src)?;
    let Expr::Call(name, args) = e else {
        return Err(format!("unrecognized P4_16 statement `{line}`"));
    };
    if let Some(reg) = name.strip_suffix(".read") {
        let dst = match &args[0] {
            Expr::Var(v) => v.clone(),
            other => return Err(format!("expected destination field, got {other:?}")),
        };
        return Ok(Some(OStmt::RegRead {
            dst,
            reg: reg.to_string(),
            idx: args[1].clone(),
        }));
    }
    if let Some(reg) = name.strip_suffix(".write") {
        return Ok(Some(OStmt::RegWrite {
            reg: reg.to_string(),
            idx: args[0].clone(),
            val: args[1].clone(),
        }));
    }
    Ok(Some(OStmt::Effect { name, args }))
}

/// Net brace depth change of one line.
fn braces(l: &str) -> i32 {
    l.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"/* P4_16 program for S2 (silicon-one) — generated by Lyra */
#include <core.p4>
header ipv4_t {
    bit<32> srcAddr;
    bit<32> dstAddr;
}
struct headers_t {
    ipv4_t ipv4;
}
struct metadata_t {
    bit<32> lb_hash;
    bit<1> lb_c;
}
parser LyraParser(packet_in pkt, out headers_t hdr, inout metadata_t md) {
    state start {
        md.lb_hash = 0;
        transition accept;
    }
}
control LyraIngress(inout headers_t hdr, inout metadata_t md) {
    register<bit<32>>(16) pkt_count;
    action lb_act0(bit<32> val_ip) {
        hash(md.lb_hash, HashAlgorithm.crc32, (bit<32>)0, { ipv4.srcAddr, ipv4.dstAddr }, (bit<64>)4294967296);
        ipv4.dstAddr = val_ip;
    }
    table lb_t0 {
        key = {
            md.lb_hash : exact;
        }
        actions = {
            lb_act0;
            NoAction;
        }
        size = 1024;
        default_action = NoAction();
    }
    apply {
        if (md.lb_c != 0) {
            lb_t0.apply();
        }
    }
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.widths.get("ipv4.dstAddr"), Some(&32));
        assert_eq!(m.widths.get("md.lb_hash"), Some(&32));
        assert_eq!(m.parser_inits, vec![("md.lb_hash".to_string(), 0)]);
        assert_eq!(m.registers.get("pkt_count"), Some(&(32, 16)));
        let a = &m.actions["lb_act0"];
        assert_eq!(a.params, vec!["val_ip"]);
        assert!(matches!(&a.body[0], OStmt::Hash { bits: 32, .. }));
        let t = &m.tables["lb_t0"];
        assert_eq!(t.keys.len(), 1);
        assert_eq!(t.actions, vec!["lb_act0"]);
        assert_eq!(m.steps.len(), 1);
        assert!(matches!(&m.steps[0], Step::Apply { gate: Some(_), .. }));
    }

    #[test]
    fn stmt_forms() {
        assert!(matches!(
            parse_stmt("md.x = md.y + 1;").unwrap().unwrap(),
            OStmt::Assign { .. }
        ));
        assert!(matches!(
            parse_stmt("pkt_count.read(md.x, (bit<32>)md.i);")
                .unwrap()
                .unwrap(),
            OStmt::RegRead { .. }
        ));
        assert!(matches!(
            parse_stmt("pkt_count.write((bit<32>)md.i, md.x);")
                .unwrap()
                .unwrap(),
            OStmt::RegWrite { .. }
        ));
        assert!(matches!(
            parse_stmt("lyra_set_egress_port(md.p);").unwrap().unwrap(),
            OStmt::Effect { .. }
        ));
        assert!(matches!(
            parse_stmt("mark_to_drop();").unwrap().unwrap(),
            OStmt::Effect { ref name, .. } if name == "drop"
        ));
    }
}
