//! NPL artifact parser: reads the emitted Trident-4 program back into an
//! [`ArtifactModel`].
//!
//! The grammar is exactly what `crate::npl::emit` produces: a `bus`
//! struct, `logical_register` blocks, guarded `function` bodies, and
//! `logical_table` blocks whose `key_construct()`/`fields_assign()`
//! branches are keyed on `_LOOKUPn`/`_HITn`, plus a `program` block of
//! `f()` calls and `t.lookup(n)` passes.
//!
//! Bus references are canonicalized to the shared `md.` namespace
//! (`lyra_bus.x` → `md.x`) so outcomes compare directly against the other
//! backends and the IR interpreter.

use std::collections::BTreeMap;

use super::expr::{parse_expr, Expr};
use super::{strip_comments, ArtifactModel, OStmt, OTable, Step};

/// Parse an emitted NPL program.
pub fn parse(code: &str) -> Result<ArtifactModel, String> {
    let lines: Vec<String> = code.lines().map(strip_comments).collect();
    let mut m = ArtifactModel::default();

    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim().to_string();
        if t.starts_with("bus ") && t.ends_with('{') {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                if let Some((w, name)) = parse_bit_decl(lines[j].trim()) {
                    m.widths.insert(format!("md.{name}"), w);
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.starts_with("logical_register ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("logical_register ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let (mut w, mut len) = (32u32, 1u64);
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if let Some(v) = l.strip_prefix("num_entries :") {
                    len = v
                        .trim()
                        .trim_end_matches(';')
                        .parse()
                        .map_err(|e| format!("bad num_entries `{v}`: {e}"))?;
                }
                if let Some(rest) = l.strip_prefix("fields {") {
                    if let Some((fw, _)) = parse_bit_decl(rest.trim().trim_end_matches('}').trim())
                    {
                        w = fw;
                    }
                }
                j += 1;
            }
            m.registers.insert(name, (w, len));
            i = j + 1;
            continue;
        }
        if t.starts_with("function ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("function ")
                .trim_end_matches('{')
                .trim()
                .trim_end_matches("()")
                .to_string();
            let (body, next) = parse_body(&lines, i + 1)?;
            m.functions.insert(name, body);
            i = next;
            continue;
        }
        if t.starts_with("logical_table ") && t.ends_with('{') {
            let name = t
                .trim_start_matches("logical_table ")
                .trim_end_matches('{')
                .trim()
                .to_string();
            let mut table = OTable::default();
            let mut j = i + 1;
            let mut depth = 1i32;
            while j < lines.len() {
                let l = lines[j].trim().to_string();
                if l == "key_construct() {" {
                    let (branches, next) = parse_key_construct(&lines, j + 1)?;
                    table.key_by_pass = branches;
                    j = next;
                    continue;
                }
                if l == "fields_assign() {" {
                    let (body, next) = parse_body(&lines, j + 1)?;
                    table.fields_assign = body;
                    j = next;
                    continue;
                }
                depth += braces(&l);
                if depth == 0 {
                    break;
                }
                j += 1;
            }
            table.lookups = table.key_by_pass.keys().max().map(|&p| p + 1).unwrap_or(1);
            m.tables.insert(name, table);
            i = j + 1;
            continue;
        }
        if t.starts_with("program ") && t.ends_with('{') {
            let mut j = i + 1;
            while j < lines.len() && lines[j].trim() != "}" {
                let l = lines[j].trim();
                if let Some((table, pass)) = parse_lookup_call(l) {
                    m.steps.push(Step::NplLookup { table, pass });
                } else if let Some(f) = l.strip_suffix("();") {
                    m.steps.push(Step::Func {
                        name: f.to_string(),
                    });
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    Ok(m)
}

/// `t.lookup(n);` → (t, n).
fn parse_lookup_call(l: &str) -> Option<(String, u32)> {
    let (table, rest) = l.split_once(".lookup(")?;
    let pass = rest
        .trim_end_matches(';')
        .trim_end_matches(')')
        .parse()
        .ok()?;
    Some((table.to_string(), pass))
}

/// `bit[W] name;` → (W, name).
fn parse_bit_decl(l: &str) -> Option<(u32, String)> {
    let rest = l.strip_prefix("bit[")?;
    let (w, name) = rest.split_once(']')?;
    let w = w.parse::<u32>().ok()?;
    Some((w, name.trim().trim_end_matches(';').to_string()))
}

/// Parse a `{ … }` body of statements with optional `if (cond) { … }`
/// guards, returning the statements and the index just past the closing
/// brace.
fn parse_body(lines: &[String], start: usize) -> Result<(Vec<OStmt>, usize), String> {
    let mut out = Vec::new();
    let mut j = start;
    while j < lines.len() {
        let l = lines[j].trim().to_string();
        if l == "}" {
            return Ok((out, j + 1));
        }
        if let Some(cond) = l.strip_prefix("if ").and_then(|r| r.strip_suffix('{')) {
            let cond = parse_expr(&canon(cond.trim()))?;
            let (body, next) = parse_body(lines, j + 1)?;
            out.push(OStmt::Guarded { cond, body });
            j = next;
            continue;
        }
        if !l.is_empty() {
            if let Some(s) = parse_stmt(&l)? {
                out.push(s);
            }
        }
        j += 1;
    }
    Err("unterminated NPL block".into())
}

/// Parse `key_construct()` branches: pass → canonicalized key expression.
fn parse_key_construct(
    lines: &[String],
    start: usize,
) -> Result<(BTreeMap<u32, Expr>, usize), String> {
    let mut out = BTreeMap::new();
    let mut j = start;
    while j < lines.len() {
        let l = lines[j].trim().to_string();
        if l == "}" {
            return Ok((out, j + 1));
        }
        if let Some(rest) = l.strip_prefix("if (_LOOKUP") {
            let pass: u32 = rest
                .trim_end_matches('{')
                .trim()
                .trim_end_matches(')')
                .parse()
                .map_err(|e| format!("bad key_construct branch `{l}`: {e}"))?;
            let key_line = lines
                .get(j + 1)
                .map(|x| x.trim().to_string())
                .unwrap_or_default();
            let key = key_line
                .strip_prefix("key = ")
                .ok_or_else(|| format!("key_construct branch without key: `{key_line}`"))?
                .trim_end_matches(';');
            out.insert(pass, parse_expr(&canon(key))?);
            j += 3; // branch line, key line, closing brace
            continue;
        }
        j += 1;
    }
    Err("unterminated key_construct".into())
}

/// Parse one NPL statement (already unguarded) into an [`OStmt`].
fn parse_stmt(line: &str) -> Result<Option<OStmt>, String> {
    let src = canon(line.trim().trim_end_matches(';'));
    if src.is_empty() {
        return Ok(None);
    }
    if let Some((lhs, rhs)) = src.split_once(" = ") {
        let lhs = lhs.trim();
        if let Some((reg, idx)) = lhs.split_once(".value[") {
            let idx = idx.trim_end_matches(']');
            return Ok(Some(OStmt::RegWrite {
                reg: reg.to_string(),
                idx: parse_expr(idx)?,
                val: parse_expr(rhs.trim())?,
            }));
        }
        return Ok(Some(OStmt::Assign {
            dst: lhs.to_string(),
            rhs: parse_expr(rhs.trim())?,
        }));
    }
    let e = parse_expr(&src)?;
    let Expr::Call(name, args) = e else {
        return Err(format!("unrecognized NPL statement `{line}`"));
    };
    Ok(Some(OStmt::Effect { name, args }))
}

/// Rewrite `lyra_bus.` name prefixes to the canonical `md.` namespace,
/// touching only whole-token prefixes.
fn canon(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < b.len() {
        let at_name_start = i == 0 || {
            let prev = b[i - 1] as char;
            !(prev.is_ascii_alphanumeric() || prev == '_' || prev == '.')
        };
        if at_name_start && s[i..].starts_with("lyra_bus.") {
            out.push_str("md.");
            i += "lyra_bus.".len();
        } else {
            out.push(b[i] as char);
            i += 1;
        }
    }
    out
}

/// Net brace depth change of one line.
fn braces(l: &str) -> i32 {
    l.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"/* NPL program for S3 (trident4) — generated by Lyra */
bus lyra_bus {
    bit[32] lb_hash;
    bit[1] lb_hit;
}
logical_register pkt_count {
    table_type : register;
    num_entries : 16;
    fields { bit[32] value; }
}
function lyra_parser_init() {
    lyra_bus.lb_hash = 0;
}
logical_table lb_t0 {
    table_type : hash;
    min_size : 1024;
    max_size : 1024;
    keys { bit[32] key; }
    key_construct() {
        if (_LOOKUP0) {
            key = lyra_bus.lb_hash;
        }
    }
    fields_assign() {
        if (_HIT0) {
            lyra_bus.lb_hit = 1;
        }
        if (_LOOKUP0) {
            ipv4.dstAddr = lyra_bus.lb_hash + 1;
        }
    }
}
function lb_t1_fn() {
    if (md.lb_hit == 1) {
        drop();
    }
}
program lyra_main {
    lyra_parser_init();
    lb_t0.lookup(0);
    lb_t1_fn();
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).unwrap();
        assert_eq!(m.widths.get("md.lb_hash"), Some(&32));
        assert_eq!(m.registers.get("pkt_count"), Some(&(32, 16)));
        assert!(m.functions.contains_key("lyra_parser_init"));
        let t = &m.tables["lb_t0"];
        assert_eq!(t.lookups, 1);
        assert_eq!(t.key_by_pass.len(), 1);
        assert_eq!(t.fields_assign.len(), 2);
        assert!(matches!(&t.fields_assign[0], OStmt::Guarded { .. }));
        assert_eq!(m.steps.len(), 3);
        assert!(matches!(&m.steps[1], Step::NplLookup { pass: 0, .. }));
    }

    #[test]
    fn canonicalizes_bus_names() {
        assert_eq!(canon("lyra_bus.x = lyra_bus.y + 1"), "md.x = md.y + 1");
        assert_eq!(canon("my_lyra_bus.x"), "my_lyra_bus.x");
    }

    #[test]
    fn register_write_stmt() {
        let s = parse_stmt("pkt_count.value[lyra_bus.i] = lyra_bus.x;")
            .unwrap()
            .unwrap();
        assert!(matches!(s, OStmt::RegWrite { .. }));
    }
}
