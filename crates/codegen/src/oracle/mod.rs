//! Cross-backend semantic oracle: emitted-artifact interpreters.
//!
//! Each backend parser (`p414`, `p416`, `npl`) reads the code our own
//! emitter produced back into one executable [`ArtifactModel`]: declared
//! field widths, parser-time constant moves, register arrays, actions,
//! tables and the apply pipeline. [`run`] then executes a packet against
//! the model, driving table/action selection from the control stub's
//! `LYRA_TABLE_RULES` (see [`rules`]) and extern entries installed by the
//! test harness — exactly what the control-plane driver would install on
//! hardware.
//!
//! The executor mirrors the IR interpreter's semantics bit for bit
//! (wrapping 64-bit arithmetic, checked shifts/divides collapsing to 0,
//! the shared [`reference_hash`] standing in for the chip CRC units), so
//! any state difference between an IR run and an emitted-artifact run is a
//! translation bug, not interpreter noise. Divergences surface as
//! `LYR0601`/`LYR0602`; malformed artifacts as `LYR0603`; control-stub
//! inconsistencies as `LYR0605`.

pub mod expr;
pub mod npl;
pub mod p414;
pub mod p416;
pub mod rules;

use std::collections::{BTreeMap, BTreeSet};

use lyra_ir::interp::{global_read, global_write, reference_hash};

use expr::{mask, parse_expr, Env, Expr};
use rules::{TableRule, When};

/// One executable statement of an emitted action / function body.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant fields are described on the variants
pub enum OStmt {
    /// `dst = rhs` (dst is a canonical field name; masked to its width).
    Assign { dst: String, rhs: Expr },
    /// Hash-unit invocation: `dst = reference_hash(args) & mask(bits)`.
    Hash {
        dst: String,
        args: Vec<Expr>,
        bits: u32,
    },
    /// Register array read `dst = reg[idx]`.
    RegRead { dst: String, reg: String, idx: Expr },
    /// Register array write `reg[idx] = val`.
    RegWrite { reg: String, idx: Expr, val: Expr },
    /// Externally visible action (canonical name, evaluated args).
    Effect { name: String, args: Vec<Expr> },
    /// `if (cond) { body }` (NPL guards).
    Guarded { cond: Expr, body: Vec<OStmt> },
}

/// A parsed action.
#[derive(Debug, Clone, Default)]
pub struct OAction {
    /// Action-data parameter names (bound from the matched entry's value).
    pub params: Vec<String>,
    /// Body in source order.
    pub body: Vec<OStmt>,
}

/// A parsed table.
#[derive(Debug, Clone, Default)]
pub struct OTable {
    /// P4 match-key field expressions (empty for keyless tables).
    pub keys: Vec<Expr>,
    /// P4 action names in declared order.
    pub actions: Vec<String>,
    /// NPL `key_construct()` branches: pass → key expression.
    pub key_by_pass: BTreeMap<u32, Expr>,
    /// NPL `fields_assign()` body.
    pub fields_assign: Vec<OStmt>,
    /// NPL lookup pass count.
    pub lookups: u32,
}

/// One step of the apply pipeline.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant fields are described on the variants
pub enum Step {
    /// Apply a P4 table, optionally behind a gateway condition.
    Apply { table: String, gate: Option<Expr> },
    /// Call an NPL function / parser-init function.
    Func { name: String },
    /// One NPL `table.lookup(pass)` invocation.
    NplLookup { table: String, pass: u32 },
    /// Pipeline recirculation marker (no packet-state semantics here).
    Recirculate,
}

/// Executable model of one emitted artifact.
#[derive(Debug, Clone, Default)]
pub struct ArtifactModel {
    /// Canonical field name → declared width (headers, metadata, bridge).
    pub widths: BTreeMap<String, u32>,
    /// Parser-time constant moves, in order.
    pub parser_inits: Vec<(String, u64)>,
    /// Register arrays: name → (width, length).
    pub registers: BTreeMap<String, (u32, u64)>,
    /// Actions by name.
    pub actions: BTreeMap<String, OAction>,
    /// NPL function bodies by name.
    pub functions: BTreeMap<String, Vec<OStmt>>,
    /// Tables by name.
    pub tables: BTreeMap<String, OTable>,
    /// Apply pipeline in execution order.
    pub steps: Vec<Step>,
}

/// Control stub contents the oracle checks and executes against.
#[derive(Debug, Clone, Default)]
pub struct ControlModel {
    /// Parsed `LYRA_TABLE_RULES`.
    pub rules: Vec<TableRule>,
    /// Extern name → declared capacity.
    pub capacities: BTreeMap<String, u64>,
    /// Placement epoch advertised by the stub.
    pub epoch: u64,
    /// Python functions defined by the stub.
    pub functions: BTreeSet<String>,
    /// Whether any placeholder TODO survived into the stub.
    pub has_todo: bool,
}

/// Packet + environment fed to one oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleInput {
    /// Initial canonical field values (the packet).
    pub init: BTreeMap<String, u64>,
    /// Entries per *emitted table name*: key → value (lists store 1).
    pub table_entries: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Initial register contents.
    pub globals: BTreeMap<String, Vec<u64>>,
}

/// Result of one oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleOutcome {
    /// Final canonical field values.
    pub vars: BTreeMap<String, u64>,
    /// Final register contents.
    pub globals: BTreeMap<String, Vec<u64>>,
    /// Canonical effects in firing order.
    pub effects: Vec<(String, Vec<u64>)>,
}

/// Value-producing builtins with the IR interpreter's exact semantics —
/// a thin re-export of the one shared dispatch in `lyra_ir::interp`, so
/// the artifact oracle and the IR interpreter can never drift.
pub fn builtin_call(name: &str, args: &[u64]) -> u64 {
    lyra_ir::interp::builtin_call(name, args)
}

/// Map backend intrinsic field spellings to the IR builtin they realize,
/// so reading `eg_intr_md.deq_qdepth` and calling `get_queue_len()` agree.
pub fn intrinsic_builtin(name: &str) -> Option<&'static str> {
    match name {
        "eg_intr_md.deq_qdepth" | "std_meta.deq_qdepth" => Some("get_queue_len"),
        "ig_intr_md.ingress_global_tstamp" | "std_meta.ingress_global_timestamp" => {
            Some("get_ingress_timestamp")
        }
        "eg_intr_md.egress_global_tstamp" | "std_meta.egress_global_timestamp" => {
            Some("get_egress_timestamp")
        }
        "md.lyra_switch_id" => Some("get_switch_id"),
        "ig_intr_md.ingress_port" => Some("get_ingress_port"),
        "eg_intr_md.egress_port" => Some("get_egress_port"),
        _ => None,
    }
}

/// Canonicalize an effect so the IR run and every backend agree on the
/// name/argument shape. Returns `None` for non-effects (`no_op`).
pub fn canonical_effect(name: &str, args: Vec<u64>) -> Option<(String, Vec<u64>)> {
    let name = name.strip_prefix("lyra_").unwrap_or(name);
    match name {
        "drop" | "mark_to_drop" => Some(("drop".into(), Vec::new())),
        "forward" | "set_egress_port" => Some(("set_egress_port".into(), args)),
        "recirculate" => Some(("recirculate".into(), Vec::new())),
        "resubmit" => Some(("resubmit".into(), Vec::new())),
        "count" => Some(("count".into(), Vec::new())),
        // Header validity args are name references, not data — compare by
        // effect identity only.
        "add_header" | "remove_header" => Some((name.into(), Vec::new())),
        "no_op" | "NoAction" => None,
        other => Some((other.into(), args)),
    }
}

struct ExecEnv<'a> {
    model: &'a ArtifactModel,
    vars: BTreeMap<String, u64>,
    globals: BTreeMap<String, Vec<u64>>,
    effects: Vec<(String, Vec<u64>)>,
    bindings: BTreeMap<String, u64>,
}

impl Env for ExecEnv<'_> {
    fn read(&mut self, name: &str) -> u64 {
        if let Some(v) = self.bindings.get(name) {
            return *v;
        }
        if let Some(b) = intrinsic_builtin(name) {
            return builtin_call(b, &[]);
        }
        self.vars.get(name).copied().unwrap_or(0)
    }

    fn call(&mut self, name: &str, args: &[u64]) -> u64 {
        builtin_call(name, args)
    }

    fn index(&mut self, name: &str, idx: u64) -> u64 {
        let g = name.strip_suffix(".value").unwrap_or(name);
        self.globals
            .get(g)
            .map(|a| global_read(a, idx))
            .unwrap_or(0)
    }
}

impl ExecEnv<'_> {
    fn write(&mut self, name: &str, v: u64) {
        let w = self.model.widths.get(name).copied().unwrap_or(0);
        self.vars.insert(name.to_string(), mask(v, w));
    }

    fn run_body(&mut self, body: &[OStmt]) -> Result<(), String> {
        for s in body {
            match s {
                OStmt::Assign { dst, rhs } => {
                    let v = rhs.eval(self);
                    self.write(dst, v);
                }
                OStmt::Hash { dst, args, bits } => {
                    let vals: Vec<u64> = args.iter().map(|a| a.eval(self)).collect();
                    let v = reference_hash(&vals) & mask(u64::MAX, *bits);
                    self.write(dst, v);
                }
                OStmt::RegRead { dst, reg, idx } => {
                    let i = idx.eval(self);
                    let v = self.index(reg, i);
                    self.write(dst, v);
                }
                OStmt::RegWrite { reg, idx, val } => {
                    let i = idx.eval(self);
                    let v = val.eval(self);
                    let arr = self.globals.entry(reg.clone()).or_default();
                    global_write(arr, i, v);
                }
                OStmt::Effect { name, args } => {
                    let vals: Vec<u64> = args.iter().map(|a| a.eval(self)).collect();
                    if let Some(e) = canonical_effect(name, vals) {
                        self.effects.push(e);
                    }
                }
                OStmt::Guarded { cond, body } => {
                    if cond.eval(self) != 0 {
                        self.run_body(body)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Execute `input` against `model`, selecting table actions per `rules`.
pub fn run(
    model: &ArtifactModel,
    rules: &[TableRule],
    input: &OracleInput,
) -> Result<OracleOutcome, String> {
    let mut env = ExecEnv {
        model,
        vars: input.init.clone(),
        globals: input.globals.clone(),
        effects: Vec::new(),
        bindings: BTreeMap::new(),
    };
    for (g, &(_, len)) in &model.registers {
        env.globals
            .entry(g.clone())
            .or_insert_with(|| vec![0; len as usize]);
    }
    for (dst, c) in &model.parser_inits {
        env.write(dst, *c);
    }
    let steps = model.steps.clone();
    for step in &steps {
        match step {
            Step::Recirculate => {}
            Step::Func { name } => {
                let body = model
                    .functions
                    .get(name)
                    .ok_or_else(|| format!("apply calls unknown function `{name}`"))?
                    .clone();
                env.run_body(&body)?;
            }
            Step::Apply { table, gate } => {
                if let Some(g) = gate {
                    if g.eval(&mut env) == 0 {
                        continue;
                    }
                }
                let t = model
                    .tables
                    .get(table)
                    .ok_or_else(|| format!("apply names unknown table `{table}`"))?
                    .clone();
                let (hit, value) = if t.keys.is_empty() {
                    (false, None)
                } else {
                    let k = t.keys[0].eval(&mut env);
                    match input.table_entries.get(table).and_then(|m| m.get(&k)) {
                        Some(v) => (true, Some(*v)),
                        None => (false, None),
                    }
                };
                let trules: Vec<&TableRule> = rules.iter().filter(|r| &r.table == table).collect();
                if trules.is_empty() {
                    return Err(format!("no control-plane rules for table `{table}`"));
                }
                for rule in trules {
                    let fires = match rule.when {
                        When::Always => true,
                        When::Hit => hit,
                        When::Miss => !hit && !t.keys.is_empty(),
                    };
                    if !fires {
                        continue;
                    }
                    if let Some(c) = &rule.cond {
                        let e = parse_expr(c).map_err(|e| format!("rule cond: {e}"))?;
                        if e.eval(&mut env) == 0 {
                            continue;
                        }
                    }
                    let action = model
                        .actions
                        .get(&rule.action)
                        .ok_or_else(|| {
                            format!("rule names unknown action `{}` of `{table}`", rule.action)
                        })?
                        .clone();
                    if let Some(v) = value {
                        for p in &action.params {
                            env.bindings.insert(p.clone(), v);
                        }
                    }
                    let r = env.run_body(&action.body);
                    env.bindings.clear();
                    r?;
                }
            }
            Step::NplLookup { table, pass } => {
                let t = model
                    .tables
                    .get(table)
                    .ok_or_else(|| format!("lookup names unknown table `{table}`"))?
                    .clone();
                let (hit, value) = match t.key_by_pass.get(pass) {
                    Some(kx) => {
                        let k = kx.eval(&mut env);
                        match input.table_entries.get(table).and_then(|m| m.get(&k)) {
                            Some(v) => (true, Some(*v)),
                            None => (false, None),
                        }
                    }
                    None => (false, None),
                };
                for li in 0..t.lookups.max(*pass + 1) {
                    env.bindings.insert(format!("_LOOKUP{li}"), 0);
                    env.bindings.insert(format!("_HIT{li}"), 0);
                }
                env.bindings.insert(format!("_LOOKUP{pass}"), 1);
                env.bindings.insert(format!("_HIT{pass}"), hit as u64);
                env.bindings
                    .insert(format!("{table}_value"), value.unwrap_or(0));
                let r = env.run_body(&t.fields_assign);
                env.bindings.clear();
                r?;
            }
        }
    }
    Ok(OracleOutcome {
        vars: env.vars,
        globals: env.globals,
        effects: env.effects,
    })
}

/// Parse the Python control stub into a [`ControlModel`].
pub fn parse_control(stub: &str) -> Result<ControlModel, String> {
    let mut cm = ControlModel {
        has_todo: stub.contains("TODO"),
        ..Default::default()
    };
    let mut in_rules = false;
    for line in stub.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("def ") {
            if let Some(name) = rest.split('(').next() {
                cm.functions.insert(name.trim().to_string());
            }
        }
        if let Some(rest) = t.strip_suffix("_CAPACITY") {
            let _ = rest; // handled below on the assignment form
        }
        if let Some((lhs, rhs)) = t.split_once(" = ") {
            if let Some(name) = lhs.strip_suffix("_CAPACITY") {
                if let Ok(n) = rhs.trim().parse::<u64>() {
                    cm.capacities.insert(name.to_string(), n);
                }
            }
            if lhs == "PLACEMENT_EPOCH" {
                if let Ok(n) = rhs.trim().parse::<u64>() {
                    cm.epoch = n;
                }
            }
        }
        if t.starts_with("LYRA_TABLE_RULES") && t.ends_with('[') {
            in_rules = true;
            continue;
        }
        if in_rules {
            if t.starts_with(']') {
                in_rules = false;
                continue;
            }
            cm.rules.push(parse_rule_tuple(t)?);
        }
    }
    Ok(cm)
}

/// Parse one `("table", "action", "when", None | "cond"),` stub line.
fn parse_rule_tuple(line: &str) -> Result<TableRule, String> {
    let t = line
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(',')
        .trim_end_matches(')');
    // Split on quote boundaries: fields are quoted strings or None.
    let mut fields: Vec<Option<String>> = Vec::new();
    let mut rest = t;
    for _ in 0..4 {
        let r = rest.trim_start().trim_start_matches(',').trim_start();
        if let Some(after) = r.strip_prefix("None") {
            fields.push(None);
            rest = after;
        } else if let Some(body) = r.strip_prefix('"') {
            let end = body
                .find('"')
                .ok_or_else(|| format!("unterminated string in rule `{line}`"))?;
            fields.push(Some(body[..end].to_string()));
            rest = &body[end + 1..];
        } else {
            return Err(format!("malformed rule tuple `{line}`"));
        }
    }
    let get = |i: usize| -> Result<String, String> {
        fields[i]
            .clone()
            .ok_or_else(|| format!("rule field {i} must not be None in `{line}`"))
    };
    Ok(TableRule {
        table: get(0)?,
        action: get(1)?,
        when: When::parse(&get(2)?).ok_or_else(|| format!("bad rule `when` in `{line}`"))?,
        cond: fields[3].clone(),
    })
}

/// Serialize rules for the control stub (one tuple per line).
pub fn rule_lines(rules: &[TableRule]) -> Vec<String> {
    rules
        .iter()
        .map(|r| {
            let cond = match &r.cond {
                Some(c) => format!("\"{c}\""),
                None => "None".to_string(),
            };
            format!(
                "    (\"{}\", \"{}\", \"{}\", {cond}),",
                r.table,
                r.action,
                r.when.as_str()
            )
        })
        .collect()
}

/// Strip `/* … */` comments and trailing `//` comments from one line.
pub(crate) fn strip_comments(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    loop {
        match rest.find("/*") {
            Some(i) => {
                out.push_str(&rest[..i]);
                match rest[i..].find("*/") {
                    Some(j) => rest = &rest[i + j + 2..],
                    None => break,
                }
            }
            None => {
                out.push_str(rest);
                break;
            }
        }
    }
    if let Some(i) = out.find("//") {
        out.truncate(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_lines_roundtrip() {
        let rules = vec![
            TableRule {
                table: "a_t0".into(),
                action: "a_x_act0".into(),
                when: When::Hit,
                cond: None,
            },
            TableRule {
                table: "a_t1".into(),
                action: "a_t1_act1".into(),
                when: When::Always,
                cond: Some("md.a_h != 0".into()),
            },
        ];
        let stub = format!(
            "PLACEMENT_EPOCH = 3\nvip_table_CAPACITY = 512\nLYRA_TABLE_RULES = [\n{}\n]\ndef lyra_init(driver):\n    pass\n",
            rule_lines(&rules).join("\n")
        );
        let cm = parse_control(&stub).unwrap();
        assert_eq!(cm.epoch, 3);
        assert_eq!(cm.capacities.get("vip_table"), Some(&512));
        assert!(cm.functions.contains("lyra_init"));
        assert_eq!(cm.rules.len(), 2);
        assert_eq!(cm.rules[0].when, When::Hit);
        assert_eq!(cm.rules[0].cond, None);
        assert_eq!(cm.rules[1].cond.as_deref(), Some("md.a_h != 0"));
    }

    #[test]
    fn builtin_parity_with_interp() {
        // Same constants as lyra_ir::interp.
        assert_eq!(
            builtin_call("crc32_hash", &[42]),
            reference_hash(&[42]) & 0xffff_ffff
        );
        assert_eq!(
            builtin_call("crc16_hash", &[42]),
            reference_hash(&[42]) & 0xffff
        );
        assert_eq!(builtin_call("min", &[9, 4, 7]), 4);
        assert_eq!(
            builtin_call("lyra_get_switch_id", &[]),
            reference_hash(&["get_switch_id".len() as u64]) & 0xffff_ffff
        );
    }

    #[test]
    fn comment_stripping() {
        assert_eq!(
            strip_comments("    modify_field(x, 1); /* table hit */"),
            "    modify_field(x, 1); "
        );
        assert_eq!(strip_comments("a = 0; // miss default"), "a = 0; ");
    }
}
