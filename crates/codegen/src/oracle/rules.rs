//! Control-plane table rules shared by the emitters and the oracle.
//!
//! The synthesized tables carry their gating semantics in the IR
//! (per-action predicates, extern hit/miss). On hardware that gating is
//! realized by the *control plane*: the stub installs entries, default
//! actions and gateway rules. This module derives those rules once so the
//! control stub (which embeds them as `LYRA_TABLE_RULES`), the P4₁₆
//! gateway `if`s and the oracle's executors all agree on a single source
//! of truth.
//!
//! Per synthesized action:
//! * actions containing a table op (`in` / `[]`) run **on hit** — the
//!   looked-up value arrives as action data, so the action cannot run on a
//!   miss;
//! * if such an action also contains plain statements, the emitters
//!   synthesize a `<name>_miss` twin holding only those statements, which
//!   runs **on miss** (the IR executes them regardless of hit/miss);
//! * all other actions run **always** (subject to their condition).
//!
//! The condition is the action's uniform predicate. A predicate whose
//! defining instruction is *plumbing* (never emitted as a statement) is
//! inlined as a comparison over source fields; one that is materialized is
//! rendered as a stored-value test `x != 0` — re-evaluating it at gate
//! time would be unsound when an operand was overwritten in between (see
//! `compute_plumbing`'s stability pass).

use std::collections::{BTreeMap, BTreeSet};

use lyra_ir::{InstrId, IrAlgorithm, IrOp, IrProgram, Operand, ValueId};
use lyra_lang::{BinOp, UnOp};
use lyra_synth::util::compute_plumbing;
use lyra_synth::{SwitchPlan, SynthAction, SynthTable};

use crate::emit::Render;
use crate::p416::split_wide_compare;

/// When a rule fires relative to the table's match outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// Run when the table lookup hit.
    Hit,
    /// Run when the table lookup missed.
    Miss,
    /// Run unconditionally (keyless tables).
    Always,
}

impl When {
    /// Stable wire name used in the control stub.
    pub fn as_str(self) -> &'static str {
        match self {
            When::Hit => "hit",
            When::Miss => "miss",
            When::Always => "always",
        }
    }

    /// Parse the wire name back.
    pub fn parse(s: &str) -> Option<When> {
        match s {
            "hit" => Some(When::Hit),
            "miss" => Some(When::Miss),
            "always" => Some(When::Always),
            _ => None,
        }
    }
}

/// One control-plane rule: run `action` of `table` when the match outcome
/// is `when` and `cond` (if any) evaluates nonzero on the live packet
/// state.
#[derive(Debug, Clone)]
pub struct TableRule {
    /// Emitted table name.
    pub table: String,
    /// Emitted action name (may be a synthesized `*_miss` twin).
    pub action: String,
    /// Hit/miss/always gating.
    pub when: When,
    /// Rendered predicate over emitted field names (`md.` form), or `None`
    /// for unconditional rules.
    pub cond: Option<String>,
}

/// The uniform predicate of a synthesized action (every instruction of an
/// action comes from one predicate block, so the first instruction is
/// representative).
pub fn action_pred(alg: &IrAlgorithm, a: &SynthAction) -> Option<ValueId> {
    a.instrs.first().and_then(|&i| alg.instr(i).pred)
}

/// Does this instruction read an extern table (hit test or value lookup)?
pub fn is_table_op(op: &IrOp) -> bool {
    matches!(op, IrOp::TableMember { .. } | IrOp::TableLookup { .. })
}

/// Name of the synthesized miss twin of `action`.
pub fn miss_action_name(action: &str) -> String {
    format!("{action}_miss")
}

/// Does `a` need a miss twin: it is backed by an extern table, contains a
/// table op *and* plain statements that the IR executes regardless of the
/// lookup outcome.
pub fn needs_miss_twin(alg: &IrAlgorithm, t: &SynthTable, a: &SynthAction) -> bool {
    t.extern_name().is_some()
        && a.instrs.iter().any(|&i| is_table_op(&alg.instr(i).op))
        && a.instrs.iter().any(|&i| !is_table_op(&alg.instr(i).op))
}

/// Derive the rules for every table of a switch plan, in emission order.
pub fn table_rules(ir: &IrProgram, plan: &SwitchPlan) -> Vec<TableRule> {
    let mut plumb: BTreeMap<String, BTreeSet<InstrId>> = BTreeMap::new();
    let mut out = Vec::new();
    for t in &plan.tables {
        let Some(alg) = ir.algorithm(&t.algorithm) else {
            continue;
        };
        let plumbing = plumb.entry(t.algorithm.clone()).or_insert_with(|| {
            let subset = plan.instrs.get(&t.algorithm).cloned().unwrap_or_default();
            compute_plumbing(alg, &subset)
        });
        let r = Render {
            alg,
            prefix: &t.algorithm,
        };
        let extern_backed = t.extern_name().is_some();
        for a in &t.actions {
            let cond = action_pred(alg, a).map(|p| render_cond(alg, &r, plumbing, p, 0));
            let has_table_op = a.instrs.iter().any(|&i| is_table_op(&alg.instr(i).op));
            if extern_backed && has_table_op {
                out.push(TableRule {
                    table: t.name.clone(),
                    action: a.name.clone(),
                    when: When::Hit,
                    cond: cond.clone(),
                });
                if needs_miss_twin(alg, t, a) {
                    out.push(TableRule {
                        table: t.name.clone(),
                        action: miss_action_name(&a.name),
                        when: When::Miss,
                        cond,
                    });
                }
            } else {
                out.push(TableRule {
                    table: t.name.clone(),
                    action: a.name.clone(),
                    when: When::Always,
                    cond,
                });
            }
        }
    }
    out
}

/// Render predicate `p` as a boolean condition over emitted field names.
///
/// Inlines only through *plumbing* definitions (which are never emitted as
/// statements, so their storage is never written); anything materialized is
/// tested as `name != 0` against its stored value. `max_compare` splits
/// wide equality compares (0 = no splitting).
pub fn render_cond(
    alg: &IrAlgorithm,
    r: &Render,
    plumbing: &BTreeSet<InstrId>,
    p: ValueId,
    max_compare: u32,
) -> String {
    let def = alg.value(p).def.filter(|d| plumbing.contains(d));
    let Some(def) = def else {
        return format!("{} != 0", r.value(p));
    };
    match &alg.instr(def).op {
        IrOp::Binary { op, a, b } => {
            let (pa, pb) = (
                render_val(alg, r, plumbing, a, max_compare),
                render_val(alg, r, plumbing, b, max_compare),
            );
            match op {
                BinOp::Eq => {
                    let w = operand_width(alg, a).max(operand_width(alg, b));
                    split_wide_compare(&pa, &pb, w, max_compare)
                }
                BinOp::Ne => format!("{pa} != {pb}"),
                BinOp::Lt => format!("{pa} < {pb}"),
                BinOp::Le => format!("{pa} <= {pb}"),
                BinOp::Gt => format!("{pa} > {pb}"),
                BinOp::Ge => format!("{pa} >= {pb}"),
                BinOp::LAnd => format!(
                    "({}) && ({})",
                    render_operand_cond(alg, r, plumbing, a, max_compare),
                    render_operand_cond(alg, r, plumbing, b, max_compare)
                ),
                BinOp::LOr => format!(
                    "({}) || ({})",
                    render_operand_cond(alg, r, plumbing, a, max_compare),
                    render_operand_cond(alg, r, plumbing, b, max_compare)
                ),
                _ => format!("{} != 0", r.value(p)),
            }
        }
        IrOp::Unary { op: UnOp::Not, a } => {
            format!(
                "!({})",
                render_operand_cond(alg, r, plumbing, a, max_compare)
            )
        }
        _ => format!("{} != 0", r.value(p)),
    }
}

fn render_operand_cond(
    alg: &IrAlgorithm,
    r: &Render,
    plumbing: &BTreeSet<InstrId>,
    o: &Operand,
    max_compare: u32,
) -> String {
    match o {
        Operand::Const(c) => format!("{c} != 0"),
        Operand::Value(v) => render_cond(alg, r, plumbing, *v, max_compare),
    }
}

/// Render an operand in *value* position inside a condition. Plumbing
/// definitions (whose storage never exists) are inlined as parenthesized
/// boolean expressions — comparisons evaluate to 0/1 in every backend's
/// expression semantics, so the value is preserved.
fn render_val(
    alg: &IrAlgorithm,
    r: &Render,
    plumbing: &BTreeSet<InstrId>,
    o: &Operand,
    max_compare: u32,
) -> String {
    match o {
        Operand::Const(_) => r.operand(o),
        Operand::Value(v) => {
            if alg.value(*v).def.map(|d| plumbing.contains(&d)) == Some(true) {
                format!("({})", render_cond(alg, r, plumbing, *v, max_compare))
            } else {
                r.value(*v)
            }
        }
    }
}

fn operand_width(alg: &IrAlgorithm, o: &Operand) -> u32 {
    match o {
        Operand::Const(_) => 0,
        Operand::Value(v) => alg.value(*v).width,
    }
}

/// Rewrite a `md.`-form condition to NPL bus names (`lyra_bus.` prefix),
/// touching only whole `md.` name prefixes.
pub fn to_bus_cond(cond: &str) -> String {
    let b = cond.as_bytes();
    let mut out = String::with_capacity(cond.len());
    let mut i = 0;
    while i < b.len() {
        let at_name_start = i == 0 || {
            let prev = b[i - 1] as char;
            !(prev.is_ascii_alphanumeric() || prev == '_' || prev == '.')
        };
        if at_name_start && cond[i..].starts_with("md.") {
            out.push_str("lyra_bus.");
            i += 3;
        } else {
            out.push(b[i] as char);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::frontend;

    fn plumbing_and_alg(src: &str) -> (lyra_ir::IrProgram, BTreeSet<InstrId>) {
        let ir = frontend(src).unwrap();
        let subset: Vec<InstrId> = ir.algorithms[0].instr_ids().collect();
        let p = compute_plumbing(&ir.algorithms[0], &subset);
        (ir, p)
    }

    #[test]
    fn inline_condition_for_plumbing_pred() {
        let (ir, p) = plumbing_and_alg("pipeline[P]{a}; algorithm a { if (x == 5) { y = 1; } }");
        let alg = &ir.algorithms[0];
        let r = Render { alg, prefix: "a" };
        let gated = alg
            .instr_ids()
            .find(|&i| alg.instr(i).pred.is_some())
            .unwrap();
        let cond = render_cond(alg, &r, &p, alg.instr(gated).pred.unwrap(), 0);
        assert!(cond.contains("=="), "{cond}");
        assert!(cond.contains("md.a_x"), "{cond}");
    }

    #[test]
    fn stored_test_for_materialized_pred() {
        // x is clobbered between the comparison and the gate, so the
        // comparison is materialized and the gate reads its stored result.
        let (ir, p) = plumbing_and_alg(
            "pipeline[P]{a}; algorithm a { c = x == 5; x = 2; if (c) { y = 1; } }",
        );
        let alg = &ir.algorithms[0];
        let r = Render { alg, prefix: "a" };
        let gated = alg
            .instr_ids()
            .find(|&i| alg.instr(i).pred.is_some())
            .unwrap();
        let cond = render_cond(alg, &r, &p, alg.instr(gated).pred.unwrap(), 0);
        assert_eq!(cond, "md.a_c != 0");
    }

    #[test]
    fn bus_rewrite_only_touches_md_prefix() {
        assert_eq!(to_bus_cond("md.a_x == 5"), "lyra_bus.a_x == 5");
        assert_eq!(to_bus_cond("ipv4.ttl > md.a_y"), "ipv4.ttl > lyra_bus.a_y");
        assert_eq!(to_bus_cond("custom_md.f == 1"), "custom_md.f == 1");
    }
}
