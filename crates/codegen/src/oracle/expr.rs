//! Expression engine shared by the emitted-artifact interpreters.
//!
//! The three backends render conditions and right-hand sides in close but
//! not identical surface syntaxes (P4₁₄ primitive arguments, P4₁₆ infix
//! expressions with `(bit<N>)` casts and `?:`, NPL infix with `[hi:lo]`
//! slices and `reg.value[i]` indexing). This module tokenizes and parses
//! all of them into one [`Expr`] AST and evaluates it with *exactly* the
//! IR interpreter's semantics: wrapping 64-bit arithmetic, `checked_div`/
//! `checked_rem`/`checked_shl`/`checked_shr` collapsing to 0, comparisons
//! producing 0/1, and truncation applied only at named-destination writes.

use std::fmt;

/// Truncate `v` to `width` bits (width 0 or ≥64 = untouched) — identical
/// to the IR interpreter's masking rule.
pub fn mask(v: u64, width: u32) -> u64 {
    if width == 0 || width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// Evaluation environment: variable reads, calls, and register indexing
/// are delegated so each backend model can canonicalize names its own way.
pub trait Env {
    /// Read a variable by its emitted name (e.g. `md.lb_hash`,
    /// `hdr.ipv4.src_ip`, `lyra_bus.a_x`, `_LOOKUP0`).
    fn read(&mut self, name: &str) -> u64;
    /// Evaluate a value-producing call with already-evaluated arguments.
    fn call(&mut self, name: &str, args: &[u64]) -> u64;
    /// Read `name[idx]` where `name` is a register array reference
    /// (NPL `reg.value[i]`).
    fn index(&mut self, name: &str, idx: u64) -> u64;
}

/// Binary operators (IR-interpreter semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
}

/// A parsed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(u64),
    /// Named read (dotted names stay whole: `md.x`, `hdr.ipv4.ttl`).
    Var(String),
    /// `(bit<N>)e` / `(bit[N])e` cast: truncate to N bits.
    Cast(u32, Box<Expr>),
    /// `e[hi:lo]` bit slice (constant bounds, as emitted).
    Slice(Box<Expr>, u32, u32),
    /// `name[idx]` register-array indexing.
    Index(String, Box<Expr>),
    /// `!e` — logical not (1 iff e == 0).
    Not(Box<Expr>),
    /// `~e` — bitwise not.
    BitNot(Box<Expr>),
    /// `-e` — wrapping negation.
    Neg(Box<Expr>),
    /// Infix binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `c ? t : f`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `name(args)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Evaluate with IR-interpreter semantics.
    pub fn eval(&self, env: &mut dyn Env) -> u64 {
        match self {
            Expr::Num(n) => *n,
            Expr::Var(v) => env.read(v),
            Expr::Cast(w, e) => mask(e.eval(env), *w),
            Expr::Slice(e, hi, lo) => {
                let x = e.eval(env);
                mask(x >> lo, (hi - lo + 1).min(63))
            }
            Expr::Index(name, idx) => {
                let i = idx.eval(env);
                env.index(name, i)
            }
            Expr::Not(e) => (e.eval(env) == 0) as u64,
            Expr::BitNot(e) => !e.eval(env),
            Expr::Neg(e) => e.eval(env).wrapping_neg(),
            Expr::Bin(op, a, b) => {
                let (x, y) = (a.eval(env), b.eval(env));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => x.checked_div(y).unwrap_or(0),
                    BinOp::Mod => x.checked_rem(y).unwrap_or(0),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => x.checked_shl(y as u32).unwrap_or(0),
                    BinOp::Shr => x.checked_shr(y as u32).unwrap_or(0),
                    BinOp::Eq => (x == y) as u64,
                    BinOp::Ne => (x != y) as u64,
                    BinOp::Lt => (x < y) as u64,
                    BinOp::Le => (x <= y) as u64,
                    BinOp::Gt => (x > y) as u64,
                    BinOp::Ge => (x >= y) as u64,
                    BinOp::LAnd => ((x != 0) && (y != 0)) as u64,
                    BinOp::LOr => ((x != 0) || (y != 0)) as u64,
                }
            }
            Expr::Ternary(c, t, f) => {
                if c.eval(env) != 0 {
                    t.eval(env)
                } else {
                    f.eval(env)
                }
            }
            Expr::Call(name, args) => {
                let vals: Vec<u64> = args.iter().map(|a| a.eval(env)).collect();
                env.call(name, &vals)
            }
        }
    }
}

/// Lexer token.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // token payloads are self-describing
pub enum Tok {
    Num(u64),
    Ident(String),
    Op(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Op(o) => write!(f, "{o}"),
        }
    }
}

/// Tokenize an emitted expression/statement fragment. Identifiers keep
/// embedded dots (`md.x`, `std_meta.deq_qdepth`) so name canonicalization
/// happens in one place, the backend's [`Env`].
pub fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < b.len() && (b[i + 1] == b'x' || b[i + 1] == b'X') {
                i += 2;
                while i < b.len() && (b[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let n = u64::from_str_radix(&src[start + 2..i], 16)
                    .map_err(|e| format!("bad hex literal `{}`: {e}", &src[start..i]))?;
                out.push(Tok::Num(n));
            } else {
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = src[start..i]
                    .parse()
                    .map_err(|e| format!("bad literal `{}`: {e}", &src[start..i]))?;
                out.push(Tok::Num(n));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() {
                let ch = b[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                } else if ch == '.'
                    && i + 1 < b.len()
                    && ((b[i + 1] as char).is_ascii_alphanumeric() || b[i + 1] == b'_')
                {
                    i += 1; // dotted name continues
                } else {
                    break;
                }
            }
            out.push(Tok::Ident(src[start..i].to_string()));
            continue;
        }
        // Multi-char operators first.
        let two: &[(&str, &str)] = &[
            ("<<", "<<"),
            (">>", ">>"),
            ("==", "=="),
            ("!=", "!="),
            ("<=", "<="),
            (">=", ">="),
            ("&&", "&&"),
            ("||", "||"),
        ];
        if i + 1 < b.len() {
            let pair = &src[i..i + 2];
            if let Some((_, op)) = two.iter().find(|(p, _)| *p == pair) {
                out.push(Tok::Op(op));
                i += 2;
                continue;
            }
        }
        let one = match c {
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '%' => "%",
            '&' => "&",
            '|' => "|",
            '^' => "^",
            '~' => "~",
            '!' => "!",
            '<' => "<",
            '>' => ">",
            '(' => "(",
            ')' => ")",
            '[' => "[",
            ']' => "]",
            '{' => "{",
            '}' => "}",
            ',' => ",",
            '?' => "?",
            ':' => ":",
            ';' => ";",
            '=' => "=",
            _ => return Err(format!("unexpected character `{c}` in `{src}`")),
        };
        out.push(Tok::Op(one));
        i += 1;
    }
    Ok(out)
}

/// Recursive-descent parser over a token slice.
pub struct Parser<'t> {
    toks: &'t [Tok],
    pos: usize,
}

impl<'t> Parser<'t> {
    /// Start parsing at the beginning of `toks`.
    pub fn new(toks: &'t [Tok]) -> Self {
        Parser { toks, pos: 0 }
    }

    /// The current token, if any.
    pub fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require `op` as the next token.
    pub fn expect_op(&mut self, op: &str) -> Result<(), String> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(format!("expected `{op}`, found {:?}", self.peek()))
        }
    }

    /// True when every token has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Parse a full expression (ternary is the lowest precedence tier).
    pub fn expr(&mut self) -> Result<Expr, String> {
        let cond = self.binary(1)?;
        if self.eat_op("?") {
            let t = self.expr()?;
            self.expect_op(":")?;
            let f = self.expr()?;
            return Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)));
        }
        Ok(cond)
    }

    fn binop_at(&self, min_bp: u8) -> Option<(BinOp, u8)> {
        let op = match self.peek() {
            Some(Tok::Op(o)) => *o,
            _ => return None,
        };
        let (b, bp) = match op {
            "||" => (BinOp::LOr, 1),
            "&&" => (BinOp::LAnd, 2),
            "|" => (BinOp::Or, 3),
            "^" => (BinOp::Xor, 4),
            "&" => (BinOp::And, 5),
            "==" => (BinOp::Eq, 6),
            "!=" => (BinOp::Ne, 6),
            "<" => (BinOp::Lt, 7),
            "<=" => (BinOp::Le, 7),
            ">" => (BinOp::Gt, 7),
            ">=" => (BinOp::Ge, 7),
            "<<" => (BinOp::Shl, 8),
            ">>" => (BinOp::Shr, 8),
            "+" => (BinOp::Add, 9),
            "-" => (BinOp::Sub, 9),
            "*" => (BinOp::Mul, 10),
            "/" => (BinOp::Div, 10),
            "%" => (BinOp::Mod, 10),
            _ => return None,
        };
        (bp >= min_bp).then_some((b, bp))
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, String> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = self.binop_at(min_bp) {
            self.pos += 1;
            let rhs = self.binary(bp + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if self.eat_op("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_op("~") {
            return Ok(Expr::BitNot(Box::new(self.unary()?)));
        }
        if self.eat_op("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.postfix()
    }

    /// Try to parse `(bit<N>)` / `(bit[N])` starting at an already-eaten
    /// `(`. Returns the width if this really was a cast.
    fn cast_width(&mut self) -> Option<u32> {
        let save = self.pos;
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "bit" {
                self.pos += 1;
                let open_angle = self.eat_op("<");
                let open_square = !open_angle && self.eat_op("[");
                if open_angle || open_square {
                    if let Some(Tok::Num(w)) = self.peek().cloned() {
                        self.pos += 1;
                        let close = if open_angle { ">" } else { "]" };
                        if self.eat_op(close) && self.eat_op(")") {
                            return Some(w as u32);
                        }
                    }
                }
            }
        }
        self.pos = save;
        None
    }

    fn postfix(&mut self) -> Result<Expr, String> {
        let mut e = self.primary()?;
        loop {
            if self.eat_op("[") {
                // `x[hi:lo]` slice or `reg.value[i]` index.
                let first = self.expr()?;
                if self.eat_op(":") {
                    let lo = match self.expr()? {
                        Expr::Num(n) => n as u32,
                        other => return Err(format!("non-constant slice low bound {other:?}")),
                    };
                    let hi = match first {
                        Expr::Num(n) => n as u32,
                        other => return Err(format!("non-constant slice high bound {other:?}")),
                    };
                    self.expect_op("]")?;
                    if hi < lo {
                        return Err(format!("inverted slice bounds [{hi}:{lo}]"));
                    }
                    e = Expr::Slice(Box::new(e), hi, lo);
                } else {
                    self.expect_op("]")?;
                    let name = match e {
                        Expr::Var(v) => v,
                        other => return Err(format!("indexing non-name {other:?}")),
                    };
                    e = Expr::Index(name, Box::new(first));
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, String> {
        match self.bump().cloned() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Ident(id)) => {
                if self.eat_op("(") {
                    let mut args = Vec::new();
                    if !self.eat_op(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_op(")") {
                                break;
                            }
                            self.expect_op(",")?;
                        }
                    }
                    Ok(Expr::Call(id, args))
                } else {
                    Ok(Expr::Var(id))
                }
            }
            Some(Tok::Op("(")) => {
                if let Some(w) = self.cast_width() {
                    let e = self.unary()?;
                    return Ok(Expr::Cast(w, Box::new(e)));
                }
                let e = self.expr()?;
                self.expect_op(")")?;
                Ok(e)
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

/// Parse a complete expression string; every token must be consumed.
pub fn parse_expr(src: &str) -> Result<Expr, String> {
    let toks = tokenize(src)?;
    let mut p = Parser::new(&toks);
    let e = p.expr().map_err(|e| format!("{e} in `{src}`"))?;
    if !p.at_end() {
        return Err(format!("trailing tokens after expression in `{src}`"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    struct MapEnv(BTreeMap<String, u64>);
    impl Env for MapEnv {
        fn read(&mut self, name: &str) -> u64 {
            self.0.get(name).copied().unwrap_or(0)
        }
        fn call(&mut self, name: &str, args: &[u64]) -> u64 {
            match name {
                "min" => args.iter().copied().min().unwrap_or(0),
                _ => 0,
            }
        }
        fn index(&mut self, _name: &str, _idx: u64) -> u64 {
            7
        }
    }

    fn ev(src: &str, vars: &[(&str, u64)]) -> u64 {
        let mut env = MapEnv(vars.iter().map(|(k, v)| (k.to_string(), *v)).collect());
        parse_expr(src).unwrap().eval(&mut env)
    }

    #[test]
    fn precedence_matches_c() {
        assert_eq!(ev("1 + 2 * 3", &[]), 7);
        assert_eq!(ev("(1 + 2) * 3", &[]), 9);
        assert_eq!(ev("1 << 2 + 1", &[]), 8); // shifts bind looser than +
        assert_eq!(ev("6 & 3 == 3", &[]), 6 & 1); // == binds tighter than &
    }

    #[test]
    fn comparisons_and_logicals() {
        assert_eq!(ev("3 < 4 && 4 <= 4", &[]), 1);
        assert_eq!(ev("3 == 4 || 1", &[]), 1);
        assert_eq!(ev("!5", &[]), 0);
        assert_eq!(ev("!0", &[]), 1);
    }

    #[test]
    fn casts_and_slices() {
        assert_eq!(ev("(bit<8>)300", &[]), 44);
        assert_eq!(ev("(bit[8])300", &[]), 44);
        assert_eq!(ev("md.x[7:4]", &[("md.x", 0xab)]), 0xa);
    }

    #[test]
    fn ternary_and_dotted_names() {
        assert_eq!(ev("md.x == 1 ? 10 : 20", &[("md.x", 1)]), 10);
        assert_eq!(ev("hdr.ipv4.ttl - 1", &[("hdr.ipv4.ttl", 64)]), 63);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(ev("5 / 0", &[]), 0);
        assert_eq!(ev("5 % 0", &[]), 0);
        assert_eq!(ev("1 << 200", &[]), 0);
    }

    #[test]
    fn wrapping_matches_interp() {
        assert_eq!(ev("0 - 1", &[]), u64::MAX);
        assert_eq!(ev("-1", &[]), u64::MAX);
    }

    #[test]
    fn calls_and_indexing() {
        assert_eq!(ev("min(4, 9)", &[]), 4);
        assert_eq!(ev("pkt_count.value[3]", &[]), 7);
    }

    #[test]
    fn hex_literals() {
        assert_eq!(ev("0x0fffffff & 0xff", &[]), 0xff);
    }
}
