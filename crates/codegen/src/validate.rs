//! Structural validators for generated code.
//!
//! These stand in for the vendor toolchains the paper used to confirm its
//! output compiles: they re-scan the emitted P4₁₄ / P4₁₆ / NPL text, check
//! structural well-formedness (balanced braces, every applied table
//! declared, every action referenced by a table defined), and produce the
//! table/action/register counts reported in Figure 9.

use lyra_chips::TargetLang;

use crate::emit::Artifact;

/// Counts extracted from generated code — the Figure 9 resource columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CodeSummary {
    /// Tables (P4 `table` / NPL `logical_table`).
    pub tables: u64,
    /// Actions (P4 `action` / NPL `function` + `fields_assign` bodies).
    pub actions: u64,
    /// Stateful registers (P4 `register` / NPL `logical_register`).
    pub registers: u64,
    /// Total lines of code.
    pub loc: u64,
    /// NPL: number of `lookup` calls in the program block.
    pub lookups: u64,
}

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "validation error: {}", self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Validate an artifact and summarize its resource counts.
pub fn validate(artifact: &Artifact) -> Result<CodeSummary, ValidateError> {
    check_braces(&artifact.code)?;
    match artifact.lang {
        TargetLang::P414 => validate_p414(&artifact.code),
        TargetLang::P416 => validate_p416(&artifact.code),
        TargetLang::Npl => validate_npl(&artifact.code),
    }
}

fn check_braces(code: &str) -> Result<(), ValidateError> {
    let mut depth = 0i64;
    for (ln, line) in code.lines().enumerate() {
        let line = strip_comment(line);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return Err(ValidateError {
                            message: format!("unbalanced `}}` on line {}", ln + 1),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    if depth != 0 {
        return Err(ValidateError {
            message: format!("{depth} unclosed braces"),
        });
    }
    Ok(())
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Words following `keyword` at statement starts.
fn declared(code: &str, keyword: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in code.lines() {
        let t = strip_comment(line).trim();
        if let Some(rest) = t.strip_prefix(keyword) {
            if rest.starts_with(' ') {
                let name: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    out.push(name);
                }
            }
        }
    }
    out
}

fn loc(code: &str) -> u64 {
    code.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("/*"))
        .count() as u64
}

fn validate_p414(code: &str) -> Result<CodeSummary, ValidateError> {
    let tables = declared(code, "table");
    let actions = declared(code, "action");
    let registers = declared(code, "register");
    // Every apply(name) must reference a declared table.
    for line in code.lines() {
        let t = strip_comment(line).trim();
        if let Some(rest) = t.strip_prefix("apply(") {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !tables.contains(&name) {
                return Err(ValidateError {
                    message: format!("apply references undeclared table `{name}`"),
                });
            }
        }
    }
    // Every action listed inside `actions { ... }` must be declared.
    let mut in_actions = false;
    for line in code.lines() {
        let t = strip_comment(line).trim();
        if t.starts_with("actions {") {
            in_actions = true;
            continue;
        }
        if in_actions {
            if t.starts_with('}') {
                in_actions = false;
                continue;
            }
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && name != "no_op" && !actions.contains(&name) {
                return Err(ValidateError {
                    message: format!("table references undeclared action `{name}`"),
                });
            }
        }
    }
    Ok(CodeSummary {
        tables: tables.len() as u64,
        actions: actions.len() as u64,
        registers: registers.len() as u64,
        loc: loc(code),
        lookups: 0,
    })
}

fn validate_p416(code: &str) -> Result<CodeSummary, ValidateError> {
    let tables = declared(code, "table");
    let actions = declared(code, "action");
    let registers = code
        .lines()
        .filter(|l| strip_comment(l).trim_start().starts_with("register<"))
        .count() as u64;
    // Every `X.apply();` must reference a declared table.
    for line in code.lines() {
        let t = strip_comment(line).trim();
        if let Some(prefix) = t.strip_suffix(".apply();") {
            let name: String = prefix
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() && name != "pkt" && !tables.contains(&name) {
                return Err(ValidateError {
                    message: format!("apply references undeclared table `{name}`"),
                });
            }
        }
    }
    Ok(CodeSummary {
        tables: tables.len() as u64,
        actions: actions.len() as u64,
        registers,
        loc: loc(code),
        lookups: 0,
    })
}

fn validate_npl(code: &str) -> Result<CodeSummary, ValidateError> {
    let tables = declared(code, "logical_table");
    let functions = declared(code, "function");
    let registers = declared(code, "logical_register");
    let mut lookups = 0u64;
    let mut in_program = false;
    for line in code.lines() {
        let t = strip_comment(line).trim();
        if t.starts_with("program ") {
            in_program = true;
        }
        if in_program && t.starts_with('}') {
            in_program = false;
        }
        if t.contains(".lookup(") {
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !tables.contains(&name) {
                return Err(ValidateError {
                    message: format!("lookup references undeclared logical_table `{name}`"),
                });
            }
            lookups += 1;
        }
        if in_program && t.ends_with("();") && !t.contains('.') && t.len() > 3 {
            let name: String = t
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() && !functions.contains(&name) {
                return Err(ValidateError {
                    message: format!("program calls undeclared function `{name}`"),
                });
            }
        }
    }
    Ok(CodeSummary {
        tables: tables.len() as u64,
        actions: functions.len() as u64,
        registers: registers.len() as u64,
        loc: loc(code),
        lookups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brace_balance() {
        assert!(check_braces("a { b { } }").is_ok());
        assert!(check_braces("a { b {").is_err());
        assert!(check_braces("} }").is_err());
    }

    #[test]
    fn p414_detects_undeclared_table() {
        let code = "control ingress {\n    apply(missing);\n}\n";
        let err = validate_p414(code).unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn p414_counts() {
        let code = r#"
action a1() { no_op(); }
action a2() { no_op(); }
register r1 {
    width : 32;
    instance_count : 16;
}
table t1 {
    actions {
        a1;
    }
    size : 16;
}
control ingress {
    apply(t1);
}
"#;
        let s = validate_p414(code).unwrap();
        assert_eq!(s.tables, 1);
        assert_eq!(s.actions, 2);
        assert_eq!(s.registers, 1);
    }

    #[test]
    fn p414_detects_undeclared_action() {
        let code = "table t1 {\n    actions {\n        ghost;\n    }\n}\ncontrol ingress {\n    apply(t1);\n}\n";
        let err = validate_p414(code).unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn npl_counts_lookups() {
        let code = r#"
logical_table check_ip {
    table_type : hash;
    keys { bit[32] ip; }
    key_construct() {
    }
}
program main {
    check_ip.lookup(0);
    check_ip.lookup(1);
}
"#;
        let s = validate_npl(code).unwrap();
        assert_eq!(s.tables, 1);
        assert_eq!(s.lookups, 2);
    }

    #[test]
    fn npl_detects_bad_lookup() {
        let code = "program main {\n    ghost.lookup(0);\n}\n";
        assert!(validate_npl(code).is_err());
    }

    #[test]
    fn npl_detects_undeclared_function_call() {
        let code = "function real_fn() {\n}\nprogram main {\n    ghost_fn();\n}\n";
        let err = validate_npl(code).unwrap_err();
        assert!(err.message.contains("ghost_fn"), "{err}");
        let ok = "function real_fn() {\n}\nprogram main {\n    real_fn();\n}\n";
        assert!(validate_npl(ok).is_ok());
    }

    #[test]
    fn p416_detects_undeclared_apply() {
        let code = "control LyraIngress {\n    apply {\n        ghost.apply();\n    }\n}\n";
        let err = validate_p416(code).unwrap_err();
        assert!(err.message.contains("ghost"), "{err}");
    }

    #[test]
    fn p416_counts() {
        let code = r#"
register<bit<32>>(16) r0;
action set_x() { md.x = 1; }
table t1 {
    key = { md.x : exact; }
    actions = { set_x; NoAction; }
}
control LyraIngress {
    apply {
        t1.apply();
    }
}
"#;
        let s = validate_p416(code).unwrap();
        assert_eq!(s.tables, 1);
        assert_eq!(s.actions, 1);
        assert_eq!(s.registers, 1);
    }

    #[test]
    fn brace_errors_name_the_problem() {
        // The two brace failure modes carry distinct messages: a premature
        // `}` reports its line; a missing `}` reports the open count.
        let early = check_braces("}\n").unwrap_err();
        assert!(early.message.contains("line 1"), "{early}");
        let open = check_braces("a {\nb {\n").unwrap_err();
        assert!(open.message.contains("2 unclosed"), "{open}");
    }
}
