#![warn(missing_docs)]
//! # lyra-codegen — the translator (§5.7–§5.8)
//!
//! Turns a solved [`Placement`](lyra_synth::Placement) into runnable
//! chip-specific code: P4₁₄ for Tofino/RMT switches, P4₁₆ for Silicon One,
//! and NPL for Trident-4. Also generates the "empty" Python control-plane
//! stubs of §5.8 (one entry set/get pair per extern table) and structural
//! validators that stand in for the vendor compilers (they re-parse the
//! emitted code, check declaration/reference consistency, and count the
//! tables/actions/registers reported in Figure 9).

pub mod control;
pub mod emit;
pub mod npl;
pub mod oracle;
pub mod p414;
pub mod p416;
pub mod validate;

pub use control::control_plane_stub;
pub use emit::{generate, Artifact, CodegenError};
pub use validate::{validate, CodeSummary, ValidateError};

#[cfg(test)]
mod tests {
    use crate::emit::generate;
    use lyra_ir::frontend;
    use lyra_lang::parse_scopes;
    use lyra_synth::{synthesize, Backend, EncodeOptions};
    use lyra_topo::{figure1_network, resolve_scope};

    #[test]
    fn end_to_end_generates_p4_and_npl() {
        let ir = frontend(
            r#"
            pipeline[LB]{loadbalancer};
            algorithm loadbalancer {
                extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
                bit[32] hash;
                hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
                if (hash in conn_table) {
                    ipv4.dstAddr = conn_table[hash];
                }
            }
            "#,
        )
        .unwrap();
        let topo = figure1_network();
        let scopes = parse_scopes(
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
        )
        .unwrap();
        let resolved: Vec<_> = scopes
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        let res = synthesize(
            &ir,
            &topo,
            &resolved,
            &EncodeOptions::default(),
            &Backend::Native,
        )
        .unwrap();
        let artifacts = generate(&ir, &topo, &res).unwrap();
        assert!(!artifacts.is_empty());
        for a in &artifacts {
            let summary = crate::validate::validate(a).unwrap_or_else(|e| {
                panic!(
                    "artifact for {} failed validation: {e}\n{}",
                    a.switch, a.code
                )
            });
            assert!(
                summary.tables >= 1,
                "{} has no tables\n{}",
                a.switch,
                a.code
            );
            assert!(!a.control_plane.is_empty());
        }
    }
}
