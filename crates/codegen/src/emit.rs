//! Code generation driver and shared instruction rendering.

use lyra_chips::{by_name, TargetLang};
use lyra_ir::{IrAlgorithm, IrOp, IrProgram, Operand};
use lyra_synth::{SwitchPlan, SynthResult};
use lyra_topo::Topology;

/// One piece of generated chip-specific code for one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Switch name.
    pub switch: String,
    /// ASIC model name.
    pub asic: String,
    /// Target language.
    pub lang: TargetLang,
    /// The chip-specific program text.
    pub code: String,
    /// Python control-plane stub (§5.8).
    pub control_plane: String,
}

/// Code generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

/// Generate one artifact per switch that received code.
pub fn generate(
    ir: &IrProgram,
    topo: &Topology,
    result: &SynthResult,
) -> Result<Vec<Artifact>, CodegenError> {
    let mut out = Vec::new();
    for (name, plan) in &result.placement.switches {
        if plan.instrs.is_empty() {
            continue;
        }
        let sw = topo.find(name).ok_or_else(|| CodegenError {
            message: format!("placement references unknown switch `{name}`"),
        })?;
        let chip = by_name(&topo.switch(sw).asic).ok_or_else(|| CodegenError {
            message: format!("unknown ASIC `{}`", topo.switch(sw).asic),
        })?;
        let code = match chip.lang {
            TargetLang::P414 => crate::p414::emit(ir, name, plan, &chip),
            TargetLang::P416 => crate::p416::emit(ir, name, plan, &chip),
            TargetLang::Npl => crate::npl::emit(ir, name, plan, &chip),
        };
        let control_plane = crate::control::control_plane_stub(ir, name, plan);
        out.push(Artifact {
            switch: name.clone(),
            asic: chip.name.clone(),
            lang: chip.lang,
            code,
            control_plane,
        });
    }
    Ok(out)
}

/// A rendering context: resolves SSA values back to storage names.
pub struct Render<'a> {
    /// The algorithm being rendered.
    pub alg: &'a IrAlgorithm,
    /// Prefix applied to locals (algorithm isolation — §7.3).
    pub prefix: &'a str,
}

impl<'a> Render<'a> {
    /// Storage name of an operand (all SSA versions of a base share
    /// storage).
    pub fn operand(&self, o: &Operand) -> String {
        match o {
            Operand::Const(c) => {
                if *c > 255 {
                    format!("0x{c:x}")
                } else {
                    c.to_string()
                }
            }
            Operand::Value(v) => self.value(*v),
        }
    }

    /// Storage name of a value.
    pub fn value(&self, v: lyra_ir::ValueId) -> String {
        let info = self.alg.value(v);
        if info.base.contains('.') {
            // Header field: used verbatim.
            info.base.clone()
        } else {
            // Local / metadata: algorithm-prefixed metadata field.
            format!("md.{}_{}", self.prefix, sanitize(&info.base))
        }
    }

    /// Width of a value's storage.
    pub fn width(&self, v: lyra_ir::ValueId) -> u32 {
        self.alg.value(v).width.max(1)
    }
}

/// Make a base name identifier-safe (`%t3` → `t3`).
pub fn sanitize(base: &str) -> String {
    base.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect::<String>()
        .trim_start_matches('_')
        .to_string()
}

/// All metadata bases (name, width) an instruction set touches — the
/// generated program's metadata struct.
pub fn metadata_fields(alg: &IrAlgorithm, instrs: &[lyra_ir::InstrId]) -> Vec<(String, u32)> {
    let mut seen = std::collections::BTreeMap::new();
    let mut add = |v: lyra_ir::ValueId| {
        let info = alg.value(v);
        if !info.base.contains('.') {
            seen.entry(sanitize(&info.base))
                .or_insert(info.width.max(1));
        }
    };
    for &i in instrs {
        let instr = alg.instr(i);
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                add(v);
            }
        }
        if let Some(d) = instr.dst {
            add(d);
        }
        if let Some(p) = instr.pred {
            add(p);
        }
    }
    seen.into_iter().collect()
}

/// Header instances referenced by the instruction set.
pub fn header_instances(alg: &IrAlgorithm, instrs: &[lyra_ir::InstrId]) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    for &i in instrs {
        let instr = alg.instr(i);
        let mut values: Vec<lyra_ir::ValueId> = Vec::new();
        for o in instr.op.reads() {
            if let Operand::Value(v) = o {
                values.push(v);
            }
        }
        if let Some(d) = instr.dst {
            values.push(d);
        }
        for v in values {
            if let Some((inst, _)) = alg.value(v).base.split_once('.') {
                seen.insert(inst.to_string());
            }
        }
    }
    seen.into_iter().collect()
}

/// Gather every instruction deployed on a switch across algorithms, with
/// the owning algorithm.
pub fn deployed_instrs<'a>(
    ir: &'a IrProgram,
    plan: &SwitchPlan,
) -> Vec<(&'a IrAlgorithm, Vec<lyra_ir::InstrId>)> {
    let mut out = Vec::new();
    for (alg_name, instrs) in &plan.instrs {
        if let Some(alg) = ir.algorithm(alg_name) {
            out.push((alg, instrs.clone()));
        }
    }
    out
}

/// Does the op represent a hash builtin?
pub fn is_hash_call(op: &IrOp) -> Option<(&str, &Vec<Operand>)> {
    match op {
        IrOp::Call { name, args }
            if name == "crc32_hash" || name == "crc16_hash" || name == "identity_hash" =>
        {
            Some((name.as_str(), args))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::frontend;

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("%t3"), "t3");
        assert_eq!(sanitize("a.b"), "a_b");
        assert_eq!(sanitize("plain"), "plain");
    }

    #[test]
    fn metadata_collection() {
        let ir = frontend("pipeline[P]{a}; algorithm a { x = ipv4.src + 1; }").unwrap();
        let alg = &ir.algorithms[0];
        let instrs: Vec<_> = alg.instr_ids().collect();
        let md = metadata_fields(alg, &instrs);
        assert!(md.iter().any(|(n, _)| n == "x"));
        assert!(md.iter().all(|(n, _)| !n.contains('.')));
        let hdrs = header_instances(alg, &instrs);
        assert_eq!(hdrs, vec!["ipv4".to_string()]);
    }
}
