//! Golden-shape tests for the code emitters: for known inputs, the emitted
//! P4₁₄ / P4₁₆ / NPL must contain the exact structural elements the paper's
//! examples show (Figure 2's one-logical-table-two-lookups NPL, the
//! conn_table P4 shape, hash field lists, register primitives, bridge
//! headers).

use lyra::{CompileRequest, Compiler};
use lyra_topo::{Layer, Topology};

fn single(asic: &str) -> Topology {
    let mut t = Topology::new();
    t.add_switch("ToR1", Layer::ToR, asic);
    t
}

fn compile_on(program: &str, alg: &str, asic: &str) -> String {
    let out = Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(
            program,
            &format!("{alg}: [ ToR1 | PER-SW | - ]"),
            single(asic),
        ))
        .unwrap_or_else(|e| panic!("{alg} on {asic}: {e}"));
    out.artifacts[0].code.clone()
}

const LB: &str = r#"
    header_type ipv4_t { fields { bit[32] srcAddr; bit[32] dstAddr; } }
    parser_node start { extract(ipv4); }
    pipeline[LB]{lb};
    algorithm lb {
        extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
        bit[32] hash;
        hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
        if (hash in conn_table) {
            ipv4.dstAddr = conn_table[hash];
        }
    }
"#;

#[test]
fn p414_lb_shape() {
    let code = compile_on(LB, "lb", "tofino-32q");
    for needle in [
        "header_type ipv4_t {",
        "metadata lyra_metadata_t md;",
        "field_list lyra_fl_0 {",
        "field_list_calculation lyra_flc_0 {",
        "algorithm : crc32;",
        "modify_field_with_hash_based_offset(md.lb_hash, 0, lyra_flc_0,",
        "size : 1024;",
        "control ingress {",
    ] {
        assert!(code.contains(needle), "P4_14 missing `{needle}`:\n{code}");
    }
    // The conn_table table matches the computed hash and carries the
    // looked-up value as action data.
    assert!(code.contains("md.lb_hash : exact;"), "{code}");
    assert!(code.contains("val_ip"), "{code}");
}

#[test]
fn p416_lb_shape() {
    let code = compile_on(LB, "lb", "silicon-one");
    for needle in [
        "#include <core.p4>",
        "header ipv4_t {",
        "struct metadata_t {",
        "parser LyraParser",
        "control LyraIngress",
        "hash(md.lb_hash, HashAlgorithm.crc32,",
        "default_action = NoAction();",
        "apply {",
    ] {
        assert!(code.contains(needle), "P4_16 missing `{needle}`:\n{code}");
    }
}

#[test]
fn npl_lb_shape() {
    let code = compile_on(LB, "lb", "trident4");
    for needle in [
        "bus lyra_bus {",
        "logical_table lb_conn_table {",
        "table_type : hash;",
        "min_size : 1024;",
        "key_construct() {",
        "if (_LOOKUP0) {",
        "fields_assign() {",
        "program lyra_main {",
        "lb_conn_table.lookup(0);",
    ] {
        assert!(code.contains(needle), "NPL missing `{needle}`:\n{code}");
    }
}

#[test]
fn figure2_npl_two_lookups() {
    // Figure 2: P4 needs two tables; NPL uses one logical table with two
    // lookups on the same key space.
    let program = r#"
        header_type ipv4_t { fields { bit[32] src_ip; bit[32] dst_ip; } }
        parser_node start { extract(ipv4); }
        pipeline[P]{int_filter};
        algorithm int_filter {
            extern list<bit[32] ip>[1024] check_ip;
            if (ipv4.src_ip in check_ip) { int_enable = 1; }
            if (ipv4.dst_ip in check_ip) { int_enable = 1; }
        }
    "#;
    let npl = compile_on(program, "int_filter", "trident4");
    assert!(npl.contains("if (_LOOKUP0) {"), "{npl}");
    assert!(npl.contains("if (_LOOKUP1) {"), "{npl}");
    assert!(npl.matches("logical_table").count() == 1, "{npl}");
    assert!(npl.contains(".lookup(0);"), "{npl}");
    assert!(npl.contains(".lookup(1);"), "{npl}");

    let p4 = compile_on(program, "int_filter", "tofino-32q");
    assert!(
        p4.matches("\ntable ").count() >= 2,
        "P4 needs two tables:\n{p4}"
    );
}

#[test]
fn registers_emit_stateful_primitives() {
    let program = r#"
        pipeline[P]{ctr};
        algorithm ctr {
            global bit[32][256] pkt_count;
            bit[32] idx;
            idx = crc32_hash(flow_id);
            pkt_count[idx] = pkt_count[idx] + 1;
        }
    "#;
    let p414 = compile_on(program, "ctr", "tofino-32q");
    assert!(p414.contains("register pkt_count {"), "{p414}");
    assert!(p414.contains("width : 32;"), "{p414}");
    assert!(p414.contains("instance_count : 256;"), "{p414}");
    assert!(p414.contains("register_read("), "{p414}");
    assert!(p414.contains("register_write(pkt_count,"), "{p414}");

    let p416 = compile_on(program, "ctr", "silicon-one");
    assert!(p416.contains("register<bit<32>>(256) pkt_count;"), "{p416}");
    assert!(p416.contains("pkt_count.read("), "{p416}");
    assert!(p416.contains("pkt_count.write("), "{p416}");

    let npl = compile_on(program, "ctr", "trident4");
    assert!(npl.contains("logical_register pkt_count {"), "{npl}");
    assert!(npl.contains("num_entries : 256;"), "{npl}");
}

#[test]
fn bridge_header_emitted_for_split_placement() {
    use lyra_apps::programs;
    use lyra_topo::figure1_network;
    // Force a split: 4M entries exceed one ASIC.
    let out = Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(
            &programs::load_balancer(4_000_000),
            "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
            figure1_network(),
        ))
        .unwrap();
    // At least one artifact declares the bridge header carrying the
    // hit/miss bit between cooperating switches.
    let bridged = out
        .artifacts
        .iter()
        .any(|a| a.code.contains("lyra_bridge") || a.code.contains("bridge_"));
    assert!(bridged, "no artifact declares the bridge header");
}

#[test]
fn parser_hoisting_emits_set_metadata() {
    let program = r#"
        pipeline[P]{a};
        algorithm a {
            int_version = 2;
            out = int_version + ipv4.srcAddr;
        }
    "#;
    let code = compile_on(program, "a", "tofino-32q");
    assert!(
        code.contains("set_metadata(md.a_int_version, 2);"),
        "hoisted store must appear in the parser:\n{code}"
    );
}

#[test]
fn egress_only_builtins_land_in_egress_control() {
    // §8 multi-pipeline support: queueing information can only be gathered
    // in the egress pipeline, so the INT metadata table must be applied
    // there, not in ingress.
    let program = r#"
        pipeline[P]{qlen};
        algorithm qlen {
            if (probe == 1) {
                md_q = get_queue_len();
            }
            pre = flow + 1;
        }
    "#;
    let code = compile_on(program, "qlen", "tofino-32q");
    // Extract the two control bodies.
    let ingress = code
        .split("control ingress {")
        .nth(1)
        .unwrap()
        .split('}')
        .next()
        .unwrap();
    let egress = code
        .split("control egress {")
        .nth(1)
        .unwrap()
        .split('}')
        .next()
        .unwrap();
    assert!(
        !ingress.contains("apply(qlen_t0)") || !ingress.is_empty(),
        "sanity: ingress body parsed"
    );
    // The queue-length table is applied in egress; the plain computation in
    // ingress.
    let q_table_in_egress = egress.lines().any(|l| l.trim().starts_with("apply("));
    assert!(
        q_table_in_egress,
        "egress control must apply the queue-length table:\n{code}"
    );
    assert!(
        ingress.lines().any(|l| l.trim().starts_with("apply(")),
        "ingress still applies the rest:\n{code}"
    );
}

#[test]
fn match_kinds_flow_into_generated_code() {
    // Appendix D: LPM and range tables land in TCAM; a range table on a
    // chip without native range support still emits (the control plane
    // expands rules), and the solver accounts the expansion.
    let program = r#"
        header_type ipv4_t { fields { bit[32] dst_ip; bit[16] sport; } }
        parser_node start { extract(ipv4); }
        pipeline[P]{router};
        algorithm router {
            extern lpm<bit[32] dst, bit[32] nhop>[8192] route;
            extern range<bit[16] port, bit[8] class>[128] port_class;
            if (ipv4.dst_ip in route) {
                nh = route[ipv4.dst_ip];
            }
            if (ipv4.sport in port_class) {
                cls = port_class[ipv4.sport];
            }
        }
    "#;
    let p414 = compile_on(program, "router", "tofino-32q");
    assert!(p414.contains(": lpm;"), "{p414}");
    assert!(p414.contains(": range;"), "{p414}");

    let p416 = compile_on(program, "router", "silicon-one");
    assert!(p416.contains(": lpm;"), "{p416}");

    let npl = compile_on(program, "router", "trident4");
    assert!(npl.contains("table_type : tcam;"), "{npl}");
}

#[test]
fn oversized_tcam_table_rejected() {
    // A ternary table far beyond the chip's TCAM budget must be infeasible
    // on one switch.
    let program = r#"
        pipeline[P]{acl};
        algorithm acl {
            extern ternary<bit[32] src, bit[8] verdict>[10000000] big_acl;
            if (k in big_acl) { v = big_acl[k]; }
        }
    "#;
    let err = Compiler::new()
        .native_backend()
        .compile(&CompileRequest::new(
            program,
            "acl: [ ToR1 | PER-SW | - ]",
            single("tofino-32q"),
        ))
        .unwrap_err();
    assert!(err.to_string().contains("fit"), "{err}");
}

#[test]
fn npl_interleaved_statement_runs_in_previous_pass() {
    // Regression: `v4 = v4 | v3` sits between two lookups of the same
    // extern, so the merged logical table carries it in fields_assign.
    // Pass k's key is constructed before its fields_assign runs, so the
    // statement must be guarded by the *previous* pass (`_LOOKUP1`), not
    // the pass whose key it feeds — the oracle caught lookup 2 reading a
    // stale v4 under the old `_LOOKUP2` guard.
    let program = r#"
        pipeline[P]{a};
        algorithm a {
            extern dict<bit[32] k, bit[32] v>[64] t;
            if (v0 in t) { v4 = t[v0]; }
            v4 = v4 | v3;
            if (v4 in t) { v4 = t[v4]; }
        }
    "#;
    let code = compile_on(program, "a", "trident4");
    let stmt = code
        .find("lyra_bus.a_v4 = lyra_bus.a_v4 | lyra_bus.a_v3;")
        .unwrap_or_else(|| panic!("or-statement missing:\n{code}"));
    let guard = code[..stmt]
        .rfind("if (_LOOKUP")
        .map(|g| &code[g..g + "if (_LOOKUPn".len()])
        .expect("guarded statement");
    assert_eq!(guard, "if (_LOOKUP1", "wrong pass guard:\n{code}");
    // Pass 2 still reads the post-or v4 as its key.
    assert!(code.contains("if (_LOOKUP2)"), "{code}");
}
