#![warn(missing_docs)]
//! # lyra-apps — the evaluation program corpus
//!
//! Every workload the paper evaluates (§7), written in the Lyra language:
//! the three INT roles, Speedlight, NetCache, NetChain, NetPaxos,
//! flowlet switching, a simple router, a large `switch.p4`-scale program,
//! the stateful L4 load balancer of §2/§7.2 (parameterized by ConnTable
//! size), and the Dejavu-style service chain of §7.3 (classifier, firewall,
//! gateway, load balancer, scheduler).
//!
//! Also embeds the paper's Figure 9 baselines — the published statistics of
//! the human-written P4₁₄ programs and of Lyra's own output — so the
//! benchmark harness can reproduce the comparison *shape* (who wins, by
//! roughly what factor).

pub mod baselines;
pub mod programs;

pub use baselines::{paper_baselines, Fig9Row};
pub use programs::*;

/// One corpus entry: a Lyra program plus its default scope specification.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Program name as used in Figure 9.
    pub name: &'static str,
    /// Lyra source text.
    pub source: String,
    /// Default scope specification for the §7 testbed topologies.
    pub scopes: String,
}

/// The full Figure 9 corpus (in the paper's row order).
pub fn figure9_corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "Ingress INT",
            source: programs::int_ingress(),
            scopes: "int_in: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "Transit INT",
            source: programs::int_transit(),
            scopes: "int_transit: [ Agg* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "Egress INT",
            source: programs::int_egress(),
            scopes: "int_out: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "Speedlight",
            source: programs::speedlight(),
            scopes: "speedlight: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "NetCache",
            source: programs::netcache(),
            scopes: "netcache: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "NetChain",
            source: programs::netchain(),
            scopes: "netchain: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "NetPaxos",
            source: programs::netpaxos(),
            scopes: "netpaxos: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "flowlet_switching",
            source: programs::flowlet_switching(),
            scopes: "flowlet: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "simple_router",
            source: programs::simple_router(),
            scopes: "simple_router: [ ToR* | PER-SW | - ]".into(),
        },
        CorpusEntry {
            name: "switch",
            source: programs::switch_program(),
            scopes: programs::switch_scopes("ToR1"),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_lang::{check_program, parse_program};

    #[test]
    fn entire_corpus_parses_and_checks() {
        for entry in figure9_corpus() {
            let prog = parse_program(&entry.source)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", entry.name));
            check_program(&prog).unwrap_or_else(|e| panic!("{} fails to check: {e}", entry.name));
            lyra_lang::parse_scopes(&entry.scopes)
                .unwrap_or_else(|e| panic!("{} has bad scopes: {e}", entry.name));
        }
    }

    #[test]
    fn corpus_front_end_lowers() {
        for entry in figure9_corpus() {
            let ir = lyra_ir::frontend(&entry.source)
                .unwrap_or_else(|e| panic!("{} fails front-end: {e}", entry.name));
            assert!(ir.total_instrs() > 0, "{} lowered to nothing", entry.name);
        }
    }

    #[test]
    fn corpus_loc_is_smaller_than_baselines() {
        // The headline LoC claim: Lyra programs are much shorter than the
        // manual P4_14 versions (up to 78% fewer lines).
        let baselines = paper_baselines();
        for entry in figure9_corpus() {
            let row = baselines
                .iter()
                .find(|r| r.program == entry.name)
                .unwrap_or_else(|| panic!("no baseline for {}", entry.name));
            let loc = lyra_lang::count_loc(&entry.source);
            assert!(
                (loc as f64) < row.manual_loc as f64,
                "{}: Lyra {loc} lines vs manual {} — must be smaller",
                entry.name,
                row.manual_loc
            );
        }
    }
}
