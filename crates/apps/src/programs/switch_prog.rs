//! The `switch.p4`-scale program: a full data center switch feature set
//! generated from a structured feature list, matching the paper's largest
//! Figure 9 row (the manual program has 131 tables and 363 actions; Lyra
//! generates an equal-sized P4 program — "For the programs posted on the
//! p4c project, e.g., switch.p4, Lyra generates an equal P4 code").
//!
//! The program is built programmatically from feature modules (L2
//! switching, L3 routing, IPv6, tunnels, ACLs, QoS, NAT, multicast
//! bookkeeping, storm control, ECMP, ...) so its size scales like the real
//! switch.p4 while every line remains meaningful Lyra code.

use std::fmt::Write;

/// Feature modules making up the switch pipeline, in apply order. Each
/// becomes one algorithm with several extern tables and conditionals.
/// One table spec: (name, entries, key-field count, value width).
type TableSpec = (&'static str, u64, u32, u32);

const FEATURES: &[(&str, &[TableSpec])] = &[
    // (algorithm, [(table, entries, key_width_field_count, value_width)])
    (
        "validate_outer",
        &[
            ("port_vlan_mapping", 4096, 1, 16),
            ("spanning_tree", 1024, 1, 8),
            ("port_properties", 256, 1, 16),
        ],
    ),
    (
        "ingress_port_map",
        &[("port_mapping", 256, 1, 16), ("lag_select", 512, 1, 16)],
    ),
    (
        "ingress_l2",
        &[
            ("smac_table", 16384, 1, 16),
            ("dmac_table", 16384, 1, 16),
            ("learn_notify", 1024, 1, 8),
        ],
    ),
    (
        "ingress_l3",
        &[
            ("ipv4_host", 16384, 1, 16),
            ("ipv4_lpm", 8192, 1, 16),
            ("urpf_check", 4096, 1, 8),
        ],
    ),
    (
        "ingress_ipv6",
        &[
            ("ipv6_host", 8192, 2, 16),
            ("ipv6_lpm", 4096, 2, 16),
            ("ipv6_urpf", 2048, 2, 8),
        ],
    ),
    (
        "tunnel_decap",
        &[
            ("tunnel_lookup", 4096, 1, 16),
            ("vni_mapping", 4096, 1, 16),
            ("inner_validate", 512, 1, 8),
        ],
    ),
    (
        "tunnel_encap",
        &[
            ("tunnel_rewrite", 4096, 1, 16),
            ("tunnel_dst", 2048, 1, 32),
            ("tunnel_smac", 512, 1, 48),
        ],
    ),
    (
        "ingress_acl",
        &[
            ("mac_acl", 2048, 1, 8),
            ("ip_acl", 4096, 2, 8),
            ("racl", 2048, 1, 8),
            ("system_acl", 512, 1, 8),
        ],
    ),
    (
        "qos_map",
        &[
            ("dscp_map", 256, 1, 8),
            ("tc_map", 64, 1, 8),
            ("cos_map", 64, 1, 8),
        ],
    ),
    (
        "meter_police",
        &[("meter_index", 1024, 1, 16), ("meter_action", 256, 1, 8)],
    ),
    (
        "nat_ingress",
        &[
            ("nat_src", 4096, 1, 32),
            ("nat_dst", 4096, 1, 32),
            ("nat_twice", 1024, 2, 32),
        ],
    ),
    (
        "ecmp_select",
        &[("ecmp_group", 1024, 1, 16), ("ecmp_member", 8192, 1, 16)],
    ),
    (
        "wcmp_select",
        &[("wcmp_group", 512, 1, 16), ("wcmp_weight", 2048, 1, 16)],
    ),
    (
        "nexthop_resolve",
        &[("nexthop", 16384, 1, 32), ("rewrite_mac", 8192, 1, 48)],
    ),
    (
        "multicast",
        &[
            ("mcast_group", 1024, 1, 16),
            ("rid_table", 1024, 1, 16),
            ("mcast_prune", 512, 1, 8),
        ],
    ),
    ("storm_control", &[("storm_policy", 512, 1, 8)]),
    (
        "sflow_sample",
        &[("sflow_session", 128, 1, 16), ("sflow_rate", 128, 1, 32)],
    ),
    ("int_watch", &[("int_watchlist", 1024, 1, 8)]),
    (
        "egress_vlan",
        &[
            ("egress_vlan_xlate", 4096, 1, 16),
            ("vlan_decap", 256, 1, 8),
        ],
    ),
    (
        "egress_acl",
        &[
            ("egress_ip_acl", 2048, 2, 8),
            ("egress_mac_acl", 1024, 1, 8),
        ],
    ),
    (
        "egress_rewrite",
        &[
            ("smac_rewrite", 1024, 1, 48),
            ("mtu_check", 256, 1, 16),
            ("ttl_rewrite", 64, 1, 8),
        ],
    ),
    ("mirror_session", &[("mirror_table", 256, 1, 16)]),
];

/// Scope specification covering every feature algorithm of
/// [`switch_program`], targeting one switch.
pub fn switch_scopes(switch: &str) -> String {
    FEATURES
        .iter()
        .map(|(name, _)| format!("{name}: [ {switch} | PER-SW | - ]"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Generate the full switch program.
pub fn switch_program() -> String {
    let mut src = String::new();
    let _ = writeln!(src, ">HEADER:");
    let _ = writeln!(
        src,
        r#"header_type ethernet_t {{
    fields {{
        bit[48] dst_mac;
        bit[48] src_mac;
        bit[16] ether_type;
    }}
}}
header_type vlan_t {{
    fields {{
        bit[12] vid;
        bit[3]  pcp;
        bit[16] ether_type;
    }}
}}
header_type ipv4_t {{
    fields {{
        bit[8]  tos;
        bit[8]  ttl;
        bit[8]  protocol;
        bit[32] src_ip;
        bit[32] dst_ip;
    }}
}}
header_type ipv6_t {{
    fields {{
        bit[8]  next_hdr;
        bit[8]  hop_limit;
        bit[64] src_hi;
        bit[64] src_lo;
        bit[64] dst_hi;
        bit[64] dst_lo;
    }}
}}
header_type tunnel_t {{
    fields {{
        bit[24] vni;
        bit[8]  flags;
    }}
}}
parser_node start {{
    extract(ethernet);
    select(ethernet.ether_type) {{
        0x8100: parse_vlan;
        0x0800: parse_ipv4;
        0x86dd: parse_ipv6;
        default: ingress;
    }}
}}
parser_node parse_vlan {{
    extract(vlan);
    select(vlan.ether_type) {{
        0x0800: parse_ipv4;
        0x86dd: parse_ipv6;
        default: ingress;
    }}
}}
parser_node parse_ipv4 {{
    extract(ipv4);
    select(ipv4.protocol) {{
        0x11: parse_tunnel;
        default: ingress;
    }}
}}
parser_node parse_ipv6 {{
    extract(ipv6);
}}
parser_node parse_tunnel {{
    extract(tunnel);
}}"#
    );

    let _ = writeln!(src, "\n>PIPELINES:");
    let chain: Vec<&str> = FEATURES.iter().map(|(name, _)| *name).collect();
    let _ = writeln!(src, "pipeline[SWITCH]{{{}}};", chain.join(" -> "));

    // One "umbrella" algorithm per feature module.
    for (feature, tables) in FEATURES {
        let _ = writeln!(src, "\nalgorithm {feature} {{");
        for (table, entries, key_fields, value_width) in *tables {
            let key = match key_fields {
                1 => format!("bit[32] k_{table}"),
                _ => format!("<bit[64] k_{table}_hi, bit[64] k_{table}_lo>"),
            };
            // Routing tables use longest-prefix match; ACLs use ternary —
            // both TCAM-resident, exercising the Appendix D conversions.
            let kw = if table.contains("lpm") {
                "lpm"
            } else if table.contains("acl") {
                "ternary"
            } else {
                "dict"
            };
            let _ = writeln!(
                src,
                "    extern {kw}<{key}, bit[{value_width}] v_{table}>[{entries}] {table};"
            );
        }
        // Feature-specific stanzas referencing the tables.
        for (ti, (table, _, key_fields, _)) in tables.iter().enumerate() {
            let key_expr = match (*feature, ti, *key_fields) {
                (_, _, 2) => "ipv6.dst_hi".to_string(),
                ("ingress_l2", 0, _) => "ethernet.src_mac".to_string(),
                ("ingress_l2", _, _) => "ethernet.dst_mac".to_string(),
                ("ingress_l3", _, _) | ("nat_ingress", _, _) => "ipv4.dst_ip".to_string(),
                ("tunnel_decap", _, _) => "tunnel.vni".to_string(),
                _ => format!("{feature}_key{ti}"),
            };
            let _ = writeln!(src, "    if ({key_expr} in {table}) {{");
            let _ = writeln!(src, "        {feature}_r{ti} = {table}[{key_expr}];");
            match (*feature, ti) {
                ("ingress_l3", 0) => {
                    let _ = writeln!(src, "        ipv4.ttl = ipv4.ttl - 1;");
                    let _ = writeln!(src, "        if (ipv4.ttl == 0) {{");
                    let _ = writeln!(src, "            drop();");
                    let _ = writeln!(src, "        }}");
                }
                ("ingress_acl", 0) | ("egress_acl", 0) => {
                    let _ = writeln!(src, "        if ({feature}_r{ti} == 2) {{");
                    let _ = writeln!(src, "            drop();");
                    let _ = writeln!(src, "        }}");
                }
                ("mirror_session", 0) => {
                    let _ = writeln!(src, "        mirror({feature}_r{ti});");
                }
                ("nexthop_resolve", 1) => {
                    let _ = writeln!(src, "        ethernet.dst_mac = {feature}_r{ti};");
                }
                ("ecmp_select", 0) => {
                    let _ = writeln!(
                        src,
                        "        {feature}_hash = crc16_hash(ipv4.src_ip, ipv4.dst_ip);"
                    );
                }
                _ => {
                    let _ = writeln!(src, "        {feature}_hit{ti} = 1;");
                }
            }
            let _ = writeln!(src, "    }}");
        }
        let _ = writeln!(src, "}}");
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_switch_is_large_and_valid() {
        let src = switch_program();
        let loc = lyra_lang::count_loc(&src);
        assert!(loc > 200, "switch program too small: {loc} lines");
        let prog = lyra_lang::parse_program(&src).expect("switch parses");
        lyra_lang::check_program(&prog).expect("switch checks");
        // Dozens of tables across the feature modules.
        let info = lyra_lang::check_program(&prog).unwrap();
        assert!(
            info.externs.len() >= 25,
            "only {} tables",
            info.externs.len()
        );
        assert_eq!(prog.pipelines.len(), 1);
        assert_eq!(prog.pipelines[0].algorithms.len(), super::FEATURES.len());
    }
}
