//! The §7.3 composition workload: a Dejavu-style service chain with a
//! classifier, firewall, gateway, load balancer, and scheduler, expressed
//! as one one-big-pipeline so Lyra can compress it into as little as a
//! single switch.

/// The five-algorithm service chain.
pub fn service_chain() -> String {
    r#"
>HEADER:
header_type ethernet_t {
    fields {
        bit[48] dst_mac;
        bit[48] src_mac;
        bit[16] ether_type;
    }
}
header_type ipv4_t {
    fields {
        bit[8]  tos;
        bit[8]  ttl;
        bit[8]  protocol;
        bit[32] src_ip;
        bit[32] dst_ip;
    }
}
header_type tcp_t {
    fields {
        bit[16] src_port;
        bit[16] dst_port;
        bit[8]  flags;
    }
}
parser_node start {
    extract(ethernet);
    select(ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: ingress;
    }
}
parser_node parse_ipv4 {
    extract(ipv4);
    select(ipv4.protocol) {
        0x6: parse_tcp;
        default: ingress;
    }
}
parser_node parse_tcp {
    extract(tcp);
}

>PIPELINES:
pipeline[CHAIN]{classifier -> firewall -> gateway -> chain_lb -> scheduler};

algorithm classifier {
    extern dict<bit[8] proto, bit[8] class>[64] proto_class;
    extern dict<bit[16] port, bit[8] class>[256] app_class;
    traffic_class = 0;
    if (ipv4.protocol in proto_class) {
        traffic_class = proto_class[ipv4.protocol];
    }
    if (tcp.dst_port in app_class) {
        traffic_class = app_class[tcp.dst_port];
    }
}

algorithm firewall {
    extern dict<<bit[32] src, bit[32] dst>, bit[8] verdict>[4096] fw_rules;
    extern list<bit[32] blocked>[1024] block_list;
    bit[8] verdict;
    if (ipv4.src_ip in block_list) {
        drop();
    }
    fw_verdict_default(verdict);
}

algorithm gateway {
    extern dict<bit[32] vip, bit[32] gw_ip>[512] gateway_map;
    global bit[32][512] gw_byte_count;
    bit[32] gw;
    if (ipv4.dst_ip in gateway_map) {
        gw = gateway_map[ipv4.dst_ip];
        ipv4.dst_ip = gw;
        gw_byte_count[traffic_class] = gw_byte_count[traffic_class] + 1;
    }
}

algorithm chain_lb {
    extern dict<bit[32] hash, bit[32] dip>[8192] lb_conn;
    bit[32] flow_hash;
    flow_hash = crc32_hash(ipv4.src_ip, ipv4.dst_ip, tcp.src_port, tcp.dst_port);
    if (flow_hash in lb_conn) {
        ipv4.dst_ip = lb_conn[flow_hash];
    } else {
        copy_to_cpu();
    }
}

algorithm scheduler {
    extern dict<bit[8] class, bit[9] queue>[16] class_queue;
    bit[9] out_queue;
    if (traffic_class in class_queue) {
        out_queue = class_queue[traffic_class];
        set_egress_port(out_queue);
    } else {
        set_egress_port(1);
    }
}

>FUNCTIONS:
func fw_verdict_default(bit[8] v) {
    v = 1;
    fw_pass = v;
}
"#
    .to_string()
}
