//! The corpus programs, written in the Lyra language.
//!
//! Each function returns full Lyra source. The programs implement the
//! algorithms the paper evaluates on, scaled to exercise the same feature
//! surface: extern tables (membership and dict lookups), global register
//! arrays, predicated computation, library calls (hashing, timestamps,
//! queue depth, cloning), header manipulation, and parser definitions.

mod service_chain;
mod switch_prog;

pub use service_chain::service_chain;
pub use switch_prog::{switch_program, switch_scopes};

/// Common packet headers shared by the INT programs.
fn int_headers() -> &'static str {
    r#"
>HEADER:
header_type ethernet_t {
    fields {
        bit[48] dst_mac;
        bit[48] src_mac;
        bit[16] ether_type;
    }
}
header_type ipv4_t {
    fields {
        bit[8]  version_ihl;
        bit[8]  diffserv;
        bit[16] total_len;
        bit[8]  ttl;
        bit[8]  protocol;
        bit[32] src_ip;
        bit[32] dst_ip;
    }
}
header_type int_probe_hdr_t {
    fields {
        bit[8]  hop_count;
        bit[8]  msg_type;
        bit[16] probe_len;
    }
}
header_type int_md_hdr_t {
    fields {
        bit[32] switch_id;
        bit[32] hop_latency;
        bit[24] queue_len;
        bit[8]  pad;
    }
}
parser_node start {
    extract(ethernet);
    select(ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: ingress;
    }
}
parser_node parse_ipv4 {
    extract(ipv4);
    select(ipv4.protocol) {
        0xfd: parse_int_probe;
        default: ingress;
    }
}
parser_node parse_int_probe {
    extract(int_probe_hdr);
}
"#
}

/// Ingress INT: identify packets of interest, insert the probe header and
/// the first metadata record (§2.1 (i), Figure 1(b)).
pub fn int_ingress() -> String {
    format!(
        r#"{headers}
>PIPELINES:
pipeline[INT]{{int_in}};

algorithm int_in {{
    int_filtering();
    if (int_enable == 1) {{
        add_int_probe_header();
        add_int_md_hdr();
    }}
}}

>FUNCTIONS:
func int_filtering() {{
    extern list<bit[32] ip>[1024] int_src_filter;
    extern list<bit[32] ip>[1024] int_dst_filter;
    if (ipv4.src_ip in int_src_filter) {{
        int_enable = 1;
    }}
    if (ipv4.dst_ip in int_dst_filter) {{
        int_enable = 1;
    }}
}}
func add_int_probe_header() {{
    add_header(int_probe_hdr);
    int_probe_hdr.hop_count = 1;
    int_probe_hdr.msg_type = 1;
    int_probe_hdr.probe_len = 12;
}}
func add_int_md_hdr() {{
    bit[32] ig_ts;
    bit[32] eg_ts;
    bit[32] latency;
    add_header(int_md_hdr);
    int_md_hdr.switch_id = get_switch_id();
    ig_ts = get_ingress_timestamp();
    eg_ts = get_egress_timestamp();
    latency = (eg_ts - ig_ts) & 0x0fffffff;
    int_md_hdr.hop_latency = latency;
    int_md_hdr.queue_len = get_queue_len();
}}
"#,
        headers = int_headers()
    )
}

/// Transit INT: append a metadata record to packets already carrying a
/// probe header (§2.1, Figure 1(b)).
pub fn int_transit() -> String {
    format!(
        r#"{headers}
>PIPELINES:
pipeline[INT]{{int_transit}};

algorithm int_transit {{
    extern dict<bit[8] msg_type, bit[32] switch_id>[128] transit_filter;
    if (int_probe_hdr.msg_type in transit_filter) {{
        append_int_md();
    }}
}}

>FUNCTIONS:
func append_int_md() {{
    bit[32] ig_ts;
    bit[32] eg_ts;
    add_header(int_md_hdr);
    int_md_hdr.switch_id = get_switch_id();
    ig_ts = get_ingress_timestamp();
    eg_ts = get_egress_timestamp();
    int_md_hdr.hop_latency = (eg_ts - ig_ts) & 0x0fffffff;
    int_md_hdr.queue_len = get_queue_len();
    int_probe_hdr.hop_count = int_probe_hdr.hop_count + 1;
}}
"#,
        headers = int_headers()
    )
}

/// Egress INT: append the final record and mirror the packet to the
/// monitoring collector (§2.1, Figure 1(b)).
pub fn int_egress() -> String {
    format!(
        r#"{headers}
>PIPELINES:
pipeline[INT]{{int_out}};

algorithm int_out {{
    extern dict<bit[8] msg_type, bit[32] switch_id>[128] egress_filter;
    if (int_probe_hdr.msg_type in egress_filter) {{
        bit[32] ig_ts;
        bit[32] eg_ts;
        add_header(int_md_hdr);
        int_md_hdr.switch_id = get_switch_id();
        ig_ts = get_ingress_timestamp();
        eg_ts = get_egress_timestamp();
        int_md_hdr.hop_latency = (eg_ts - ig_ts) & 0x0fffffff;
        int_md_hdr.queue_len = get_queue_len();
        int_probe_hdr.hop_count = int_probe_hdr.hop_count + 1;
        mirror(250);
        remove_header(int_probe_hdr);
    }}
}}
"#,
        headers = int_headers()
    )
}

/// The stateful L4 load balancer of §2.1 (ii) / Figure 1(c), with a
/// configurable ConnTable size (the §7.2 extensibility experiment grows it
/// from one million to four million entries).
pub fn load_balancer(conn_entries: u64) -> String {
    format!(
        r#"
>HEADER:
header_type ipv4_t {{
    fields {{
        bit[32] srcAddr;
        bit[32] dstAddr;
        bit[8]  protocol;
    }}
}}
header_type tcp_t {{
    fields {{
        bit[16] srcPort;
        bit[16] dstPort;
    }}
}}
parser_node start {{
    extract(ipv4);
    select(ipv4.protocol) {{
        0x6: parse_tcp;
        default: ingress;
    }}
}}
parser_node parse_tcp {{
    extract(tcp);
}}

>PIPELINES:
pipeline[LB]{{loadbalancer}};

algorithm loadbalancer {{
    load_balancing();
}}

>FUNCTIONS:
func load_balancing() {{
    extern dict<bit[32] hash, bit[32] ip>[{conn_entries}] conn_table;
    extern dict<bit[32] vip, bit[8] group>[1048576] vip_table;
    bit[32] hash;
    bit[8] dip_group;
    hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr, ipv4.protocol, tcp.srcPort, tcp.dstPort);
    if (hash in conn_table) {{
        ipv4.dstAddr = conn_table[hash];
    }} else {{
        if (ipv4.dstAddr in vip_table) {{
            dip_group = vip_table[ipv4.dstAddr];
            copy_to_cpu();
        }}
    }}
}}
"#
    )
}

/// Speedlight-style synchronized per-port snapshots: counters, a snapshot
/// id, and wraparound bookkeeping.
pub fn speedlight() -> String {
    r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[32] src_ip;
        bit[32] dst_ip;
        bit[8]  protocol;
    }
}
header_type snapshot_hdr_t {
    fields {
        bit[16] snapshot_id;
        bit[16] last_seen;
    }
}
parser_node start {
    extract(ipv4);
    select(ipv4.protocol) {
        0xfc: parse_snapshot;
        default: ingress;
    }
}
parser_node parse_snapshot {
    extract(snapshot_hdr);
}

>PIPELINES:
pipeline[SL]{speedlight};

algorithm speedlight {
    global bit[32][256] counters_ss;
    global bit[32][256] counters_cur;
    global bit[16][256] snapshot_ids;
    global bit[16][256] last_seen;
    global bit[32][256] ack_seen;
    global bit[32][1] admin_epoch;
    bit[9]  port;
    bit[16] cur_id;
    bit[32] count_now;
    port = get_ingress_port();
    cur_id = snapshot_ids[port];
    if (snapshot_hdr.snapshot_id > cur_id) {
        counters_ss[port] = counters_cur[port];
        snapshot_ids[port] = snapshot_hdr.snapshot_id;
        notify_controller();
    }
    count_now = counters_cur[port];
    counters_cur[port] = count_now + 1;
    last_seen[port] = snapshot_hdr.snapshot_id;
    update_acks(port);
}

>FUNCTIONS:
func notify_controller() {
    copy_to_cpu();
}
func update_acks(bit[9] p) {
    bit[32] acks;
    acks = ack_seen[p];
    ack_seen[p] = acks + 1;
    admin_epoch[0] = admin_epoch[0] + 1;
}
"#
    .to_string()
}

/// NetCache-style in-network key-value cache: hot-key table, per-key valid
/// bits, value registers, and query statistics.
pub fn netcache() -> String {
    let mut src = String::from(
        r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[32] src_ip;
        bit[32] dst_ip;
        bit[8]  protocol;
    }
}
header_type nc_hdr_t {
    fields {
        bit[8]   op;
        bit[128] key;
        bit[32]  seq;
    }
}
parser_node start {
    extract(ipv4);
    select(ipv4.protocol) {
        0xfb: parse_nc;
        default: ingress;
    }
}
parser_node parse_nc {
    extract(nc_hdr);
}

>PIPELINES:
pipeline[NC]{netcache};

algorithm netcache {
    extern dict<bit[128] key, bit[16] index>[65536] cache_lookup;
    global bit[8][65536] cache_valid;
    global bit[32][65536] query_count;
    bit[16] slot;
    bit[8] valid;
    if (nc_hdr.key in cache_lookup) {
        slot = cache_lookup[nc_hdr.key];
        switch (nc_hdr.op) {
            case 1: {
                valid = cache_valid[slot];
                if (valid == 1) {
                    read_value(slot);
                } else {
                    count_miss(slot);
                }
            }
            case 3: {
                cache_valid[slot] = 1;
                write_value(slot);
            }
            default: {
                cache_valid[slot] = 0;
            }
        }
    } else {
        count_hot(nc_hdr.seq);
    }
}

>FUNCTIONS:
func count_miss(bit[16] s) {
    bit[32] q;
    q = query_count[s];
    query_count[s] = q + 1;
    copy_to_cpu();
}
func count_hot(bit[32] seq) {
    global bit[32][4096] hot_sketch;
    bit[32] h;
    h = crc32_hash(nc_hdr.key);
    hot_sketch[h] = hot_sketch[h] + 1;
}
"#,
    );
    // The value store: NetCache keeps the cached values in many register
    // arrays (the paper's manual program has 40 registers); each 32-bit
    // slice of the value lives in its own array.
    src.push_str("func read_value(bit[16] s) {\n");
    for i in 0..19 {
        src.push_str(&format!("    global bit[32][65536] value_r{i};\n"));
    }
    for i in 0..19 {
        src.push_str(&format!("    nc_val_{i} = value_r{i}[s];\n"));
    }
    src.push_str("}\nfunc write_value(bit[16] s) {\n");
    for i in 0..19 {
        src.push_str(&format!("    global bit[32][65536] value_w{i};\n"));
    }
    for i in 0..19 {
        src.push_str(&format!("    value_w{i}[s] = nc_val_{i};\n"));
    }
    src.push_str("}\n");
    src
}

/// NetChain-style chain-replicated key-value store: sequence numbers and a
/// small replicated store with chain-role routing.
pub fn netchain() -> String {
    r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[32] src_ip;
        bit[32] dst_ip;
        bit[8]  protocol;
    }
}
header_type chain_hdr_t {
    fields {
        bit[8]  op;
        bit[64] key;
        bit[32] value;
        bit[16] seq;
        bit[8]  chain_index;
    }
}
parser_node start {
    extract(ipv4);
    select(ipv4.protocol) {
        0xfa: parse_chain;
        default: ingress;
    }
}
parser_node parse_chain {
    extract(chain_hdr);
}

>PIPELINES:
pipeline[CHAIN]{netchain};

algorithm netchain {
    extern dict<bit[64] key, bit[16] index>[16384] kv_index;
    extern dict<bit[8] role, bit[32] next_hop>[16] chain_route;
    global bit[16][16384] seq_store;
    global bit[32][16384] val_store;
    bit[16] slot;
    bit[16] cur_seq;
    if (chain_hdr.key in kv_index) {
        slot = kv_index[chain_hdr.key];
        if (chain_hdr.op == 1) {
            chain_hdr.value = val_store[slot];
            reply_to_client();
        } else {
            cur_seq = seq_store[slot];
            if (chain_hdr.seq > cur_seq) {
                seq_store[slot] = chain_hdr.seq;
                val_store[slot] = chain_hdr.value;
                forward_down_chain();
            } else {
                drop();
            }
        }
    }
}

>FUNCTIONS:
func reply_to_client() {
    bit[32] tmp_ip;
    tmp_ip = ipv4.src_ip;
    ipv4.src_ip = ipv4.dst_ip;
    ipv4.dst_ip = tmp_ip;
}
func forward_down_chain() {
    extern list<bit[8] idx>[8] tail_check;
    chain_hdr.chain_index = chain_hdr.chain_index + 1;
    if (chain_hdr.chain_index in tail_check) {
        reply_to_client();
    }
}
"#
    .to_string()
}

/// NetPaxos-style in-network consensus acceptor: rounds, votes, and value
/// registers.
pub fn netpaxos() -> String {
    r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[32] src_ip;
        bit[32] dst_ip;
        bit[8]  protocol;
    }
}
header_type paxos_hdr_t {
    fields {
        bit[8]  msgtype;
        bit[32] instance;
        bit[16] round;
        bit[16] vround;
        bit[32] value;
        bit[16] acceptor_id;
    }
}
parser_node start {
    extract(ipv4);
    select(ipv4.protocol) {
        0xf9: parse_paxos;
        default: ingress;
    }
}
parser_node parse_paxos {
    extract(paxos_hdr);
}

>PIPELINES:
pipeline[PAXOS]{netpaxos};

algorithm netpaxos {
    global bit[16][65536] rounds;
    global bit[16][65536] vrounds;
    global bit[32][65536] values;
    global bit[32][1] instance_reg;
    global bit[16][1] acceptor_id_reg;
    bit[16] cur_round;
    if (paxos_hdr.msgtype == 1) {
        phase1a();
    } else {
        if (paxos_hdr.msgtype == 2) {
            phase2a();
        }
    }
}

>FUNCTIONS:
func phase1a() {
    bit[16] r;
    r = rounds[paxos_hdr.instance];
    if (paxos_hdr.round > r) {
        rounds[paxos_hdr.instance] = paxos_hdr.round;
        paxos_hdr.vround = vrounds[paxos_hdr.instance];
        paxos_hdr.value = values[paxos_hdr.instance];
        paxos_hdr.acceptor_id = acceptor_id_reg[0];
        forward(1);
    }
}
func phase2a() {
    bit[16] r2;
    r2 = rounds[paxos_hdr.instance];
    if (paxos_hdr.round >= r2) {
        rounds[paxos_hdr.instance] = paxos_hdr.round;
        vrounds[paxos_hdr.instance] = paxos_hdr.round;
        values[paxos_hdr.instance] = paxos_hdr.value;
        instance_reg[0] = paxos_hdr.instance;
        forward(1);
    }
}
"#
    .to_string()
}

/// Flowlet switching: hash flows, detect inter-packet gaps, and repick the
/// next hop per flowlet.
pub fn flowlet_switching() -> String {
    r#"
>HEADER:
header_type ipv4_t {
    fields {
        bit[32] src_ip;
        bit[32] dst_ip;
        bit[8]  protocol;
    }
}
header_type tcp_t {
    fields {
        bit[16] src_port;
        bit[16] dst_port;
    }
}
parser_node start {
    extract(ipv4);
    select(ipv4.protocol) {
        0x6: parse_tcp;
        default: ingress;
    }
}
parser_node parse_tcp {
    extract(tcp);
}

>PIPELINES:
pipeline[FLOWLET]{flowlet};

algorithm flowlet {
    extern dict<bit[16] hop_index, bit[9] port>[64] nexthops;
    global bit[32][8192] flowlet_ts;
    global bit[16][8192] flowlet_hop;
    bit[32] fid;
    bit[32] now;
    bit[32] last;
    bit[32] gap;
    bit[16] hop;
    fid = crc32_hash(ipv4.src_ip, ipv4.dst_ip, ipv4.protocol, tcp.src_port, tcp.dst_port);
    now = get_ingress_timestamp();
    last = flowlet_ts[fid];
    gap = now - last;
    if (gap > 50000) {
        hop = crc16_hash(now, fid);
        flowlet_hop[fid] = hop;
    } else {
        hop = flowlet_hop[fid];
    }
    flowlet_ts[fid] = now;
    if (hop in nexthops) {
        set_egress_port(nexthops[hop]);
    }
}
"#
    .to_string()
}

/// A plain IPv4 router: route lookup, TTL decrement, MAC rewrite.
pub fn simple_router() -> String {
    r#"
>HEADER:
header_type ethernet_t {
    fields {
        bit[48] dst_mac;
        bit[48] src_mac;
        bit[16] ether_type;
    }
}
header_type ipv4_t {
    fields {
        bit[8]  ttl;
        bit[32] src_ip;
        bit[32] dst_ip;
    }
}
parser_node start {
    extract(ethernet);
    select(ethernet.ether_type) {
        0x0800: parse_ipv4;
        default: ingress;
    }
}
parser_node parse_ipv4 {
    extract(ipv4);
}

>PIPELINES:
pipeline[RT]{simple_router};

algorithm simple_router {
    extern dict<bit[32] dst, bit[32] nhop>[16384] ipv4_route;
    extern dict<bit[32] nhop, bit[48] mac>[1024] arp_table;
    bit[32] nhop_ip;
    if (ipv4.dst_ip in ipv4_route) {
        nhop_ip = ipv4_route[ipv4.dst_ip];
        ipv4.ttl = ipv4.ttl - 1;
        if (ipv4.ttl == 0) {
            drop();
        } else {
            if (nhop_ip in arp_table) {
                ethernet.dst_mac = arp_table[nhop_ip];
            }
        }
    } else {
        drop();
    }
}
"#
    .to_string()
}
