//! The paper's Figure 9 data, embedded as baseline records.
//!
//! Columns: the manually written P4₁₄ program statistics (LoC, logic LoC,
//! tables, actions, registers) and the statistics of Lyra's own output as
//! published (Lyra LoC, synthesized P4 and NPL resources, compile times).
//! The benchmark harness compares the *shape* of our measurements against
//! these numbers — absolute compile times depend on host and solver build.

/// One row of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Row {
    /// Program name.
    pub program: &'static str,
    /// Manual P4₁₄: total lines of code.
    pub manual_loc: u64,
    /// Manual P4₁₄: logic lines of code (excluding header/parser).
    pub manual_logic_loc: u64,
    /// Manual P4₁₄: tables.
    pub manual_tables: u64,
    /// Manual P4₁₄: actions.
    pub manual_actions: u64,
    /// Manual P4₁₄: registers.
    pub manual_registers: u64,
    /// Lyra program: total lines of code.
    pub lyra_loc: u64,
    /// Lyra program: logic lines of code.
    pub lyra_logic_loc: u64,
    /// Lyra-synthesized P4₁₄: compile time in seconds.
    pub p4_compile_s: f64,
    /// Lyra-synthesized P4₁₄: tables.
    pub p4_tables: u64,
    /// Lyra-synthesized P4₁₄: actions.
    pub p4_actions: u64,
    /// Lyra-synthesized P4₁₄: registers.
    pub p4_registers: u64,
    /// Lyra-synthesized NPL: compile time in seconds.
    pub npl_compile_s: f64,
    /// Lyra-synthesized NPL: logical tables.
    pub npl_tables: u64,
    /// Lyra-synthesized NPL: logical registers.
    pub npl_registers: u64,
    /// Lyra-synthesized NPL: longest code path.
    pub npl_longest_path: u64,
}

/// All ten rows of Figure 9, as published.
pub fn paper_baselines() -> Vec<Fig9Row> {
    vec![
        Fig9Row {
            program: "Ingress INT",
            manual_loc: 308,
            manual_logic_loc: 99,
            manual_tables: 9,
            manual_actions: 8,
            manual_registers: 0,
            lyra_loc: 207,
            lyra_logic_loc: 62,
            p4_compile_s: 0.987,
            p4_tables: 8,
            p4_actions: 7,
            p4_registers: 0,
            npl_compile_s: 0.78,
            npl_tables: 4,
            npl_registers: 0,
            npl_longest_path: 9,
        },
        Fig9Row {
            program: "Transit INT",
            manual_loc: 275,
            manual_logic_loc: 66,
            manual_tables: 6,
            manual_actions: 6,
            manual_registers: 0,
            lyra_loc: 193,
            lyra_logic_loc: 46,
            p4_compile_s: 0.914,
            p4_tables: 5,
            p4_actions: 5,
            p4_registers: 0,
            npl_compile_s: 0.72,
            npl_tables: 2,
            npl_registers: 0,
            npl_longest_path: 4,
        },
        Fig9Row {
            program: "Egress INT",
            manual_loc: 282,
            manual_logic_loc: 73,
            manual_tables: 7,
            manual_actions: 7,
            manual_registers: 0,
            lyra_loc: 197,
            lyra_logic_loc: 47,
            p4_compile_s: 0.897,
            p4_tables: 6,
            p4_actions: 6,
            p4_registers: 0,
            npl_compile_s: 0.73,
            npl_tables: 2,
            npl_registers: 0,
            npl_longest_path: 4,
        },
        Fig9Row {
            program: "Speedlight",
            manual_loc: 453,
            manual_logic_loc: 351,
            manual_tables: 21,
            manual_actions: 23,
            manual_registers: 6,
            lyra_loc: 194,
            lyra_logic_loc: 97,
            p4_compile_s: 1.352,
            p4_tables: 16,
            p4_actions: 20,
            p4_registers: 6,
            npl_compile_s: 0.95,
            npl_tables: 9,
            npl_registers: 6,
            npl_longest_path: 18,
        },
        Fig9Row {
            program: "NetCache",
            manual_loc: 1137,
            manual_logic_loc: 937,
            manual_tables: 96,
            manual_actions: 96,
            manual_registers: 40,
            lyra_loc: 372,
            lyra_logic_loc: 153,
            p4_compile_s: 1.909,
            p4_tables: 12,
            p4_actions: 14,
            p4_registers: 40,
            npl_compile_s: 1.17,
            npl_tables: 3,
            npl_registers: 40,
            npl_longest_path: 20,
        },
        Fig9Row {
            program: "NetChain",
            manual_loc: 319,
            manual_logic_loc: 211,
            manual_tables: 16,
            manual_actions: 16,
            manual_registers: 2,
            lyra_loc: 177,
            lyra_logic_loc: 73,
            p4_compile_s: 1.530,
            p4_tables: 13,
            p4_actions: 16,
            p4_registers: 2,
            npl_compile_s: 0.85,
            npl_tables: 6,
            npl_registers: 2,
            npl_longest_path: 18,
        },
        Fig9Row {
            program: "NetPaxos",
            manual_loc: 241,
            manual_logic_loc: 140,
            manual_tables: 6,
            manual_actions: 11,
            manual_registers: 5,
            lyra_loc: 150,
            lyra_logic_loc: 69,
            p4_compile_s: 1.158,
            p4_tables: 6,
            p4_actions: 11,
            p4_registers: 5,
            npl_compile_s: 0.84,
            npl_tables: 3,
            npl_registers: 5,
            npl_longest_path: 4,
        },
        Fig9Row {
            program: "flowlet_switching",
            manual_loc: 195,
            manual_logic_loc: 130,
            manual_tables: 8,
            manual_actions: 7,
            manual_registers: 2,
            lyra_loc: 113,
            lyra_logic_loc: 43,
            p4_compile_s: 0.91,
            p4_tables: 8,
            p4_actions: 7,
            p4_registers: 2,
            npl_compile_s: 0.70,
            npl_tables: 4,
            npl_registers: 2,
            npl_longest_path: 12,
        },
        Fig9Row {
            program: "simple_router",
            manual_loc: 101,
            manual_logic_loc: 66,
            manual_tables: 4,
            manual_actions: 4,
            manual_registers: 0,
            lyra_loc: 72,
            lyra_logic_loc: 31,
            p4_compile_s: 0.852,
            p4_tables: 4,
            p4_actions: 4,
            p4_registers: 0,
            npl_compile_s: 0.67,
            npl_tables: 3,
            npl_registers: 0,
            npl_longest_path: 10,
        },
        Fig9Row {
            program: "switch",
            manual_loc: 4924,
            manual_logic_loc: 3876,
            manual_tables: 131,
            manual_actions: 363,
            manual_registers: 0,
            lyra_loc: 4151,
            lyra_logic_loc: 2563,
            p4_compile_s: 33.6,
            p4_tables: 131,
            p4_actions: 363,
            p4_registers: 0,
            npl_compile_s: 19.4,
            npl_tables: 125,
            npl_registers: 0,
            npl_longest_path: 53,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rows() {
        assert_eq!(paper_baselines().len(), 10);
    }

    #[test]
    fn headline_claims_hold_in_baseline_data() {
        let rows = paper_baselines();
        // "up to 87.5% fewer hardware resources" — NetCache tables 96 → 12.
        let nc = rows.iter().find(|r| r.program == "NetCache").unwrap();
        let saving = 1.0 - (nc.p4_tables as f64 / nc.manual_tables as f64);
        assert!((saving - 0.875).abs() < 1e-9);
        // Lyra never uses more tables than the manual program.
        for r in &rows {
            assert!(r.p4_tables <= r.manual_tables, "{}", r.program);
            assert!(r.lyra_loc <= r.manual_loc, "{}", r.program);
        }
        // NPL always needs at most as many tables as P4 (multi-lookup).
        for r in &rows {
            assert!(r.npl_tables <= r.p4_tables, "{}", r.program);
        }
    }
}
