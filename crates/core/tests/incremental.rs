//! Incremental-compilation coverage (§8 "Synthesizing incremental
//! changes"): recompiling with `Compiler::compile_incremental` seeds the
//! solver with the previous placement, so unchanged programs come back
//! with zero churn and a one-algorithm edit leaves the untouched
//! algorithms pinned to their switches. `PlacementDiff` (built for the
//! fault-recompilation path) is the churn meter.

use lyra::{CompileRequest, Compiler, PlacementDiff, SolveProfile};
use lyra_topo::figure1_network;

const TWO_ALGS: &str = r#"
    pipeline[INT]{int_in};
    pipeline[LB]{loadbalancer};
    algorithm int_in {
        extern list<bit[32] ip>[256] int_watch;
        if (ipv4.src_ip in int_watch) { int_enable = 1; }
    }
    algorithm loadbalancer {
        extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
        bit[32] hash;
        hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
        if (hash in conn_table) {
            ipv4.dstAddr = conn_table[hash];
        }
    }
"#;

const SCOPES: &str = r#"
    int_in: [ Agg3,ToR3 | MULTI-SW | (Agg3->ToR3) ]
    loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
"#;

fn request(program: &str) -> CompileRequest<'_> {
    CompileRequest::new(program, SCOPES, figure1_network()).with_solve_profile(SolveProfile::fast())
}

#[test]
fn unchanged_program_recompiles_with_zero_churn() {
    let compiler = Compiler::new();
    let first = compiler.compile(&request(TWO_ALGS)).unwrap();
    let second = compiler
        .compile_incremental(&request(TWO_ALGS), &first.placement)
        .unwrap();
    let diff = PlacementDiff::between(&first.placement, &second.placement);
    assert!(
        diff.is_empty(),
        "identical input reseeded with its own placement must not move \
         anything, but churned: {diff:?}"
    );
}

#[test]
fn editing_one_algorithm_keeps_the_other_pinned() {
    let compiler = Compiler::new();
    let first = compiler.compile(&request(TWO_ALGS)).unwrap();

    // Edit only the load balancer (an extra assignment); int_in is
    // untouched and must keep its switches.
    let edited = TWO_ALGS.replace(
        "ipv4.dstAddr = conn_table[hash];",
        "ipv4.dstAddr = conn_table[hash]; ipv4.ttl = 64;",
    );
    assert_ne!(edited, TWO_ALGS, "the edit must apply");
    let second = compiler
        .compile_incremental(&request(&edited), &first.placement)
        .unwrap();

    let hosts = |placement: &lyra_synth::Placement, alg: &str| -> Vec<String> {
        placement
            .switches
            .iter()
            .filter(|(_, p)| p.instrs.contains_key(alg))
            .map(|(n, _)| n.clone())
            .collect()
    };
    assert_eq!(
        hosts(&first.placement, "int_in"),
        hosts(&second.placement, "int_in"),
        "untouched algorithm moved switches on an unrelated edit"
    );
    // The untouched algorithm's instruction assignment is identical.
    for sw in hosts(&first.placement, "int_in") {
        assert_eq!(
            first.placement.switches[&sw].instrs["int_in"],
            second.placement.switches[&sw].instrs["int_in"],
            "int_in instructions moved on {sw}"
        );
    }
}

#[test]
fn incremental_recompile_agrees_with_fresh_compile_semantics() {
    // Seeding is an optimization, not a semantic change: the incremental
    // output must satisfy the same coverage invariants as a fresh one.
    let compiler = Compiler::new();
    let first = compiler.compile(&request(TWO_ALGS)).unwrap();
    let second = compiler
        .compile_incremental(&request(TWO_ALGS), &first.placement)
        .unwrap();
    let conn: u64 = second
        .placement
        .switches
        .values()
        .filter_map(|p| p.extern_entries.get("conn_table"))
        .sum();
    assert!(conn >= 1024, "conn_table under-placed: {conn}");
    assert_eq!(first.artifacts.len(), second.artifacts.len());
}
