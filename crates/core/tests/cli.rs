//! Integration tests for the `lyrac` command line.

use std::process::Command;

fn lyrac() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lyrac"))
}

fn write(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let p = dir.join(name);
    std::fs::write(&p, content).unwrap();
    p
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("lyrac-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

const PROGRAM: &str = r#"
pipeline[P]{watch};
algorithm watch {
    extern list<bit[32] ip>[64] watch_list;
    if (ipv4.src_ip in watch_list) {
        copy_to_cpu();
    }
}
"#;

const TOPOLOGY: &str = r#"
switch ToR1 tor tofino-32q
switch ToR2 tor trident4
switch Agg1 agg trident4
link ToR1 Agg1
link ToR2 Agg1
"#;

#[test]
fn cli_compiles_and_writes_artifacts() {
    let dir = temp_dir("ok");
    let prog = write(&dir, "prog.lyra", PROGRAM);
    let scopes = write(&dir, "scopes.txt", "watch: [ ToR* | PER-SW | - ]\n");
    let topo = write(&dir, "topo.txt", TOPOLOGY);
    let out_dir = dir.join("out");

    let output = lyrac()
        .args(["--program"])
        .arg(&prog)
        .args(["--scopes"])
        .arg(&scopes)
        .args(["--topology"])
        .arg(&topo)
        .args(["--out"])
        .arg(&out_dir)
        .args(["--backend", "native"])
        .output()
        .expect("lyrac runs");
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    // One P4 program for the Tofino ToR, one NPL program for the Trident
    // ToR, each with a control-plane stub.
    assert!(out_dir.join("ToR1.p4").exists());
    assert!(out_dir.join("ToR2.npl").exists());
    assert!(out_dir.join("ToR1_control.py").exists());
    assert!(out_dir.join("ToR2_control.py").exists());
    let p4 = std::fs::read_to_string(out_dir.join("ToR1.p4")).unwrap();
    assert!(p4.contains("table "));
    let npl = std::fs::read_to_string(out_dir.join("ToR2.npl")).unwrap();
    assert!(npl.contains("logical_table "));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_bad_topology() {
    let dir = temp_dir("badtopo");
    let prog = write(&dir, "prog.lyra", PROGRAM);
    let scopes = write(&dir, "scopes.txt", "watch: [ ToR* | PER-SW | - ]\n");
    let topo = write(&dir, "topo.txt", "switch A spine banana\n");

    let output = lyrac()
        .args(["--program"])
        .arg(&prog)
        .args(["--scopes"])
        .arg(&scopes)
        .args(["--topology"])
        .arg(&topo)
        .output()
        .expect("lyrac runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("topology error"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_reports_parse_errors() {
    let dir = temp_dir("badprog");
    let prog = write(&dir, "prog.lyra", "algorithm { nonsense");
    let scopes = write(&dir, "scopes.txt", "x: [ ToR1 | PER-SW | - ]\n");
    let topo = write(&dir, "topo.txt", "switch ToR1 tor tofino-32q\n");

    let output = lyrac()
        .args(["--program"])
        .arg(&prog)
        .args(["--scopes"])
        .arg(&scopes)
        .args(["--topology"])
        .arg(&topo)
        .output()
        .expect("lyrac runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("front-end"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_missing_args_usage() {
    let output = lyrac().output().expect("lyrac runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}
