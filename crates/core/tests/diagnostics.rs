//! Golden tests for the diagnostics surface: exact human-rendered output,
//! JSON round-tripping, and the `lyrac` CLI's `--diag-format json` and
//! `--emit-stats` contracts.

use lyra::{CompileRequest, Compiler};
use lyra_diag::{json, Diagnostic};
use lyra_topo::figure1_network;

// ---------------------------------------------------------------------------
// Golden human renderings
// ---------------------------------------------------------------------------

#[test]
fn golden_unknown_function_rendering() {
    let program = "pipeline[P]{a}; algorithm a { x = undefined_fn(); }";
    let req = CompileRequest::new(program, "a: [ ToR* | PER-SW | - ]", figure1_network());
    let err = Compiler::new().compile(&req).unwrap_err();
    let rendered = err.render(&req.source_map());
    let expected = "\
error[LYR0103]: call to unknown function `undefined_fn`
  --> <program>:1:31
  |
1 | pipeline[P]{a}; algorithm a { x = undefined_fn(); }
  |                               ^^^^^^^^^^^^^^^^^^^
";
    assert_eq!(rendered, expected);
}

#[test]
fn golden_missing_scope_rendering() {
    let program = "pipeline[P]{a}; algorithm a { x = 1; }";
    let req = CompileRequest::new(program, "other: [ ToR* | PER-SW | - ]", figure1_network());
    let err = Compiler::new().compile(&req).unwrap_err();
    let rendered = err.render(&req.source_map());
    let expected = "\
error[LYR0203]: algorithm `a` (pipeline `P`) has no scope
  note: add a line like `a: [ ToR* | PER-SW | - ]` to the scope specification
";
    assert_eq!(rendered, expected);
}

#[test]
fn golden_unknown_switch_rendering_spans_scope_source() {
    let program = "pipeline[P]{a}; algorithm a { x = 1; }";
    let req = CompileRequest::new(
        program,
        "a: [ NoSuchSwitch | PER-SW | - ]",
        figure1_network(),
    );
    let err = Compiler::new().compile(&req).unwrap_err();
    let rendered = err.render(&req.source_map());
    assert!(rendered.starts_with("error[LYR02"), "rendered: {rendered}");
    assert!(rendered.contains("--> <scopes>:1:"), "rendered: {rendered}");
    assert!(rendered.contains("NoSuchSwitch"), "rendered: {rendered}");
}

// ---------------------------------------------------------------------------
// JSON round-tripping
// ---------------------------------------------------------------------------

#[test]
fn compile_error_json_round_trips() {
    let program = "pipeline[P]{a}; algorithm a { x = undefined_fn(); y = also_missing(); }";
    let req = CompileRequest::new(program, "a: [ ToR* | PER-SW | - ]", figure1_network());
    let err = Compiler::new().compile(&req).unwrap_err();

    let text = err.to_json().to_pretty();
    let parsed = json::parse(&text).expect("error JSON parses back");
    assert_eq!(
        parsed.get("phase").and_then(|p| p.as_str()),
        Some("front-end")
    );
    let diags = parsed
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .expect("diagnostics array");
    assert_eq!(diags.len(), err.diagnostics().len());
    for (v, d) in diags.iter().zip(err.diagnostics()) {
        let round = Diagnostic::from_json(v).expect("diagnostic round-trips");
        assert_eq!(round.code, d.code);
        assert_eq!(round.message, d.message);
        assert_eq!(round.primary_span(), d.primary_span());
    }
}

// ---------------------------------------------------------------------------
// lyrac CLI
// ---------------------------------------------------------------------------

const TOPO: &str = "\
switch ToR1 tor tofino-32q
";

fn write_inputs(dir: &std::path::Path, program: &str, scopes: &str) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("prog.lyra"), program).unwrap();
    std::fs::write(dir.join("scopes.txt"), scopes).unwrap();
    std::fs::write(dir.join("topo.txt"), TOPO).unwrap();
}

fn lyrac(dir: &std::path::Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_lyrac"));
    cmd.arg("--program")
        .arg(dir.join("prog.lyra"))
        .arg("--scopes")
        .arg(dir.join("scopes.txt"))
        .arg("--topology")
        .arg(dir.join("topo.txt"))
        .arg("--out")
        .arg(dir.join("out"));
    cmd.args(extra);
    cmd.output().expect("lyrac runs")
}

#[test]
fn cli_json_diagnostics_parse_with_codes_and_spans() {
    let dir = std::env::temp_dir().join("lyrac-test-json-diag");
    write_inputs(
        &dir,
        "pipeline[P]{a}; algorithm a { x = undefined_fn(); }",
        "a: [ ToR1 | PER-SW | - ]",
    );
    let out = lyrac(&dir, &["--diag-format", "json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let parsed = json::parse(&stdout).expect("CLI JSON output parses");
    assert_eq!(
        parsed.get("phase").and_then(|p| p.as_str()),
        Some("front-end")
    );
    let diags = parsed
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .unwrap();
    let d = Diagnostic::from_json(&diags[0]).expect("diagnostic decodes");
    assert_eq!(d.code.map(|c| c.to_string()).as_deref(), Some("LYR0103"));
    assert!(d.primary_span().is_some(), "CLI diagnostics carry spans");
}

#[test]
fn cli_human_diagnostics_render_snippets() {
    let dir = std::env::temp_dir().join("lyrac-test-human-diag");
    write_inputs(
        &dir,
        "pipeline[P]{a}; algorithm a { x = undefined_fn(); }",
        "a: [ ToR1 | PER-SW | - ]",
    );
    let out = lyrac(&dir, &[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[LYR0103]"), "stderr: {stderr}");
    assert!(stderr.contains("--> <program>:1:31"), "stderr: {stderr}");
    assert!(
        stderr.contains("lyrac: front-end failed with 1 error"),
        "stderr: {stderr}"
    );
}

#[test]
fn cli_emit_stats_writes_session_record() {
    let dir = std::env::temp_dir().join("lyrac-test-emit-stats");
    write_inputs(
        &dir,
        "pipeline[P]{a}; algorithm a { x = ipv4.srcAddr + 1; }",
        "a: [ ToR1 | PER-SW | - ]",
    );
    let stats_path = dir.join("stats.json");
    let out = lyrac(&dir, &["--emit-stats", stats_path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&stats_path).expect("stats file written");
    let parsed = json::parse(&text).expect("stats JSON parses");
    let phases = parsed.get("phases_us").expect("phase timings");
    for key in [
        "parse", "check", "lower", "scopes", "solve", "codegen", "total",
    ] {
        assert!(phases.get(key).is_some(), "missing phase `{key}` in {text}");
    }
    let solver = parsed.get("solver").expect("solver stats");
    assert!(
        solver
            .get("decisions")
            .and_then(|v| v.as_number())
            .unwrap_or(0.0)
            > 0.0
    );
    let util = parsed
        .get("utilization")
        .and_then(|u| u.as_array())
        .expect("utilization");
    assert!(!util.is_empty());
    assert_eq!(util[0].get("switch").and_then(|s| s.as_str()), Some("ToR1"));
}
