//! Closed-loop self-healing: failure detection, gray-failure scoring, and
//! automatic remediation.
//!
//! The Lyra paper's one-big-pipeline abstraction assumes the controller
//! *learns* about failures somehow; PRs 4–8 built the machinery that reacts
//! to a failure once it is known (fault-set recompiles, two-phase rollouts,
//! crash recovery, anti-entropy audit). This module closes the loop:
//!
//! 1. **Detection** — a [`HealthMonitor`] drives seeded heartbeat probes
//!    ([`ControlOp::Probe`]) over the existing [`ControlChannel`] and folds
//!    in passive evidence from rollout sends. A phi-accrual-style suspicion
//!    score distinguishes *dead* (consecutive missed probes) from *gray*
//!    (slow or lossy — answering, but badly) from *flapping* (oscillating),
//!    with hysteresis so one dropped packet never triggers a recompile.
//! 2. **Remediation** — a [`SelfHealer`] turns confirmed suspicions into a
//!    [`FaultSet`] delta and drives `recompile_for_faults → apply_rollout →
//!    audit_switches` automatically: rate-limited, damped backoff on
//!    failure, coalescing while a round is in flight, and restore-on-
//!    recovery gated behind a probation window.
//! 3. **Chaos** — a seeded [`ChaosSchedule`] (kill / restore / flap / slow
//!    / lossy on a virtual clock) exercises the whole loop end to end;
//!    [`run_selfheal`] reports MTTR and proves zero mixed-epoch exposure
//!    under live traffic.
//!
//! Everything is deterministic for a fixed seed: the clock is a virtual
//! tick counter, the only randomness is the in-tree xorshift generator,
//! and wall time is measured but never consulted for decisions.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::{Duration, Instant};

use lyra_diag::codes;
use lyra_diag::json::{Object, Value};
use lyra_diag::{Code, Diagnostic};
use lyra_topo::FaultSet;

use crate::channel::{ControlChannel, ControlMsg, ControlOp, Delivery, Rng};
use crate::dataplane::{replay_compiled, replay_under_rollout, ReplayConfig};
use crate::fault::FaultRecompile;
use crate::rollout::{RolloutConfig, RolloutReport};
use crate::runtime::Runtime;
use crate::{CompileError, CompileOutput, CompileRequest, Compiler};

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

/// Something the monitor watches and the healer can fail or restore: a
/// switch, or a link between two switches. Links are canonical (endpoints
/// sorted) so `Link("B","A")` and `Link("A","B")` are the same target.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// A switch, by topology name.
    Switch(String),
    /// A link, by its (sorted) endpoint names.
    Link(String, String),
}

impl Target {
    /// A switch target.
    pub fn switch(name: impl Into<String>) -> Target {
        Target::Switch(name.into())
    }

    /// A link target (endpoints are sorted into canonical order).
    pub fn link(a: impl Into<String>, b: impl Into<String>) -> Target {
        let (a, b) = (a.into(), b.into());
        if a <= b {
            Target::Link(a, b)
        } else {
            Target::Link(b, a)
        }
    }

    /// The wire name a probe for this target is addressed to. Switch
    /// probes go to the switch itself; link probes go to a synthetic
    /// `a~b` destination — the chaos channel rules on it like any other
    /// address, and the switch agent ignores it (no state keyed by it).
    pub fn wire(&self) -> String {
        match self {
            Target::Switch(s) => s.clone(),
            Target::Link(a, b) => format!("{a}~{b}"),
        }
    }

    /// Parse a wire name back into a target (`a~b` → link, else switch).
    pub fn from_wire(wire: &str) -> Target {
        match wire.split_once('~') {
            Some((a, b)) => Target::link(a, b),
            None => Target::switch(wire),
        }
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Target::Switch(s) => write!(f, "switch `{s}`"),
            Target::Link(a, b) => write!(f, "link `{a}~{b}`"),
        }
    }
}

// ---------------------------------------------------------------------------
// Detection: probe outcomes, suspicion, health states
// ---------------------------------------------------------------------------

/// What one probe (or one piece of passive evidence) observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Answered promptly.
    Ok,
    /// Answered, but badly: the acknowledgement was lost or the send
    /// needed retries — gray evidence, not death.
    Degraded,
    /// Never answered.
    Lost,
}

/// The monitor's verdict on one target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Answering normally.
    Healthy,
    /// Suspicion is rising but below the confirmation thresholds; no
    /// action is taken (hysteresis against single dropped packets).
    Suspect,
    /// Confirmed dead: enough consecutive missed probes that the accrued
    /// suspicion crossed `phi_dead`.
    Dead,
    /// Confirmed gray: answering, but lossy or slow, sustained over the
    /// confirmation window.
    Gray,
    /// Recovering: probes are clean again, but the target must stay clean
    /// for a full probation window before the healer restores it.
    Probation,
    /// Flap-damped: the target oscillated enough that the monitor refuses
    /// to restore it until the flap penalty decays and a long clean streak
    /// accrues. Quarantine is what turns a flapping link into *one*
    /// recompile instead of a recompile storm.
    Quarantined,
}

impl HealthState {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Dead => "dead",
            HealthState::Gray => "gray",
            HealthState::Probation => "probation",
            HealthState::Quarantined => "quarantined",
        }
    }

    /// States the healer treats as failed (kept in the fault set).
    pub fn is_faulted(&self) -> bool {
        matches!(
            self,
            HealthState::Dead
                | HealthState::Gray
                | HealthState::Probation
                | HealthState::Quarantined
        )
    }
}

/// Detection and remediation tuning. Defaults confirm a dead target after
/// 3 consecutive missed probes against a clean history, a gray target
/// after 3 ticks of ≥ ~1/3 adverse probes, and quarantine a target that
/// flaps about three times within the decay window.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Accrued suspicion at which a target is confirmed dead.
    pub phi_dead: f64,
    /// Accrued suspicion at which a target becomes suspect.
    pub phi_gray: f64,
    /// Adverse fraction of the evidence window (lost + degraded) that
    /// counts as gray when sustained.
    pub gray_loss: f64,
    /// Evidence window length (probes per target).
    pub window: usize,
    /// Ticks the gray condition must hold before confirmation.
    pub confirm_ticks: u64,
    /// Consecutive clean probes before a faulted target enters probation,
    /// and again before a probationary target becomes restorable.
    pub recovery_ticks: u64,
    /// Flap penalty at which a target is quarantined.
    pub flap_limit: f64,
    /// Per-tick multiplicative decay of the flap penalty.
    pub flap_decay: f64,
    /// Penalty below which a quarantined target may leave quarantine.
    pub quarantine_exit: f64,
    /// Minimum ticks between remediation rounds.
    pub remediate_cooldown: u64,
    /// Cooldown multiplier after a failed round (damped backoff).
    pub backoff_factor: u64,
    /// Cooldown ceiling.
    pub max_cooldown: u64,
    /// Seed for probe jitter and chaos determinism.
    pub seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            // A miss against a clean history scores ~2.0, so three
            // consecutive misses confirm death (just under 6.0 to absorb
            // the probability clamp's float error).
            phi_dead: 5.9,
            phi_gray: 2.0,
            gray_loss: 0.34,
            window: 16,
            confirm_ticks: 3,
            recovery_ticks: 8,
            flap_limit: 2.5,
            flap_decay: 0.97,
            quarantine_exit: 0.5,
            remediate_cooldown: 4,
            backoff_factor: 2,
            max_cooldown: 64,
            seed: 0x11ea_17bb,
        }
    }
}

impl HealthConfig {
    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One confirmed state transition, as surfaced by [`HealthMonitor::tick`].
#[derive(Debug, Clone)]
pub struct HealthEvent {
    /// Virtual tick at which the transition happened.
    pub tick: u64,
    /// The target that changed state.
    pub target: Target,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Accrued suspicion at the transition.
    pub phi: f64,
    /// Flap penalty at the transition.
    pub flap_penalty: f64,
    /// The diagnostic code classifying the transition.
    pub code: Code,
}

/// Per-target detection record.
#[derive(Debug, Clone)]
struct TargetHealth {
    state: HealthState,
    /// Recent probe outcomes, newest last.
    window: VecDeque<ProbeOutcome>,
    consecutive_ok: u64,
    consecutive_lost: u64,
    /// Accrued suspicion (phi-accrual style: misses weighted by how
    /// reliable the target's recent history was).
    phi: f64,
    /// Ticks the gray condition has held.
    gray_ticks: u64,
    /// Clean probes observed while in probation.
    probation_ok: u64,
    /// Exponentially-decaying flap penalty.
    flap_penalty: f64,
    /// Whether the flapping diagnostic was already emitted (once per
    /// target — the per-down-edge events still fire).
    flap_diag_emitted: bool,
}

impl TargetHealth {
    fn new() -> Self {
        TargetHealth {
            state: HealthState::Healthy,
            window: VecDeque::new(),
            consecutive_ok: 0,
            consecutive_lost: 0,
            phi: 0.0,
            gray_ticks: 0,
            probation_ok: 0,
            flap_penalty: 0.0,
            flap_diag_emitted: false,
        }
    }

    /// Adverse fraction of the evidence window.
    fn adverse(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let bad = self
            .window
            .iter()
            .filter(|o| !matches!(o, ProbeOutcome::Ok))
            .count();
        bad as f64 / self.window.len() as f64
    }

    /// Probability a probe succeeds, estimated from the window *excluding*
    /// the trailing loss run (otherwise the misses being scored would
    /// dilute their own weight). Clamped away from 0 and 1; an empty
    /// history is presumed reliable, so misses against it score high.
    fn p_ok(&self) -> f64 {
        let trailing = self
            .window
            .iter()
            .rev()
            .take_while(|o| matches!(o, ProbeOutcome::Lost))
            .count();
        let prefix = self.window.len() - trailing;
        if prefix == 0 {
            return 0.99;
        }
        let oks = self
            .window
            .iter()
            .take(prefix)
            .filter(|o| matches!(o, ProbeOutcome::Ok))
            .count();
        (oks as f64 / prefix as f64).clamp(0.01, 0.99)
    }
}

/// Counters the monitor accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default)]
struct ProbeCounters {
    sent: u64,
    ok: u64,
    degraded: u64,
    lost: u64,
}

/// Failure detector: probes every watched target once per [`tick`]
/// (virtual clock — no wall time in any decision), scores the evidence,
/// and reports confirmed transitions.
///
/// [`tick`]: HealthMonitor::tick
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    now: u64,
    targets: BTreeMap<Target, TargetHealth>,
    probe_seq: u64,
    counters: ProbeCounters,
    diagnostics: Vec<Diagnostic>,
    events: u64,
}

impl HealthMonitor {
    /// A monitor with the given tuning, watching nothing yet.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            now: 0,
            targets: BTreeMap::new(),
            probe_seq: 0,
            counters: ProbeCounters::default(),
            diagnostics: Vec::new(),
            events: 0,
        }
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Watch every switch the placement uses and every link any flow path
    /// crosses. Idempotent and additive: targets already watched keep
    /// their history, so re-calling after a remediation rollout extends
    /// coverage to the new placement without resetting suspicion.
    pub fn watch_output(&mut self, output: &CompileOutput) {
        for sw in output.placement.switches.keys() {
            self.watch(Target::switch(sw.clone()));
        }
        for paths in output.flow_paths.values() {
            for path in paths {
                for hop in path.windows(2) {
                    self.watch(Target::link(hop[0].clone(), hop[1].clone()));
                }
            }
        }
    }

    /// Watch a single target (idempotent).
    pub fn watch(&mut self, target: Target) {
        self.targets.entry(target).or_insert_with(TargetHealth::new);
    }

    /// The current state of a target, if watched.
    pub fn state(&self, target: &Target) -> Option<HealthState> {
        self.targets.get(target).map(|h| h.state)
    }

    /// Targets currently confirmed faulted (dead, gray, in probation, or
    /// quarantined) — the set the healer should keep failed.
    pub fn faulted(&self) -> Vec<Target> {
        self.targets
            .iter()
            .filter(|(_, h)| h.state.is_faulted())
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// Probationary targets whose clean streak has run the full probation
    /// window — safe for the healer to restore.
    pub fn restorable(&self) -> Vec<Target> {
        self.targets
            .iter()
            .filter(|(_, h)| {
                h.state == HealthState::Probation && h.probation_ok >= self.cfg.recovery_ticks
            })
            .map(|(t, _)| t.clone())
            .collect()
    }

    /// The healer restored this target: back to healthy, with the flap
    /// penalty intact — penalty memory across restores is what stops a
    /// slow flapper from cycling fail/restore forever.
    pub fn mark_restored(&mut self, target: &Target) {
        if let Some(h) = self.targets.get_mut(target) {
            h.state = HealthState::Healthy;
            h.probation_ok = 0;
            h.gray_ticks = 0;
        }
    }

    /// Advance the virtual clock one tick: probe every watched target over
    /// `channel`, fold the outcomes into the suspicion scores, decay flap
    /// penalties, and return the confirmed state transitions.
    pub fn tick(&mut self, channel: &mut dyn ControlChannel) -> Vec<HealthEvent> {
        self.now += 1;
        let mut outcomes = Vec::with_capacity(self.targets.len());
        for target in self.targets.keys() {
            self.probe_seq += 1;
            let msg = ControlMsg {
                switch: target.wire(),
                epoch: 0,
                token: self.probe_seq,
                op: ControlOp::Probe,
            };
            let outcome = match channel.transmit(&msg) {
                Delivery::Delivered | Delivery::Duplicated => ProbeOutcome::Ok,
                Delivery::AckLost => ProbeOutcome::Degraded,
                Delivery::Dropped => ProbeOutcome::Lost,
            };
            outcomes.push((target.clone(), outcome));
        }
        // Probes are read-only; late copies answer no one. Drain so a
        // shared channel's reorder queue does not grow without bound.
        let _ = channel.drain_late();
        let mut events = Vec::new();
        for (target, outcome) in outcomes {
            self.counters.sent += 1;
            match outcome {
                ProbeOutcome::Ok => self.counters.ok += 1,
                ProbeOutcome::Degraded => self.counters.degraded += 1,
                ProbeOutcome::Lost => self.counters.lost += 1,
            }
            if let Some(ev) = self.record(&target, outcome) {
                events.push(ev);
            }
        }
        self.events += events.len() as u64;
        events
    }

    /// Fold passive evidence from a rollout into the scores: a switch
    /// whose sends needed retries is gray evidence; a clean send is a
    /// free healthy sample. No probes are spent.
    pub fn observe_rollout(&mut self, report: &RolloutReport) {
        let samples: Vec<(Target, ProbeOutcome)> = report
            .switches
            .iter()
            .map(|sr| {
                let outcome = if sr.retries > 0 {
                    ProbeOutcome::Degraded
                } else {
                    ProbeOutcome::Ok
                };
                (Target::switch(sr.switch.clone()), outcome)
            })
            .filter(|(t, _)| self.targets.contains_key(t))
            .collect();
        for (target, outcome) in samples {
            let _ = self.record(&target, outcome);
        }
    }

    /// Apply one evidence sample to `target` and run the state machine.
    fn record(&mut self, target: &Target, outcome: ProbeOutcome) -> Option<HealthEvent> {
        let cfg = self.cfg.clone();
        let now = self.now;
        let h = self.targets.get_mut(target)?;
        // Evidence window and streaks.
        h.window.push_back(outcome);
        while h.window.len() > cfg.window {
            h.window.pop_front();
        }
        let prev_ok_streak = h.consecutive_ok;
        match outcome {
            ProbeOutcome::Ok => {
                h.consecutive_ok += 1;
                h.consecutive_lost = 0;
            }
            ProbeOutcome::Degraded => {
                h.consecutive_ok = 0;
                h.consecutive_lost = 0;
            }
            ProbeOutcome::Lost => {
                h.consecutive_lost += 1;
                h.consecutive_ok = 0;
            }
        }
        // Suspicion: misses weighted by how reliable the history was.
        let miss_weight = -(1.0 - h.p_ok()).log10();
        h.phi = h.consecutive_lost as f64 * miss_weight;
        // Gray condition persistence.
        if h.adverse() >= cfg.gray_loss && h.window.len() >= cfg.window / 2 {
            h.gray_ticks += 1;
        } else {
            h.gray_ticks = 0;
        }
        // Flap damping: decay every sample; charge every down-edge seen
        // while the target is already faulted (an up-then-down oscillation,
        // not a fresh failure).
        h.flap_penalty *= cfg.flap_decay;
        let mut flap_event = false;
        if outcome == ProbeOutcome::Lost && prev_ok_streak >= 2 && h.state.is_faulted() {
            h.flap_penalty += 1.0;
            flap_event = true;
        }
        // State machine.
        let from = h.state;
        let mut code = None;
        let to = match h.state {
            HealthState::Healthy | HealthState::Suspect => {
                if h.phi >= cfg.phi_dead {
                    h.flap_penalty += 1.0;
                    code = Some(codes::HEALTH_DEAD);
                    HealthState::Dead
                } else if h.gray_ticks >= cfg.confirm_ticks {
                    h.flap_penalty += 1.0;
                    code = Some(codes::HEALTH_GRAY);
                    HealthState::Gray
                } else if h.phi >= cfg.phi_gray {
                    HealthState::Suspect
                } else {
                    HealthState::Healthy
                }
            }
            HealthState::Dead => {
                if h.consecutive_ok >= cfg.recovery_ticks {
                    h.probation_ok = 0;
                    HealthState::Probation
                } else {
                    HealthState::Dead
                }
            }
            HealthState::Gray => {
                if h.consecutive_ok >= cfg.recovery_ticks && h.gray_ticks == 0 {
                    h.probation_ok = 0;
                    HealthState::Probation
                } else {
                    HealthState::Gray
                }
            }
            HealthState::Probation => {
                if h.phi >= cfg.phi_dead {
                    code = Some(codes::HEALTH_DEAD);
                    HealthState::Dead
                } else if h.gray_ticks >= cfg.confirm_ticks {
                    code = Some(codes::HEALTH_GRAY);
                    HealthState::Gray
                } else {
                    if outcome == ProbeOutcome::Ok {
                        h.probation_ok += 1;
                    }
                    HealthState::Probation
                }
            }
            HealthState::Quarantined => {
                if h.flap_penalty < cfg.quarantine_exit
                    && h.consecutive_ok >= 2 * cfg.recovery_ticks
                {
                    h.probation_ok = 0;
                    HealthState::Probation
                } else {
                    HealthState::Quarantined
                }
            }
        };
        h.state = to;
        // Quarantine promotion overrides everything except full health.
        let (to, code) = if h.flap_penalty >= cfg.flap_limit && to != HealthState::Quarantined {
            h.state = HealthState::Quarantined;
            (HealthState::Quarantined, Some(codes::HEALTH_QUARANTINED))
        } else {
            (to, code)
        };
        // Diagnostics: once per confirmed transition; the flapping code
        // once per target (its per-edge events still return below).
        if let Some(c) = code {
            if from != to {
                let msg = if c == codes::HEALTH_DEAD {
                    format!(
                        "{target} confirmed dead at tick {now}: {} consecutive missed \
                         probes (phi {:.1} ≥ {:.1})",
                        h.consecutive_lost, h.phi, cfg.phi_dead
                    )
                } else if c == codes::HEALTH_GRAY {
                    format!(
                        "{target} confirmed gray at tick {now}: {:.0}% of the last {} \
                         probes were adverse for {} ticks",
                        h.adverse() * 100.0,
                        h.window.len(),
                        h.gray_ticks
                    )
                } else {
                    format!(
                        "{target} quarantined at tick {now}: flap penalty {:.2} ≥ {:.2}; \
                         restore is blocked until the penalty decays and a long clean \
                         streak accrues",
                        h.flap_penalty, cfg.flap_limit
                    )
                };
                self.diagnostics.push(Diagnostic::warning(c, msg));
            }
        }
        if flap_event && !h.flap_diag_emitted {
            h.flap_diag_emitted = true;
            self.diagnostics.push(Diagnostic::warning(
                codes::HEALTH_FLAPPING,
                format!(
                    "{target} is flapping: went down again at tick {now} after answering \
                     {prev_ok_streak} probes; flap penalty {:.2}",
                    h.flap_penalty
                ),
            ));
        }
        if from != to {
            Some(HealthEvent {
                tick: now,
                target: target.clone(),
                from,
                to,
                phi: h.phi,
                flap_penalty: h.flap_penalty,
                code: code.unwrap_or(codes::HEALTH_FLAPPING),
            })
        } else if flap_event {
            Some(HealthEvent {
                tick: now,
                target: target.clone(),
                from,
                to,
                phi: h.phi,
                flap_penalty: h.flap_penalty,
                code: codes::HEALTH_FLAPPING,
            })
        } else {
            None
        }
    }

    /// Snapshot the monitor's view for reports and the session JSON.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            ticks: self.now,
            probes_sent: self.counters.sent,
            probes_ok: self.counters.ok,
            probes_degraded: self.counters.degraded,
            probes_lost: self.counters.lost,
            transitions: self.events,
            targets: self
                .targets
                .iter()
                .map(|(t, h)| TargetStatus {
                    target: t.clone(),
                    state: h.state,
                    phi: h.phi,
                    flap_penalty: h.flap_penalty,
                    consecutive_ok: h.consecutive_ok,
                    consecutive_lost: h.consecutive_lost,
                    window_adverse: h.adverse(),
                })
                .collect(),
            diagnostics: self.diagnostics.clone(),
        }
    }
}

/// One target's line in a [`HealthReport`].
#[derive(Debug, Clone)]
pub struct TargetStatus {
    /// The target.
    pub target: Target,
    /// Its current verdict.
    pub state: HealthState,
    /// Accrued suspicion.
    pub phi: f64,
    /// Flap penalty.
    pub flap_penalty: f64,
    /// Current clean streak.
    pub consecutive_ok: u64,
    /// Current loss streak.
    pub consecutive_lost: u64,
    /// Adverse fraction of the evidence window.
    pub window_adverse: f64,
}

impl TargetStatus {
    /// Serialise for the session JSON.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("target", Value::str(self.target.wire()));
        o.push("state", Value::str(self.state.name()));
        o.push("phi", Value::Number(self.phi));
        o.push("flap_penalty", Value::Number(self.flap_penalty));
        o.push("consecutive_ok", Value::Number(self.consecutive_ok as f64));
        o.push(
            "consecutive_lost",
            Value::Number(self.consecutive_lost as f64),
        );
        o.push("window_adverse", Value::Number(self.window_adverse));
        Value::Object(o)
    }
}

/// The monitor's summary: counters plus the per-target verdicts.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Virtual ticks elapsed.
    pub ticks: u64,
    /// Probes transmitted.
    pub probes_sent: u64,
    /// Probes answered promptly.
    pub probes_ok: u64,
    /// Probes answered badly (ack lost / retries).
    pub probes_degraded: u64,
    /// Probes never answered.
    pub probes_lost: u64,
    /// Confirmed state transitions observed.
    pub transitions: u64,
    /// Per-target verdicts.
    pub targets: Vec<TargetStatus>,
    /// Everything the monitor diagnosed (LYR0580–LYR0583).
    pub diagnostics: Vec<Diagnostic>,
}

impl HealthReport {
    /// Targets currently in the given state.
    pub fn in_state(&self, state: HealthState) -> usize {
        self.targets.iter().filter(|t| t.state == state).count()
    }

    /// Serialise for the session JSON.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("ticks", Value::Number(self.ticks as f64));
        o.push("probes_sent", Value::Number(self.probes_sent as f64));
        o.push("probes_ok", Value::Number(self.probes_ok as f64));
        o.push(
            "probes_degraded",
            Value::Number(self.probes_degraded as f64),
        );
        o.push("probes_lost", Value::Number(self.probes_lost as f64));
        o.push("transitions", Value::Number(self.transitions as f64));
        o.push(
            "targets",
            Value::Array(self.targets.iter().map(|t| t.to_json()).collect()),
        );
        o.push(
            "diagnostics",
            Value::Array(
                self.diagnostics
                    .iter()
                    .map(|d| Value::str(format!("{d}")))
                    .collect(),
            ),
        );
        Value::Object(o)
    }
}

// ---------------------------------------------------------------------------
// Remediation: the self-healer policy engine
// ---------------------------------------------------------------------------

/// One remediation round the healer wants executed.
#[derive(Debug, Clone)]
pub struct RemediationPlan {
    /// Targets to add to the fault set.
    pub fail: Vec<Target>,
    /// Targets to remove from the fault set (restore).
    pub restore: Vec<Target>,
    /// The full desired fault set after this round.
    pub desired: BTreeSet<Target>,
    /// Earliest confirmation tick among the newly-failed targets (for
    /// MTTR: detect → healed).
    pub tick_detected: Option<u64>,
}

impl RemediationPlan {
    /// The desired set as a [`FaultSet`].
    pub fn fault_set(&self) -> FaultSet {
        let mut fs = FaultSet::new();
        for t in &self.desired {
            match t {
                Target::Switch(s) => fs.add_switch(s.clone()),
                Target::Link(a, b) => fs.add_link(a, b),
            }
        }
        fs
    }
}

/// What [`SelfHealer::plan`] decided this tick.
#[derive(Debug)]
pub enum PlanOutcome {
    /// Desired and active fault sets agree — nothing to do.
    Idle,
    /// Work is pending but the rate limiter is holding it back; `first`
    /// is true the first tick of each deferral window (for the LYR0586
    /// diagnostic — one per window, not one per tick).
    Deferred {
        /// First deferral since the last completed round.
        first: bool,
    },
    /// Execute this round now.
    Go(RemediationPlan),
}

/// Policy engine between detection and action: tracks the desired fault
/// set (what the monitor has confirmed) against the active one (what the
/// deployment was last recompiled for), rate-limits rounds, backs off on
/// failure, and coalesces confirmations that arrive while a round is
/// rate-limited into one recompile.
#[derive(Debug)]
pub struct SelfHealer {
    desired: BTreeSet<Target>,
    active: BTreeSet<Target>,
    confirmed_at: BTreeMap<Target, u64>,
    next_allowed: u64,
    cooldown: u64,
    base_cooldown: u64,
    backoff_factor: u64,
    max_cooldown: u64,
    deferral_logged: bool,
}

impl SelfHealer {
    /// A healer with nothing failed, tuned from `cfg`.
    pub fn new(cfg: &HealthConfig) -> Self {
        SelfHealer {
            desired: BTreeSet::new(),
            active: BTreeSet::new(),
            confirmed_at: BTreeMap::new(),
            next_allowed: 0,
            cooldown: cfg.remediate_cooldown,
            base_cooldown: cfg.remediate_cooldown.max(1),
            backoff_factor: cfg.backoff_factor.max(1),
            max_cooldown: cfg.max_cooldown.max(1),
            deferral_logged: false,
        }
    }

    /// The monitor confirmed `target` faulted at `tick`.
    pub fn confirm(&mut self, target: Target, tick: u64) {
        self.confirmed_at.entry(target.clone()).or_insert(tick);
        self.desired.insert(target);
    }

    /// The monitor cleared `target` for restore.
    pub fn request_restore(&mut self, target: &Target) {
        self.desired.remove(target);
    }

    /// True when the active deployment matches every confirmed suspicion.
    pub fn settled(&self) -> bool {
        self.desired == self.active
    }

    /// The fault set the deployment currently runs under.
    pub fn active(&self) -> &BTreeSet<Target> {
        &self.active
    }

    /// Decide whether to act this tick.
    pub fn plan(&mut self, tick: u64) -> PlanOutcome {
        if self.settled() {
            return PlanOutcome::Idle;
        }
        if tick < self.next_allowed {
            let first = !self.deferral_logged;
            self.deferral_logged = true;
            return PlanOutcome::Deferred { first };
        }
        let fail: Vec<Target> = self.desired.difference(&self.active).cloned().collect();
        let restore: Vec<Target> = self.active.difference(&self.desired).cloned().collect();
        let tick_detected = fail
            .iter()
            .filter_map(|t| self.confirmed_at.get(t).copied())
            .min();
        PlanOutcome::Go(RemediationPlan {
            fail,
            restore,
            desired: self.desired.clone(),
            tick_detected,
        })
    }

    /// Record the outcome of an executed round. Success snapshots the
    /// desired set as active and relaxes the cooldown; failure keeps the
    /// delta pending and backs the cooldown off (damped — the ceiling
    /// stops a persistently-failing remediation from spinning).
    pub fn complete(&mut self, tick: u64, plan: &RemediationPlan, success: bool) {
        if success {
            self.active = plan.desired.clone();
            for t in &plan.fail {
                self.confirmed_at.remove(t);
            }
            self.cooldown = self.base_cooldown;
        } else {
            self.cooldown = (self.cooldown * self.backoff_factor).min(self.max_cooldown);
        }
        self.next_allowed = tick + self.cooldown;
        self.deferral_logged = false;
    }
}

// ---------------------------------------------------------------------------
// Chaos: seeded failure schedules on the virtual clock
// ---------------------------------------------------------------------------

/// One scheduled fault.
#[derive(Debug, Clone)]
pub enum ChaosEvent {
    /// The target stops answering at `at` (until a later `Restore`).
    Kill {
        /// Tick the target dies.
        at: u64,
        /// What dies.
        target: Target,
    },
    /// The target answers again from `at`.
    Restore {
        /// Tick the target revives.
        at: u64,
        /// What revives.
        target: Target,
    },
    /// The target oscillates: down for `period` ticks, up for `period`
    /// ticks, `count` times, starting at `at`.
    Flap {
        /// First down tick.
        at: u64,
        /// Half-cycle length in ticks.
        period: u64,
        /// Down/up cycles.
        count: u64,
        /// What flaps.
        target: Target,
    },
    /// The target answers slowly in `[at, until)`: delivered, ack lost.
    Slow {
        /// First slow tick.
        at: u64,
        /// First tick back to normal.
        until: u64,
        /// What slows.
        target: Target,
    },
    /// The target drops each message with probability `p` in `[at, until)`.
    Lossy {
        /// First lossy tick.
        at: u64,
        /// First tick back to normal.
        until: u64,
        /// Drop probability per transmission.
        p: f64,
        /// What drops.
        target: Target,
    },
}

impl ChaosEvent {
    fn target(&self) -> &Target {
        match self {
            ChaosEvent::Kill { target, .. }
            | ChaosEvent::Restore { target, .. }
            | ChaosEvent::Flap { target, .. }
            | ChaosEvent::Slow { target, .. }
            | ChaosEvent::Lossy { target, .. } => target,
        }
    }
}

/// A deterministic fault schedule on the virtual clock. The schedule is
/// ground truth: tests compare the monitor's verdicts against
/// [`ChaosSchedule::down_at`].
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    /// The scheduled faults.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Kill `target` at `at`.
    pub fn kill(mut self, at: u64, target: Target) -> Self {
        self.events.push(ChaosEvent::Kill { at, target });
        self
    }

    /// Restore `target` at `at`.
    pub fn restore(mut self, at: u64, target: Target) -> Self {
        self.events.push(ChaosEvent::Restore { at, target });
        self
    }

    /// Flap `target`: `count` down/up cycles of `period` ticks each way,
    /// starting at `at`.
    pub fn flap(mut self, at: u64, target: Target, period: u64, count: u64) -> Self {
        self.events.push(ChaosEvent::Flap {
            at,
            period: period.max(1),
            count,
            target,
        });
        self
    }

    /// Slow `target` in `[at, until)`.
    pub fn slow(mut self, at: u64, until: u64, target: Target) -> Self {
        self.events.push(ChaosEvent::Slow { at, until, target });
        self
    }

    /// Make `target` lossy (drop probability `p`) in `[at, until)`.
    pub fn lossy(mut self, at: u64, until: u64, target: Target, p: f64) -> Self {
        self.events.push(ChaosEvent::Lossy {
            at,
            until,
            p,
            target,
        });
        self
    }

    /// Ground truth: is `target` itself down at `tick`? (Does not chase
    /// link endpoints — [`ChaosChannel`] layers that on.)
    pub fn down_at(&self, target: &Target, tick: u64) -> bool {
        let mut down = false;
        let mut last_edge = 0u64;
        for ev in &self.events {
            if ev.target() != target {
                continue;
            }
            match ev {
                ChaosEvent::Kill { at, .. } if *at <= tick && *at >= last_edge => {
                    down = true;
                    last_edge = *at;
                }
                ChaosEvent::Restore { at, .. } if *at <= tick && *at >= last_edge => {
                    down = false;
                    last_edge = *at;
                }
                _ => {}
            }
        }
        if down {
            return true;
        }
        self.events.iter().any(|ev| match ev {
            ChaosEvent::Flap {
                at,
                period,
                count,
                target: t,
            } if t == target => {
                if tick < *at || tick >= at + 2 * period * count {
                    false
                } else {
                    ((tick - at) / period).is_multiple_of(2)
                }
            }
            _ => false,
        })
    }

    /// Is `target` in a slow window at `tick`?
    pub fn slow_at(&self, target: &Target, tick: u64) -> bool {
        self.events.iter().any(|ev| match ev {
            ChaosEvent::Slow {
                at,
                until,
                target: t,
            } => t == target && *at <= tick && tick < *until,
            _ => false,
        })
    }

    /// The drop probability `target` suffers at `tick` (0 when outside
    /// every lossy window; overlapping windows take the max).
    pub fn lossy_p_at(&self, target: &Target, tick: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                ChaosEvent::Lossy {
                    at,
                    until,
                    p,
                    target: t,
                } if t == target && *at <= tick && tick < *until => Some(*p),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

/// A [`ControlChannel`] ruled by a [`ChaosSchedule`] on the virtual clock.
/// Rollout messages (addressed to real switches) and health probes
/// (addressed to wire names, including `a~b` link probes) flow through the
/// same fates: a dead switch drops everything, a dead link drops its own
/// probes, a slow target loses acknowledgements, a lossy one drops
/// stochastically (seeded — the same seed replays the identical run).
#[derive(Debug)]
pub struct ChaosChannel {
    schedule: ChaosSchedule,
    rng: Rng,
    tick: u64,
}

impl ChaosChannel {
    /// A channel ruled by `schedule`, with seeded loss.
    pub fn new(schedule: ChaosSchedule, seed: u64) -> Self {
        ChaosChannel {
            schedule,
            rng: Rng::new(seed),
            tick: 0,
        }
    }

    /// Advance the virtual clock (the monitor calls this once per tick).
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    /// Current virtual tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Effective down: the target itself, or — for a link — either
    /// endpoint.
    fn down(&self, target: &Target) -> bool {
        if self.schedule.down_at(target, self.tick) {
            return true;
        }
        if let Target::Link(a, b) = target {
            return self.schedule.down_at(&Target::switch(a.clone()), self.tick)
                || self.schedule.down_at(&Target::switch(b.clone()), self.tick);
        }
        false
    }
}

impl ControlChannel for ChaosChannel {
    fn transmit(&mut self, msg: &ControlMsg) -> Delivery {
        let target = Target::from_wire(&msg.switch);
        if self.down(&target) {
            return Delivery::Dropped;
        }
        let p = self.schedule.lossy_p_at(&target, self.tick);
        if p > 0.0 && self.rng.next_f64() < p {
            return Delivery::Dropped;
        }
        if self.schedule.slow_at(&target, self.tick) {
            return Delivery::AckLost;
        }
        Delivery::Delivered
    }
}

// ---------------------------------------------------------------------------
// The closed loop: run_selfheal
// ---------------------------------------------------------------------------

/// Tuning for one [`run_selfheal`] run.
#[derive(Debug, Clone)]
pub struct SelfHealConfig {
    /// Detection and healer tuning.
    pub health: HealthConfig,
    /// Rollout tuning for remediation rounds.
    pub rollout: RolloutConfig,
    /// Virtual ticks to run.
    pub ticks: u64,
    /// Packets to push through each remediation rollout and the final
    /// serving check. `0` = control plane only (no traffic threads).
    pub traffic_packets: u64,
    /// Replay worker threads (when `traffic_packets > 0`).
    pub workers: usize,
}

impl Default for SelfHealConfig {
    fn default() -> Self {
        SelfHealConfig {
            health: HealthConfig::default(),
            rollout: RolloutConfig::default(),
            ticks: 64,
            traffic_packets: 0,
            workers: 2,
        }
    }
}

/// One executed remediation round.
#[derive(Debug, Clone)]
pub struct RemediationReport {
    /// Round number (1-based).
    pub round: u64,
    /// Earliest confirmation tick among this round's newly-failed targets.
    pub tick_detected: Option<u64>,
    /// Tick the round started executing.
    pub tick_started: u64,
    /// Tick the remediation rollout committed (None if it failed).
    pub tick_healed: Option<u64>,
    /// Wire names failed this round.
    pub failed: Vec<String>,
    /// Wire names restored this round.
    pub restored: Vec<String>,
    /// Whether the remediation rollout committed.
    pub committed: bool,
    /// Whether it rolled back.
    pub rolled_back: bool,
    /// Post-remediation anti-entropy audit verdict.
    pub audit_clean: bool,
    /// Drifted entries the audit repaired.
    pub drift_repaired: u64,
    /// Instruction churn of the remediation rollout.
    pub instr_churn: usize,
    /// Mixed-epoch packets observed while traffic ran under the rollout.
    pub mixed_epoch_exposure: u64,
    /// Wall time of the round (measured, never consulted).
    pub elapsed: Duration,
}

impl RemediationReport {
    /// Detect → healed, in virtual ticks (None if the round failed or
    /// was a pure restore).
    pub fn mttr_ticks(&self) -> Option<u64> {
        match (self.tick_detected, self.tick_healed) {
            (Some(d), Some(h)) if h >= d => Some(h - d),
            _ => None,
        }
    }

    /// Serialise for the session JSON.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("round", Value::Number(self.round as f64));
        o.push(
            "tick_detected",
            self.tick_detected
                .map(|t| Value::Number(t as f64))
                .unwrap_or(Value::Null),
        );
        o.push("tick_started", Value::Number(self.tick_started as f64));
        o.push(
            "tick_healed",
            self.tick_healed
                .map(|t| Value::Number(t as f64))
                .unwrap_or(Value::Null),
        );
        o.push(
            "mttr_ticks",
            self.mttr_ticks()
                .map(|t| Value::Number(t as f64))
                .unwrap_or(Value::Null),
        );
        o.push(
            "failed",
            Value::Array(self.failed.iter().map(Value::str).collect()),
        );
        o.push(
            "restored",
            Value::Array(self.restored.iter().map(Value::str).collect()),
        );
        o.push("committed", Value::Bool(self.committed));
        o.push("rolled_back", Value::Bool(self.rolled_back));
        o.push("audit_clean", Value::Bool(self.audit_clean));
        o.push("drift_repaired", Value::Number(self.drift_repaired as f64));
        o.push("instr_churn", Value::Number(self.instr_churn as f64));
        o.push(
            "mixed_epoch_exposure",
            Value::Number(self.mixed_epoch_exposure as f64),
        );
        o.push("elapsed_us", Value::Number(self.elapsed.as_micros() as f64));
        Value::Object(o)
    }
}

/// What a full closed-loop run observed.
#[derive(Debug, Clone)]
pub struct SelfHealOutcome {
    /// Virtual ticks run.
    pub ticks: u64,
    /// The monitor's final view.
    pub health: HealthReport,
    /// Every executed remediation round, in order.
    pub remediations: Vec<RemediationReport>,
    /// Fault-set recompiles performed.
    pub recompiles: u64,
    /// Remediation rollouts that committed.
    pub rollouts_committed: u64,
    /// Remediation rollouts that rolled back or failed.
    pub rollouts_rolled_back: u64,
    /// Targets restored to service.
    pub restores: u64,
    /// Ticks on which pending work was deferred by the rate limiter.
    pub rate_limited_deferrals: u64,
    /// Mixed-epoch packets across every replay (must be zero).
    pub mixed_epoch_exposure: u64,
    /// Replay workers that panicked (must be zero).
    pub worker_panics: u64,
    /// Packets delivered across every replay.
    pub traffic_delivered: u64,
    /// Packets refused for epoch mismatch across every replay.
    pub traffic_refused: u64,
    /// Final verdict: every confirmed suspicion remediated, epochs
    /// coherent on the surviving deployment.
    pub converged: bool,
    /// Final anti-entropy audit verdict.
    pub final_audit_clean: bool,
    /// Healer/loop diagnostics (LYR0584–LYR0587).
    pub diagnostics: Vec<Diagnostic>,
    /// Wall time of the whole run (measured, never consulted).
    pub elapsed: Duration,
}

impl SelfHealOutcome {
    /// Serialise for the session JSON and `lyrac --monitor`.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("ticks", Value::Number(self.ticks as f64));
        o.push("health", self.health.to_json());
        o.push(
            "remediations",
            Value::Array(self.remediations.iter().map(|r| r.to_json()).collect()),
        );
        o.push("recompiles", Value::Number(self.recompiles as f64));
        o.push(
            "rollouts_committed",
            Value::Number(self.rollouts_committed as f64),
        );
        o.push(
            "rollouts_rolled_back",
            Value::Number(self.rollouts_rolled_back as f64),
        );
        o.push("restores", Value::Number(self.restores as f64));
        o.push(
            "rate_limited_deferrals",
            Value::Number(self.rate_limited_deferrals as f64),
        );
        o.push(
            "mixed_epoch_exposure",
            Value::Number(self.mixed_epoch_exposure as f64),
        );
        o.push("worker_panics", Value::Number(self.worker_panics as f64));
        o.push(
            "traffic_delivered",
            Value::Number(self.traffic_delivered as f64),
        );
        o.push(
            "traffic_refused",
            Value::Number(self.traffic_refused as f64),
        );
        o.push("converged", Value::Bool(self.converged));
        o.push("final_audit_clean", Value::Bool(self.final_audit_clean));
        o.push(
            "diagnostics",
            Value::Array(
                self.diagnostics
                    .iter()
                    .map(|d| Value::str(format!("{d}")))
                    .collect(),
            ),
        );
        o.push("elapsed_us", Value::Number(self.elapsed.as_micros() as f64));
        Value::Object(o)
    }
}

/// Logical state carried between runtime generations. The runtime borrows
/// the output it serves, so each committed remediation ends the borrow,
/// swaps the served output, and rebuilds the runtime from this snapshot —
/// the same dance a controller failover performs from its intent log.
struct Snapshot {
    entries: Vec<(String, u64, u64)>,
    epoch: u64,
    epoch_counter: u64,
    faults: FaultSet,
}

impl Snapshot {
    fn capture(rt: &Runtime<'_>) -> Self {
        Snapshot {
            entries: rt.logical_entries(),
            epoch: rt.epoch,
            epoch_counter: rt.epoch_counter,
            faults: rt.faults.clone(),
        }
    }

    fn hydrate(&self, rt: &mut Runtime<'_>) {
        rt.epoch = self.epoch;
        rt.epoch_counter = self.epoch_counter;
        rt.faults = self.faults.clone();
        let dead: Vec<String> = self.faults.failed_switches().map(String::from).collect();
        for sw in &dead {
            rt.states.remove(sw);
        }
        for st in rt.states.values_mut() {
            st.epoch = self.epoch;
        }
        for (table, key, value) in &self.entries {
            // Entries whose surviving placement cannot hold them are
            // dropped by the planner, not an error here.
            let _ = rt.install(table, *key, *value);
        }
        rt.refresh_expected();
    }
}

/// Run the full closed loop: compile `req`, install `entries`, then tick
/// the monitor against `schedule` for `cfg.ticks` virtual ticks, executing
/// every remediation round the healer confirms — fault-set recompile,
/// two-phase rollout (under live traffic when `cfg.traffic_packets > 0`),
/// logical-entry re-install, anti-entropy audit, and restore-on-recovery.
///
/// Deterministic for a fixed `cfg.health.seed`; `Err` is reserved for the
/// initial compile failing — everything after that is reported in the
/// outcome, not thrown.
pub fn run_selfheal(
    compiler: &Compiler,
    req: &CompileRequest<'_>,
    entries: &[(String, u64, u64)],
    schedule: &ChaosSchedule,
    cfg: &SelfHealConfig,
) -> Result<SelfHealOutcome, CompileError> {
    let t0 = Instant::now();
    let baseline = compiler.compile(req)?;
    let mut current: Box<CompileOutput> = Box::new(baseline);
    let mut monitor = HealthMonitor::new(cfg.health.clone());
    monitor.watch_output(&current);
    let mut healer = SelfHealer::new(&cfg.health);
    let mut chaos = ChaosChannel::new(schedule.clone(), cfg.health.seed ^ 0xc4a0_55ed);

    let mut remediations: Vec<RemediationReport> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut recompiles = 0u64;
    let mut rollouts_committed = 0u64;
    let mut rollouts_rolled_back = 0u64;
    let mut restores = 0u64;
    let mut rate_limited_deferrals = 0u64;
    let mut mixed_epoch_exposure = 0u64;
    let mut worker_panics = 0u64;
    let mut traffic_delivered = 0u64;
    let mut traffic_refused = 0u64;
    let mut converged = false;
    let mut final_audit_clean = false;

    let mut snapshot: Option<Snapshot> = None;
    let mut tick = 0u64;
    let mut round = 0u64;

    'generations: loop {
        // Declared before the runtime so a staged recompile outlives the
        // borrow `apply_rollout` takes on it. At most one remediation
        // executes per generation: once the runtime borrows the staged
        // output, the generation must end before anything new is staged.
        let mut staged: Option<FaultRecompile> = None;
        let mut committed = false;
        {
            let mut rt = Runtime::new(&current);
            match &snapshot {
                Some(snap) => snap.hydrate(&mut rt),
                None => {
                    for (table, key, value) in entries {
                        if let Err(e) = rt.install(table, *key, *value) {
                            diagnostics.push(Diagnostic::warning(
                                codes::HEAL_FAILED,
                                format!("seed install of `{table}`[{key}] failed: {e}"),
                            ));
                        }
                    }
                }
            }

            while tick < cfg.ticks {
                tick += 1;
                chaos.set_tick(tick);
                let events = monitor.tick(&mut chaos);
                for ev in &events {
                    if matches!(ev.to, HealthState::Dead | HealthState::Gray) {
                        healer.confirm(ev.target.clone(), tick);
                    }
                }
                for t in monitor.restorable() {
                    healer.request_restore(&t);
                }
                let plan = match healer.plan(tick) {
                    PlanOutcome::Idle => continue,
                    PlanOutcome::Deferred { first } => {
                        rate_limited_deferrals += 1;
                        if first {
                            diagnostics.push(Diagnostic::warning(
                                codes::HEAL_RATE_LIMITED,
                                format!(
                                    "remediation deferred at tick {tick}: cooldown in \
                                     effect; confirmed suspicions coalesce into the \
                                     next round"
                                ),
                            ));
                        }
                        continue;
                    }
                    PlanOutcome::Go(plan) => plan,
                };

                round += 1;
                let round_t0 = Instant::now();
                let faults = plan.fault_set();
                // Ground truth before any state is torn down: entries held
                // only by a dying switch must survive the remediation.
                let pre_entries = rt.logical_entries();
                let rec = match compiler.recompile_for_faults(req, &current, &faults) {
                    Ok(rec) => rec,
                    Err(e) => {
                        // Nothing was staged or borrowed — the generation
                        // continues; the healer backs off and retries.
                        healer.complete(tick, &plan, false);
                        diagnostics.push(Diagnostic::error(
                            codes::HEAL_FAILED,
                            format!("round {round}: recompile under fault set failed: {e}"),
                        ));
                        remediations.push(RemediationReport {
                            round,
                            tick_detected: plan.tick_detected,
                            tick_started: tick,
                            tick_healed: None,
                            failed: plan.fail.iter().map(Target::wire).collect(),
                            restored: plan.restore.iter().map(Target::wire).collect(),
                            committed: false,
                            rolled_back: false,
                            audit_clean: false,
                            drift_repaired: 0,
                            instr_churn: 0,
                            mixed_epoch_exposure: 0,
                            elapsed: round_t0.elapsed(),
                        });
                        continue;
                    }
                };
                recompiles += 1;
                staged = Some(rec);
                let rec_ref = staged.as_ref().expect("staged recompile was just assigned");

                // The controller knows these switches are dead: drop their
                // state so the rollout neither messages them nor counts
                // them toward epoch coherence.
                rt.faults = faults.clone();
                for t in &plan.fail {
                    if let Target::Switch(sw) = t {
                        rt.states.remove(sw);
                    }
                }

                let rollout_cfg = cfg
                    .rollout
                    .clone()
                    .with_scope_health(rec_ref.scope_health.clone())
                    .with_seed(cfg.health.seed ^ (round << 8));
                let mut round_mixed = 0u64;
                let rollout_res = if cfg.traffic_packets > 0 {
                    let replay_cfg = ReplayConfig::default()
                        .with_packets(cfg.traffic_packets)
                        .with_workers(cfg.workers)
                        .with_seed(cfg.health.seed ^ round);
                    match replay_under_rollout(
                        &mut rt,
                        &rec_ref.output,
                        &mut chaos,
                        &rollout_cfg,
                        &replay_cfg,
                    ) {
                        Ok(outcome) => {
                            traffic_delivered += outcome.replay.delivered;
                            traffic_refused += outcome.replay.refused_epoch_mismatch;
                            round_mixed = outcome.replay.mixed_epoch_exposure;
                            mixed_epoch_exposure += round_mixed;
                            worker_panics += outcome.replay.worker_panics;
                            Ok(outcome.rollout)
                        }
                        Err(e) => Err(e),
                    }
                } else {
                    rt.apply_rollout(&rec_ref.output, &mut chaos, &rollout_cfg)
                };

                let mut report = RemediationReport {
                    round,
                    tick_detected: plan.tick_detected,
                    tick_started: tick,
                    tick_healed: None,
                    failed: plan.fail.iter().map(Target::wire).collect(),
                    restored: plan.restore.iter().map(Target::wire).collect(),
                    committed: false,
                    rolled_back: false,
                    audit_clean: false,
                    drift_repaired: 0,
                    instr_churn: 0,
                    mixed_epoch_exposure: round_mixed,
                    elapsed: Duration::ZERO,
                };
                match rollout_res {
                    Ok(rollout) if rollout.committed => {
                        monitor.observe_rollout(&rollout);
                        // Re-install the pre-remediation logical view onto
                        // the new placement (idempotent; entries that lost
                        // every holder are re-homed, the rest are no-ops).
                        for (table, key, value) in &pre_entries {
                            let _ = rt.install(table, *key, *value);
                        }
                        let audit = rt.audit_switches();
                        report.audit_clean = audit.clean();
                        report.drift_repaired = audit.repaired;
                        report.instr_churn = rollout.instr_churn;
                        report.committed = true;
                        report.tick_healed = Some(tick);
                        for t in &plan.restore {
                            monitor.mark_restored(t);
                            diagnostics.push(Diagnostic::warning(
                                codes::HEAL_RESTORED,
                                format!(
                                    "{t} restored to service at tick {tick} after a \
                                     clean probation window"
                                ),
                            ));
                        }
                        restores += plan.restore.len() as u64;
                        healer.complete(tick, &plan, true);
                        monitor.watch_output(&rec_ref.output);
                        rollouts_committed += 1;
                        diagnostics.push(Diagnostic::warning(
                            codes::HEAL_REMEDIATED,
                            format!(
                                "round {round}: remediation committed at tick {tick} \
                                 (failed [{}], restored [{}], epoch {})",
                                report.failed.join(", "),
                                report.restored.join(", "),
                                rollout.epoch
                            ),
                        ));
                        committed = true;
                    }
                    Ok(rollout) => {
                        monitor.observe_rollout(&rollout);
                        report.rolled_back = rollout.rolled_back;
                        healer.complete(tick, &plan, false);
                        rollouts_rolled_back += 1;
                        diagnostics.push(Diagnostic::warning(
                            codes::HEAL_FAILED,
                            format!(
                                "round {round}: remediation rollout did not commit at \
                                 tick {tick}; backing off and coalescing"
                            ),
                        ));
                    }
                    Err(e) => {
                        healer.complete(tick, &plan, false);
                        rollouts_rolled_back += 1;
                        diagnostics.push(Diagnostic::error(
                            codes::HEAL_FAILED,
                            format!("round {round}: remediation rollout failed: {e}"),
                        ));
                    }
                }
                report.elapsed = round_t0.elapsed();
                remediations.push(report);
                // The runtime now borrows the staged output (even a failed
                // rollout took the borrow): end the generation either way.
                snapshot = Some(Snapshot::capture(&rt));
                break;
            }

            if tick >= cfg.ticks {
                // Budget exhausted: final serving check on this runtime
                // (post-commit it already serves the newest output).
                if cfg.traffic_packets > 0 {
                    let replay_cfg = ReplayConfig::default()
                        .with_packets(cfg.traffic_packets)
                        .with_workers(cfg.workers)
                        .with_seed(cfg.health.seed ^ 0xf17a);
                    let replay = replay_compiled(&rt, &replay_cfg);
                    traffic_delivered += replay.delivered;
                    traffic_refused += replay.refused_epoch_mismatch;
                    mixed_epoch_exposure += replay.mixed_epoch_exposure;
                    worker_panics += replay.worker_panics;
                }
                let audit = rt.audit_switches();
                final_audit_clean = audit.clean();
                converged = healer.settled() && rt.epochs_coherent();
                snapshot = Some(Snapshot::capture(&rt));
            }
        }
        if committed {
            *current = staged
                .take()
                .expect("a committed generation always staged an output")
                .output;
        }
        if tick >= cfg.ticks {
            break 'generations;
        }
    }

    Ok(SelfHealOutcome {
        ticks: cfg.ticks,
        health: monitor.report(),
        remediations,
        recompiles,
        rollouts_committed,
        rollouts_rolled_back,
        restores,
        rate_limited_deferrals,
        mixed_epoch_exposure,
        worker_panics,
        traffic_delivered,
        traffic_refused,
        converged,
        final_audit_clean,
        diagnostics,
        elapsed: t0.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileRequest, SolveProfile};
    use lyra_topo::figure1_network;

    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {
                ipv4.dstAddr = conn_table[hash];
            }
        }
    "#;
    const LB_SCOPES: &str =
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

    fn lb_request() -> CompileRequest<'static> {
        CompileRequest::new(LB, LB_SCOPES, figure1_network())
            .with_solve_profile(SolveProfile::fast())
    }

    fn run_monitor(schedule: ChaosSchedule, target: Target, ticks: u64) -> HealthMonitor {
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        monitor.watch(target);
        let mut chaos = ChaosChannel::new(schedule, 7);
        for t in 1..=ticks {
            chaos.set_tick(t);
            monitor.tick(&mut chaos);
        }
        monitor
    }

    #[test]
    fn target_wire_round_trips_and_links_are_canonical() {
        assert_eq!(Target::link("B", "A"), Target::link("A", "B"));
        let link = Target::link("ToR3", "Agg3");
        assert_eq!(link.wire(), "Agg3~ToR3");
        assert_eq!(Target::from_wire("Agg3~ToR3"), link);
        assert_eq!(Target::from_wire("Agg3"), Target::switch("Agg3"));
    }

    #[test]
    fn clean_history_confirms_dead_after_three_misses() {
        let t = Target::switch("Agg3");
        let schedule = ChaosSchedule::new().kill(5, t.clone());
        let monitor = run_monitor(schedule.clone(), t.clone(), 7);
        assert_eq!(monitor.state(&t), Some(HealthState::Dead));
        // …but not before the third miss (hysteresis).
        let early = run_monitor(schedule, t.clone(), 6);
        assert_ne!(early.state(&t), Some(HealthState::Dead));
        let report = monitor.report();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0580")));
    }

    #[test]
    fn slow_target_confirms_gray_not_dead() {
        let t = Target::switch("Agg4");
        let schedule = ChaosSchedule::new().slow(1, 100, t.clone());
        let monitor = run_monitor(schedule, t.clone(), 20);
        assert_eq!(
            monitor.state(&t),
            Some(HealthState::Gray),
            "a slow-but-answering target is gray, never dead"
        );
        let report = monitor.report();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0581")));
    }

    #[test]
    fn lossy_target_becomes_faulted_deterministically() {
        let t = Target::switch("ToR3");
        let schedule = ChaosSchedule::new().lossy(1, 100, t.clone(), 0.5);
        let monitor = run_monitor(schedule, t.clone(), 40);
        let state = monitor.state(&t).unwrap();
        assert!(
            state.is_faulted(),
            "a 50%-lossy target must be confirmed faulted, got {}",
            state.name()
        );
    }

    #[test]
    fn flapping_target_is_quarantined() {
        let t = Target::link("Agg3", "ToR3");
        // Down 4 / up 4, eight times: the up phase is shorter than the
        // probation window, so the target can never be restored — and the
        // repeated down-edges drive the flap penalty over the limit.
        let schedule = ChaosSchedule::new().flap(3, t.clone(), 4, 8);
        let monitor = run_monitor(schedule, t.clone(), 70);
        assert_eq!(monitor.state(&t), Some(HealthState::Quarantined));
        let report = monitor.report();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0582")));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0583")));
    }

    #[test]
    fn dead_target_recovers_through_probation() {
        let t = Target::switch("Agg3");
        let schedule = ChaosSchedule::new()
            .kill(5, t.clone())
            .restore(12, t.clone());
        let mut monitor = HealthMonitor::new(HealthConfig::default());
        monitor.watch(t.clone());
        let mut chaos = ChaosChannel::new(schedule, 7);
        let mut restorable_at = None;
        for tick in 1..=40 {
            chaos.set_tick(tick);
            monitor.tick(&mut chaos);
            if restorable_at.is_none() && monitor.restorable().contains(&t) {
                restorable_at = Some(tick);
            }
        }
        let when = restorable_at.expect("target never became restorable");
        // Dead at ~7; clean from 12; probation after 8 clean; restorable
        // after 8 more — never before the full double window.
        assert!(when >= 12 + 16, "restorable too early, at tick {when}");
        monitor.mark_restored(&t);
        assert_eq!(monitor.state(&t), Some(HealthState::Healthy));
    }

    #[test]
    fn healer_rate_limits_and_coalesces() {
        let cfg = HealthConfig::default();
        let mut healer = SelfHealer::new(&cfg);
        assert!(matches!(healer.plan(1), PlanOutcome::Idle));
        healer.confirm(Target::switch("A"), 1);
        let plan = match healer.plan(1) {
            PlanOutcome::Go(p) => p,
            other => panic!("expected Go, got {other:?}"),
        };
        assert_eq!(plan.fail, vec![Target::switch("A")]);
        // The round fails: cooldown doubles (4 → 8).
        healer.complete(1, &plan, false);
        assert!(matches!(
            healer.plan(2),
            PlanOutcome::Deferred { first: true }
        ));
        // A second confirmation arrives while rate-limited…
        healer.confirm(Target::switch("B"), 3);
        assert!(matches!(
            healer.plan(4),
            PlanOutcome::Deferred { first: false }
        ));
        // …and coalesces into the next allowed round.
        let plan = match healer.plan(9) {
            PlanOutcome::Go(p) => p,
            other => panic!("expected Go after cooldown, got {other:?}"),
        };
        assert_eq!(plan.fail.len(), 2, "both confirmations in one round");
        assert_eq!(plan.tick_detected, Some(1), "earliest confirmation wins");
        healer.complete(9, &plan, true);
        assert!(healer.settled());
        assert!(matches!(healer.plan(10), PlanOutcome::Idle));
    }

    #[test]
    fn chaos_schedule_is_ground_truth() {
        let s = Target::switch("S");
        let sched = ChaosSchedule::new()
            .kill(10, s.clone())
            .restore(20, s.clone())
            .flap(30, s.clone(), 2, 2)
            .slow(50, 55, s.clone())
            .lossy(60, 65, s.clone(), 0.5);
        assert!(!sched.down_at(&s, 9));
        assert!(sched.down_at(&s, 10));
        assert!(sched.down_at(&s, 19));
        assert!(!sched.down_at(&s, 20));
        // Flap: down [30,32), up [32,34), down [34,36), up from 38.
        assert!(sched.down_at(&s, 30));
        assert!(!sched.down_at(&s, 32));
        assert!(sched.down_at(&s, 34));
        assert!(!sched.down_at(&s, 38));
        assert!(sched.slow_at(&s, 50) && !sched.slow_at(&s, 55));
        assert_eq!(sched.lossy_p_at(&s, 60), 0.5);
        assert_eq!(sched.lossy_p_at(&s, 65), 0.0);
    }

    #[test]
    fn chaos_channel_downs_links_when_an_endpoint_dies() {
        let sched = ChaosSchedule::new().kill(1, Target::switch("Agg3"));
        let mut ch = ChaosChannel::new(sched, 3);
        ch.set_tick(2);
        let probe = |ch: &mut ChaosChannel, wire: &str| {
            ch.transmit(&ControlMsg {
                switch: wire.into(),
                epoch: 0,
                token: 1,
                op: ControlOp::Probe,
            })
        };
        assert_eq!(probe(&mut ch, "Agg3"), Delivery::Dropped);
        assert_eq!(probe(&mut ch, "Agg3~ToR3"), Delivery::Dropped);
        assert_eq!(probe(&mut ch, "Agg4~ToR3"), Delivery::Delivered);
    }

    #[test]
    fn selfheal_detects_kills_and_remediates_once() {
        let compiler = Compiler::new();
        let req = lb_request();
        let entries: Vec<(String, u64, u64)> = (0..32)
            .map(|i| ("conn_table".to_string(), i, 100 + i))
            .collect();
        let schedule = ChaosSchedule::new().kill(5, Target::switch("Agg3"));
        let cfg = SelfHealConfig {
            ticks: 40,
            ..SelfHealConfig::default()
        };
        let outcome = run_selfheal(&compiler, &req, &entries, &schedule, &cfg).unwrap();
        assert!(outcome.converged, "loop did not converge: {outcome:?}");
        assert_eq!(
            outcome.recompiles, 1,
            "one confirmed kill must cost exactly one recompile"
        );
        assert_eq!(outcome.rollouts_committed, 1);
        assert!(outcome.final_audit_clean);
        let round = &outcome.remediations[0];
        assert!(round.committed);
        assert!(round.failed.contains(&"Agg3".to_string()));
        assert!(round.mttr_ticks().is_some());
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0584")));
        // The monitor's final view has the switch dead, and the healer's
        // fault set matches it.
        assert_eq!(
            outcome
                .health
                .targets
                .iter()
                .find(|t| t.target == Target::switch("Agg3"))
                .unwrap()
                .state,
            HealthState::Dead
        );
    }

    #[test]
    fn selfheal_restores_after_a_clean_probation() {
        let compiler = Compiler::new();
        let req = lb_request();
        let entries: Vec<(String, u64, u64)> = (0..16)
            .map(|i| ("conn_table".to_string(), i, 200 + i))
            .collect();
        let schedule = ChaosSchedule::new()
            .kill(5, Target::switch("Agg3"))
            .restore(12, Target::switch("Agg3"));
        let cfg = SelfHealConfig {
            ticks: 60,
            ..SelfHealConfig::default()
        };
        let outcome = run_selfheal(&compiler, &req, &entries, &schedule, &cfg).unwrap();
        assert!(outcome.converged, "loop did not converge");
        assert!(
            outcome.restores >= 1,
            "the revived switch was never restored"
        );
        assert!(outcome
            .diagnostics
            .iter()
            .any(|d| format!("{d}").contains("LYR0585")));
        // After restore, the switch is healthy again in the final view.
        assert_eq!(
            outcome
                .health
                .targets
                .iter()
                .find(|t| t.target == Target::switch("Agg3"))
                .unwrap()
                .state,
            HealthState::Healthy
        );
        // MTTR is reported for the kill round.
        assert!(outcome.remediations[0].mttr_ticks().is_some());
    }

    #[test]
    fn selfheal_is_deterministic_for_a_seed() {
        let compiler = Compiler::new();
        let req = lb_request();
        let entries = vec![("conn_table".to_string(), 1, 2)];
        let schedule = ChaosSchedule::new().kill(4, Target::switch("Agg3")).lossy(
            10,
            25,
            Target::switch("ToR3"),
            0.6,
        );
        let cfg = SelfHealConfig {
            ticks: 48,
            ..SelfHealConfig::default()
        };
        let fingerprint = |o: &SelfHealOutcome| {
            (
                o.recompiles,
                o.rollouts_committed,
                o.rollouts_rolled_back,
                o.restores,
                o.remediations
                    .iter()
                    .map(|r| (r.round, r.tick_started, r.tick_healed, r.committed))
                    .collect::<Vec<_>>(),
                o.health
                    .targets
                    .iter()
                    .map(|t| (t.target.wire(), t.state.name()))
                    .collect::<Vec<_>>(),
            )
        };
        let a = run_selfheal(&compiler, &req, &entries, &schedule, &cfg).unwrap();
        let b = run_selfheal(&compiler, &req, &entries, &schedule, &cfg).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn selfheal_serves_traffic_with_zero_mixed_epoch_exposure() {
        let compiler = Compiler::new();
        let req = lb_request();
        let entries: Vec<(String, u64, u64)> = (0..8)
            .map(|i| ("conn_table".to_string(), i, 300 + i))
            .collect();
        let schedule = ChaosSchedule::new().kill(5, Target::switch("Agg4"));
        let cfg = SelfHealConfig {
            ticks: 32,
            traffic_packets: 4_000,
            workers: 2,
            ..SelfHealConfig::default()
        };
        let outcome = run_selfheal(&compiler, &req, &entries, &schedule, &cfg).unwrap();
        assert!(outcome.converged);
        assert_eq!(
            outcome.mixed_epoch_exposure, 0,
            "mixed-epoch packets observed"
        );
        assert_eq!(outcome.worker_panics, 0);
        assert!(
            outcome.traffic_delivered > 0,
            "the healed plane served nothing"
        );
    }

    #[test]
    fn selfheal_outcome_serialises() {
        let compiler = Compiler::new();
        let req = lb_request();
        let schedule = ChaosSchedule::new().kill(3, Target::switch("Agg3"));
        let cfg = SelfHealConfig {
            ticks: 16,
            ..SelfHealConfig::default()
        };
        let outcome = run_selfheal(&compiler, &req, &[], &schedule, &cfg).unwrap();
        let json = outcome.to_json().to_pretty();
        for key in [
            "\"ticks\"",
            "\"health\"",
            "\"remediations\"",
            "\"mixed_epoch_exposure\"",
            "\"converged\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let parsed = lyra_diag::json::parse(&json).expect("session JSON must parse");
        assert!(parsed.get("health").is_some());
    }
}
