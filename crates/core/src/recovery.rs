//! Controller restart recovery and switch-state anti-entropy.
//!
//! The rollout engine ([`crate::rollout`]) keeps switches epoch-coherent
//! while the controller stays alive. This module makes the control plane
//! survive its *own* failures:
//!
//! * **Restart recovery** ([`Runtime::recover`]): after a controller
//!   crash mid-rollout (injected by a
//!   [`CrashPlan`](crate::rollout::CrashPlan), `LYR0570`), the restarted
//!   controller replays the write-ahead intent log, queries each switch's
//!   epoch and staged state over the control channel
//!   ([`ControlOp::Query`]), and drives the in-flight transaction to a
//!   deterministic **all-commit** or **all-rollback** outcome. Commit is
//!   driven only when the log proves it completable — a journaled commit
//!   decision *and* every switch answering with the staged (or already
//!   serving) epoch; anything less rolls back, reusing the journaled
//!   idempotency tokens so re-driven messages are duplicate-safe across
//!   the restart.
//! * **Anti-entropy** ([`Runtime::audit_switches`]): diffs
//!   controller-expected [`DataPlaneState`](lyra_ir::DataPlaneState)
//!   against switch-held state using per-table content digests,
//!   classifies drift ([`DriftKind`]: missing / extra / stale /
//!   stale-epoch), and issues minimal repair installs. Pair with
//!   [`crate::LiveTrafficPlane::resync`] to make repaired state
//!   immediately servable on the traffic plane.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use lyra_diag::json::{Object, Value};
use lyra_diag::{codes, Diagnostic};
use lyra_ir::ExternTable;

use crate::channel::{ControlChannel, ControlMsg, ControlOp, Rng};
use crate::fault::{DriftFinding, DriftKind, DriftOp};
use crate::rollout::{
    force_rollback, mint_token, send, IntentRecord, IntentStore, RolloutConfig, RolloutReport,
};
use crate::runtime::{Runtime, RuntimeError};
use crate::CompileOutput;

/// What one switch answered to a recovery state query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchProbe {
    /// The epoch the switch is serving.
    pub epoch: u64,
    /// The staged-but-uncommitted epoch it retains, if any.
    pub staged_epoch: Option<u64>,
    /// The retained prior epoch, if any (set after a commit until the
    /// rollout finalizes).
    pub prior_epoch: Option<u64>,
}

/// The outcome of one [`Runtime::recover`] pass.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// The in-flight epoch the recovery drove (0 when nothing was in
    /// flight).
    pub epoch: u64,
    /// The epoch a rollback restores (from the journal's `Begin` record).
    pub prior_epoch: u64,
    /// A crashed rollout was found (in the journal or on the switches).
    pub in_flight: bool,
    /// Recovery completed the commit: every switch serves [`Self::epoch`].
    pub committed: bool,
    /// Recovery rolled the in-flight epoch back everywhere (the epoch is
    /// burned, never reused).
    pub rolled_back: bool,
    /// Journal records replayed.
    pub replayed_records: usize,
    /// Switches queried over the channel.
    pub queried: u64,
    /// Queries that exhausted their retry budget (each forces the
    /// rollback outcome, `LYR0573`).
    pub query_failures: u64,
    /// Re-driven messages that reused a token journaled before the crash.
    pub reused_tokens: u64,
    /// Re-driven messages that needed a fresh token (allocated past every
    /// journaled token, so they can never collide).
    pub fresh_tokens: u64,
    /// Switches reverted out-of-band because even the recovery rollback
    /// budget was exhausted.
    pub forced_rollbacks: u64,
    /// Transmission attempts across queries and re-driven messages.
    pub messages_sent: u64,
    /// Retransmissions beyond the first attempt per logical message.
    pub retries: u64,
    /// Structured diagnostics (`LYR057x`), in occurrence order.
    pub diagnostics: Vec<Diagnostic>,
    /// End-to-end wall clock.
    pub elapsed: Duration,
}

impl RecoveryReport {
    /// Serialize for the CLI (`--recover` with `--emit-stats`).
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("epoch", Value::Number(self.epoch as f64));
        o.push("prior_epoch", Value::Number(self.prior_epoch as f64));
        o.push("in_flight", Value::Bool(self.in_flight));
        o.push("committed", Value::Bool(self.committed));
        o.push("rolled_back", Value::Bool(self.rolled_back));
        o.push(
            "replayed_records",
            Value::Number(self.replayed_records as f64),
        );
        o.push("queried", Value::Number(self.queried as f64));
        o.push("query_failures", Value::Number(self.query_failures as f64));
        o.push("reused_tokens", Value::Number(self.reused_tokens as f64));
        o.push("fresh_tokens", Value::Number(self.fresh_tokens as f64));
        o.push(
            "forced_rollbacks",
            Value::Number(self.forced_rollbacks as f64),
        );
        o.push("messages_sent", Value::Number(self.messages_sent as f64));
        o.push("retries", Value::Number(self.retries as f64));
        o.push("elapsed_us", Value::Number(self.elapsed.as_micros() as f64));
        o.push(
            "diagnostics",
            Value::Array(self.diagnostics.iter().map(|d| d.to_json()).collect()),
        );
        Value::Object(o)
    }
}

/// The outcome of one [`Runtime::audit_switches`] anti-entropy pass.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Live switches audited.
    pub switches_audited: u64,
    /// Per-table content digests compared (the cheap pass; only tables
    /// whose digests disagree are diffed key by key).
    pub digests_compared: u64,
    /// Every drifted entry / epoch tag found, in switch order.
    pub findings: Vec<DriftFinding>,
    /// Repairs issued (installs, removals, epoch-tag resets).
    pub repaired: u64,
    /// Switches that held at least one drifted entry — what a traffic
    /// plane must re-snapshot ([`crate::LiveTrafficPlane::resync`]).
    pub drifted_switches: Vec<String>,
    /// Structured diagnostics (`LYR0575` / `LYR0576`).
    pub diagnostics: Vec<Diagnostic>,
    /// End-to-end wall clock.
    pub elapsed: Duration,
}

impl AuditReport {
    /// True when switch-held state matched the controller's expectation
    /// everywhere.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Finding counts per drift class.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut c: BTreeMap<&'static str, usize> = BTreeMap::new();
        for f in &self.findings {
            *c.entry(f.kind.name()).or_default() += 1;
        }
        c
    }

    /// Serialize for the CLI (`--audit` with `--emit-stats`).
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push(
            "switches_audited",
            Value::Number(self.switches_audited as f64),
        );
        o.push(
            "digests_compared",
            Value::Number(self.digests_compared as f64),
        );
        o.push("repaired", Value::Number(self.repaired as f64));
        let mut counts = Object::new();
        for (k, v) in self.counts() {
            counts.push(k, Value::Number(v as f64));
        }
        o.push("drift", Value::Object(counts));
        o.push(
            "findings",
            Value::Array(
                self.findings
                    .iter()
                    .map(|f| {
                        let mut fo = Object::new();
                        fo.push("switch", Value::str(f.switch.clone()));
                        fo.push("table", Value::str(f.table.clone()));
                        fo.push("key", Value::Number(f.key as f64));
                        fo.push("kind", Value::str(f.kind.name()));
                        Value::Object(fo)
                    })
                    .collect(),
            ),
        );
        o.push("elapsed_us", Value::Number(self.elapsed.as_micros() as f64));
        Value::Object(o)
    }
}

/// FNV-1a content digest of one table shard — the cheap comparison the
/// audit runs before diffing a table key by key. Delegates to
/// [`ExternTable::digest`]; the generated control stubs'
/// `<t>_state_digest()` mirrors the same fold.
pub(crate) fn table_digest(entries: &ExternTable) -> u64 {
    entries.digest()
}

/// The token sequence number embedded in an idempotency token
/// (`(epoch << 32) | seq`).
fn token_seq(token: u64) -> u64 {
    token & 0xFFFF_FFFF
}

impl<'a> Runtime<'a> {
    /// Restart recovery: replay the write-ahead intent log, query every
    /// switch's epoch state over `channel`, and drive any in-flight
    /// rollout to a deterministic all-commit or all-rollback outcome.
    ///
    /// The decision rule is conservative and deterministic:
    ///
    /// * **Commit** only when the journal holds a commit decision for the
    ///   in-flight epoch *and* every target switch answered the state
    ///   query with that epoch staged or already serving. Re-driven
    ///   commits reuse the journaled tokens, so switches that applied
    ///   them before the crash acknowledge without re-applying.
    /// * **Rollback** otherwise — including when the only evidence of the
    ///   in-flight rollout is switch-held staged state (an empty or
    ///   missing journal never drives a commit). Rollback messages get
    ///   the engine's 4x budget with out-of-band revert as the last
    ///   resort, exactly like a live rollout.
    ///
    /// Controller-volatile knowledge is rebuilt rather than trusted: the
    /// epoch allocator is restored past every journaled epoch, so burned
    /// epochs stay burned across the restart. Calling `recover` when
    /// nothing is in flight (or twice in a row) is a safe no-op.
    ///
    /// `new_output` is the compilation the crashed rollout was applying
    /// (the restarted controller re-derives it; a commit outcome flips
    /// the runtime to it, a rollback leaves the prior output serving).
    pub fn recover(
        &mut self,
        new_output: &'a CompileOutput,
        store: &mut dyn IntentStore,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
    ) -> Result<RecoveryReport, RuntimeError> {
        let t0 = Instant::now();
        let records = store.load()?;
        let mut report = RecoveryReport {
            replayed_records: records.len(),
            ..Default::default()
        };

        // Burned epochs stay burned: restore the allocator past every
        // journaled epoch before anything else.
        let max_logged = records.iter().map(|r| r.epoch()).max().unwrap_or(0);
        self.epoch_counter = self.epoch_counter.max(max_logged);

        // Replay the journal: the in-flight rollout is the last `Begin`
        // without a matching `End`; collect its decision and tokens.
        let mut inflight: Option<(u64, u64, Vec<String>)> = None;
        let mut decision: Option<bool> = None;
        let mut logged_tokens: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut max_seq = 0u64;
        for rec in &records {
            match rec {
                IntentRecord::Begin {
                    epoch,
                    prior_epoch,
                    targets,
                } => {
                    inflight = Some((*epoch, *prior_epoch, targets.clone()));
                    decision = None;
                    logged_tokens.clear();
                    max_seq = 0;
                }
                IntentRecord::Sent {
                    epoch,
                    switch,
                    token,
                    op,
                } => {
                    if inflight.as_ref().is_some_and(|(e, ..)| e == epoch) {
                        logged_tokens.insert((switch.clone(), op.clone()), *token);
                        max_seq = max_seq.max(token_seq(*token));
                    }
                }
                IntentRecord::Decision { epoch, commit } => {
                    if inflight.as_ref().is_some_and(|(e, ..)| e == epoch) {
                        decision = Some(*commit);
                    }
                }
                IntentRecord::End { epoch, .. } => {
                    if inflight.as_ref().is_some_and(|(e, ..)| e == epoch) {
                        inflight = None;
                    }
                }
            }
        }

        // No journal evidence? The switches themselves may still hold an
        // in-flight rollout (a crash with no intent store attached): any
        // staged or off-epoch state names the epoch to roll back. Commit
        // is never driven without a journaled decision.
        let (epoch, prior_epoch, targets, from_log) = match inflight {
            Some((e, p, t)) => (e, p, t, true),
            None => {
                let stray = self
                    .states
                    .values()
                    .flat_map(|st| {
                        let staged = st.staged.as_ref().map(|(e, _)| *e);
                        [
                            Some(st.epoch).filter(|e| *e != self.epoch),
                            staged.filter(|e| *e > self.epoch),
                        ]
                    })
                    .flatten()
                    .max();
                match stray {
                    None => {
                        // Nothing in flight anywhere: drop any leftover
                        // tokens and report the no-op.
                        for st in self.states.values_mut() {
                            st.tokens.clear();
                        }
                        report.elapsed = t0.elapsed();
                        return Ok(report);
                    }
                    Some(e) => (e, self.epoch, self.states.keys().cloned().collect(), false),
                }
            }
        };
        self.epoch_counter = self.epoch_counter.max(epoch);
        report.epoch = epoch;
        report.prior_epoch = prior_epoch;
        report.in_flight = true;

        let mut rng = Rng::new(config.seed ^ epoch.rotate_left(23) ^ 0x5eed_c0de);
        let mut seq = max_seq;
        let mut scratch = RolloutReport::default();

        // Query every target switch's epoch state over the channel.
        let mut probes: BTreeMap<String, Option<SwitchProbe>> = BTreeMap::new();
        for sw in &targets {
            if !self.states.contains_key(sw) {
                // The switch is gone (died after the crash); it cannot
                // confirm anything, which forces the rollback outcome.
                report.query_failures += 1;
                probes.insert(sw.clone(), None);
                continue;
            }
            seq += 1;
            let msg = ControlMsg {
                switch: sw.clone(),
                epoch,
                token: mint_token(epoch, seq)?,
                op: ControlOp::Query,
            };
            report.queried += 1;
            let ok = send(
                &mut self.states,
                channel,
                &msg,
                config.max_attempts,
                config,
                &mut rng,
                &mut scratch,
            );
            if ok {
                let probe = self.states.get(sw).map(|st| SwitchProbe {
                    epoch: st.epoch,
                    staged_epoch: st.staged.as_ref().map(|(e, _)| *e),
                    prior_epoch: st.prior.as_ref().map(|(e, _)| *e),
                });
                probes.insert(sw.clone(), probe);
            } else {
                report.query_failures += 1;
                probes.insert(sw.clone(), None);
                report.diagnostics.push(Diagnostic::warning(
                    codes::RECOVERY_QUERY_FAILED,
                    format!(
                        "switch `{sw}` did not answer the recovery state query within \
                         {} attempts; its state is unknown, forcing rollback",
                        config.max_attempts
                    ),
                ));
            }
        }

        // Deterministic outcome: commit only when provably completable.
        let can_commit = from_log
            && decision == Some(true)
            && targets.iter().all(|sw| {
                probes
                    .get(sw)
                    .and_then(|p| *p)
                    .is_some_and(|p| p.epoch == epoch || p.staged_epoch == Some(epoch))
            });

        let mut commit_failed = false;
        if can_commit {
            for sw in &targets {
                if self.states.get(sw).is_some_and(|st| st.epoch == epoch) {
                    continue; // already flipped before the crash
                }
                let reused = logged_tokens.get(&(sw.clone(), "commit".to_string()));
                let token = match reused {
                    Some(&t) => {
                        report.reused_tokens += 1;
                        t
                    }
                    None => {
                        seq += 1;
                        report.fresh_tokens += 1;
                        mint_token(epoch, seq)?
                    }
                };
                let msg = ControlMsg {
                    switch: sw.clone(),
                    epoch,
                    token,
                    op: ControlOp::Commit,
                };
                // Write-ahead even while recovering: a second crash must
                // find these tokens too.
                store.append(&IntentRecord::Sent {
                    epoch,
                    switch: sw.clone(),
                    token,
                    op: "commit".to_string(),
                })?;
                if !send(
                    &mut self.states,
                    channel,
                    &msg,
                    config.max_attempts,
                    config,
                    &mut rng,
                    &mut scratch,
                ) {
                    commit_failed = true;
                    break;
                }
            }
            // A reused token may have been consumed without a flip (the
            // switch recorded it but never staged); verify before
            // finalizing — anything short of all-flipped rolls back.
            let all_flipped = !commit_failed
                && targets
                    .iter()
                    .all(|sw| self.states.get(sw).is_none_or(|st| st.epoch == epoch));
            if all_flipped {
                for st in self.states.values_mut() {
                    st.staged = None;
                    st.prior = None;
                    st.tokens.clear();
                }
                self.epoch = epoch;
                self.output = new_output;
                report.committed = true;
                report.diagnostics.push(Diagnostic::warning(
                    codes::RECOVERY_COMMITTED,
                    format!(
                        "restart recovery completed the in-flight rollout: epoch {epoch} \
                         committed on every switch"
                    ),
                ));
                store.append(&IntentRecord::End {
                    epoch,
                    committed: true,
                })?;
                self.refresh_expected();
                report.messages_sent = scratch.messages_sent;
                report.retries = scratch.retries;
                report.elapsed = t0.elapsed();
                return Ok(report);
            }
        }

        // Rollback: revert every target to the prior epoch, reusing
        // journaled rollback tokens where the crashed controller had
        // already issued them.
        for sw in &targets {
            let Some(_) = self.states.get(sw) else {
                continue; // gone: nothing to revert
            };
            let reused = logged_tokens.get(&(sw.clone(), "rollback".to_string()));
            let token = match reused {
                Some(&t) => {
                    report.reused_tokens += 1;
                    t
                }
                None => {
                    seq += 1;
                    report.fresh_tokens += 1;
                    mint_token(epoch, seq)?
                }
            };
            let msg = ControlMsg {
                switch: sw.clone(),
                epoch,
                token,
                op: ControlOp::Rollback,
            };
            store.append(&IntentRecord::Sent {
                epoch,
                switch: sw.clone(),
                token,
                op: "rollback".to_string(),
            })?;
            if !send(
                &mut self.states,
                channel,
                &msg,
                config.max_attempts.saturating_mul(4),
                config,
                &mut rng,
                &mut scratch,
            ) {
                if let Some(st) = self.states.get_mut(sw) {
                    force_rollback(st, epoch);
                }
                report.forced_rollbacks += 1;
                report.diagnostics.push(Diagnostic::warning(
                    codes::ROLLOUT_CHANNEL_EXHAUSTED,
                    format!(
                        "recovery rollback of `{sw}` exhausted the control channel \
                         ({} attempts); reverted out-of-band",
                        config.max_attempts.saturating_mul(4)
                    ),
                ));
            }
        }
        // Finalize sweep, exactly like a live rollout: drop every
        // staged/prior remnant (including ones from older crashed
        // attempts the targeted rollback cannot name) and all tokens.
        for st in self.states.values_mut() {
            if st.epoch == epoch {
                force_rollback(st, epoch);
            }
            st.staged = None;
            st.prior = None;
            st.tokens.clear();
            debug_assert_eq!(
                st.epoch, prior_epoch,
                "recovery rollback must restore the prior epoch"
            );
        }
        self.epoch = prior_epoch;
        report.rolled_back = true;
        report.diagnostics.push(
            Diagnostic::warning(
                codes::RECOVERY_ROLLED_BACK,
                format!(
                    "restart recovery rolled the in-flight rollout back; epoch \
                     {prior_epoch} is serving on every switch"
                ),
            )
            .with_note("the burned epoch is never reused; retry allocates a fresh one"),
        );
        if commit_failed || (from_log && decision == Some(true) && !can_commit) {
            // The commit had been decided but could not be proven or
            // completed — say why the conservative outcome won.
            report.diagnostics.push(Diagnostic::warning(
                codes::RECOVERY_ROLLED_BACK,
                "a journaled commit decision could not be completed (unreachable or \
                 unconfirmed switches); rolled back to preserve all-or-nothing"
                    .to_string(),
            ));
        }
        store.append(&IntentRecord::End {
            epoch,
            committed: false,
        })?;
        self.refresh_expected();
        report.messages_sent = scratch.messages_sent;
        report.retries = scratch.retries;
        report.elapsed = t0.elapsed();
        Ok(report)
    }

    /// Anti-entropy reconciliation: diff controller-expected state
    /// against switch-held state and repair the drift in place.
    ///
    /// Per live switch, per extern table, a content digest of the
    /// expected and held shards is compared; only tables whose digests
    /// disagree are diffed key by key. Every divergence is classified
    /// ([`DriftKind`]) and repaired minimally — missing entries
    /// re-installed, foreign entries removed, stale values overwritten,
    /// regressed epoch tags reset. Globals are traffic-mutable and out
    /// of scope; extern tables are control-plane-owned ground truth.
    ///
    /// The repairs touch only runtime switch state. When a
    /// [`crate::LiveTrafficPlane`] is serving this runtime, pass
    /// [`AuditReport::drifted_switches`] to
    /// [`crate::LiveTrafficPlane::resync`] so repaired state is
    /// immediately servable.
    pub fn audit_switches(&mut self) -> AuditReport {
        let t0 = Instant::now();
        let mut report = AuditReport::default();
        let deployment_epoch = self.epoch;
        let empty = ExternTable::new();
        for (sw, st) in self.states.iter_mut() {
            report.switches_audited += 1;
            let before = report.findings.len();
            // Epoch-tag drift first: a regressed switch is reset to the
            // deployment epoch (its entries are repaired below anyway).
            if st.epoch != deployment_epoch {
                report.findings.push(DriftFinding {
                    switch: sw.clone(),
                    table: String::new(),
                    key: 0,
                    kind: DriftKind::StaleEpoch,
                    expected: Some(deployment_epoch),
                    found: Some(st.epoch),
                });
                st.epoch = deployment_epoch;
                st.staged = None;
                st.prior = None;
                report.repaired += 1;
            }
            let expected = self.expected.get(sw);
            let exp_tables = expected.map(|dp| &dp.externs);
            let table_names: BTreeSet<String> = exp_tables
                .into_iter()
                .flat_map(|t| t.keys().cloned())
                .chain(st.dp.externs.keys().cloned())
                .collect();
            for table in &table_names {
                let exp = exp_tables.and_then(|t| t.get(table)).unwrap_or(&empty);
                let held = st.dp.externs.get(table).unwrap_or(&empty);
                report.digests_compared += 1;
                if table_digest(exp) == table_digest(held) {
                    continue;
                }
                // Digest mismatch: structural diff of the shard —
                // O(pages + drifted entries) when expected and held state
                // still share pages, never worse than one sorted merge —
                // and collect the minimal repair set.
                let mut repairs: Vec<(u64, Option<u64>)> = Vec::new();
                exp.for_each_delta(held, |k, expect, found| {
                    let kind = match (expect, found) {
                        (Some(_), None) => DriftKind::Missing,
                        (None, Some(_)) => DriftKind::Extra,
                        (Some(_), Some(_)) => DriftKind::Stale,
                        (None, None) => return,
                    };
                    report.findings.push(DriftFinding {
                        switch: sw.clone(),
                        table: table.clone(),
                        key: k,
                        kind,
                        expected: expect,
                        found,
                    });
                    repairs.push((k, expect));
                });
                let shard = st.dp.externs.entry(table.clone()).or_default();
                for (k, v) in repairs {
                    match v {
                        Some(v) => {
                            shard.insert(k, v);
                        }
                        None => {
                            shard.remove(k);
                        }
                    }
                    report.repaired += 1;
                }
            }
            if report.findings.len() > before {
                report.drifted_switches.push(sw.clone());
            }
        }
        // A repaired switch's page structure no longer matches the
        // controller's retained base: its next prepare falls back to a
        // full snapshot instead of a delta.
        self.needs_snapshot
            .extend(report.drifted_switches.iter().cloned());
        if !report.findings.is_empty() {
            let counts = report
                .counts()
                .into_iter()
                .map(|(k, v)| format!("{v} {k}"))
                .collect::<Vec<_>>()
                .join(", ");
            report.diagnostics.push(Diagnostic::warning(
                codes::DRIFT_DETECTED,
                format!(
                    "anti-entropy audit found {} drifted entries across {} switches ({counts})",
                    report.findings.len(),
                    report.drifted_switches.len()
                ),
            ));
            report.diagnostics.push(Diagnostic::warning(
                codes::DRIFT_REPAIRED,
                format!(
                    "issued {} minimal repairs; switch-held state matches the \
                     controller-expected state again",
                    report.repaired
                ),
            ));
        }
        report.elapsed = t0.elapsed();
        report
    }

    /// Corrupt switch-held state behind the controller's back — the
    /// seeded drift the anti-entropy audit exists to catch. Test-facing:
    /// a real deployment drifts on its own.
    pub fn inject_drift(&mut self, switch: &str, op: &DriftOp) -> Result<(), RuntimeError> {
        let st = self
            .states
            .get_mut(switch)
            .ok_or_else(|| RuntimeError::new(format!("unknown or failed switch `{switch}`")))?;
        match op {
            DriftOp::Remove { table, key } => {
                st.dp
                    .externs
                    .get_mut(table)
                    .and_then(|t| t.remove(*key))
                    .ok_or_else(|| {
                        RuntimeError::new(format!(
                            "switch `{switch}` holds no `{table}[{key}]` to remove"
                        ))
                    })?;
            }
            DriftOp::Corrupt { table, key, value } => {
                let shard = st
                    .dp
                    .externs
                    .get_mut(table)
                    .filter(|t| t.contains_key(*key))
                    .ok_or_else(|| {
                        RuntimeError::new(format!(
                            "switch `{switch}` holds no `{table}[{key}]` to corrupt"
                        ))
                    })?;
                shard.insert(*key, *value);
            }
            DriftOp::Insert { table, key, value } => {
                st.dp.install(table, *key, *value);
            }
            DriftOp::RegressEpoch => {
                st.epoch = st.epoch.saturating_sub(1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{LossyChannel, ReliableChannel};
    use crate::rollout::{CrashPlan, CrashPoint, MemIntentStore};
    use crate::{CompileRequest, Compiler, SolveProfile};
    use lyra_ir::PacketState;
    use lyra_topo::{figure1_network, FaultSet};

    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            if (flow_h in conn_table) {
                ipv4.dstAddr = conn_table[flow_h];
            } else {
                copy_to_cpu();
            }
        }
    "#;
    const LB_SCOPES: &str =
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

    fn lb_request() -> CompileRequest<'static> {
        CompileRequest::new(LB, LB_SCOPES, figure1_network())
            .with_solve_profile(SolveProfile::fast())
    }

    fn crashed_rollout<'a>(
        rt: &mut Runtime<'a>,
        new_output: &'a CompileOutput,
        store: &mut MemIntentStore,
        plan: CrashPlan,
    ) -> RuntimeError {
        let config = RolloutConfig::default().with_crash(plan);
        rt.apply_rollout_logged(new_output, &mut ReliableChannel::new(), &config, store)
            .unwrap_err()
    }

    #[test]
    fn crash_after_commit_decision_recovers_to_commit() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 42, 0xabcd).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let mut store = MemIntentStore::new();
        let err = crashed_rollout(
            &mut rt,
            &r.output,
            &mut store,
            CrashPlan::at(CrashPoint::AfterCommitDecision),
        );
        assert_eq!(err.code, Some(codes::CONTROLLER_CRASHED));
        assert!(!rt.epochs_coherent(), "crash must leave mid-flight state");

        let rep = rt
            .recover(
                &r.output,
                &mut store,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(
            rep.in_flight && rep.committed && !rep.rolled_back,
            "{rep:?}"
        );
        assert!(rt.epochs_coherent());
        assert_eq!(rt.epoch(), rep.epoch);
        assert!(std::ptr::eq(rt.output(), &r.output), "output must flip");
        // The logical entry survived the recovered commit.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        let (end, _) = rt.inject(&["Agg4", "ToR3"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0xabcd);
        // Recovery is idempotent: a second pass is a no-op.
        let rep2 = rt
            .recover(
                &r.output,
                &mut store,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(!rep2.in_flight && !rep2.committed && !rep2.rolled_back);
    }

    #[test]
    fn crash_before_commit_decision_recovers_to_rollback() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 7, 0x0a00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        let entries_before = rt.logical_entries();
        let mut store = MemIntentStore::new();
        // Crash after every prepare is staged but before the commit
        // decision is journaled: the log cannot prove a commit.
        let err = crashed_rollout(
            &mut rt,
            &r.output,
            &mut store,
            CrashPlan::at(CrashPoint::AfterPrepare),
        );
        assert_eq!(err.code, Some(codes::CONTROLLER_CRASHED));

        let rep = rt
            .recover(
                &r.output,
                &mut store,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(
            rep.in_flight && rep.rolled_back && !rep.committed,
            "{rep:?}"
        );
        assert_eq!(rt.epoch(), epoch_before);
        assert!(rt.epochs_coherent());
        assert_eq!(rt.logical_entries(), entries_before);
        assert!(
            std::ptr::eq(rt.output(), &prior),
            "rollback keeps the old output"
        );
        // The burned epoch is never reused after recovery.
        let report = rt
            .apply_rollout(
                &r.output,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(report.committed);
        assert!(report.epoch > rep.epoch, "recovered epoch must stay burned");
    }

    #[test]
    fn commit_decision_with_unreachable_switch_rolls_back() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 9, 0x0b00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        let mut store = MemIntentStore::new();
        let err = crashed_rollout(
            &mut rt,
            &r.output,
            &mut store,
            CrashPlan::at(CrashPoint::AfterCommitDecision),
        );
        assert_eq!(err.code, Some(codes::CONTROLLER_CRASHED));

        // The first target dies before recovery can query it: the
        // journaled commit decision cannot be proven, so rollback wins.
        let mut chan = LossyChannel::new(11).with_switch_death("Agg4", 0);
        let rep = rt
            .recover(&r.output, &mut store, &mut chan, &RolloutConfig::default())
            .unwrap();
        assert!(rep.rolled_back && !rep.committed, "{rep:?}");
        assert!(rep.query_failures >= 1);
        assert!(
            rep.forced_rollbacks >= 1 || rep.rolled_back,
            "the dead switch reverts out-of-band: {rep:?}"
        );
        assert_eq!(rt.epoch(), epoch_before);
        assert!(rt.epochs_coherent());
        assert!(rep
            .diagnostics
            .iter()
            .any(|d| d.code == Some(codes::RECOVERY_QUERY_FAILED)));
    }

    #[test]
    fn recovery_without_a_journal_rolls_back_from_switch_state() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 3, 0x0c00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        // Crash with NO intent store attached: only the switches remember.
        let config = RolloutConfig::default().with_crash(CrashPlan::at(CrashPoint::BeforeFinalize));
        let err = rt
            .apply_rollout(&r.output, &mut ReliableChannel::new(), &config)
            .unwrap_err();
        assert_eq!(err.code, Some(codes::CONTROLLER_CRASHED));

        // An empty journal never drives a commit, even though every
        // switch already flipped — conservative all-rollback.
        let mut empty = MemIntentStore::new();
        let rep = rt
            .recover(
                &r.output,
                &mut empty,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(rep.in_flight && rep.rolled_back, "{rep:?}");
        assert_eq!(rt.epoch(), epoch_before);
        assert!(rt.epochs_coherent());
    }

    #[test]
    fn failing_intent_store_halts_the_rollout_like_a_crash() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 5, 0x0d00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        // The third append (the commit decision) fails: the journal ends
        // with a staged prepare and no decision, so recovery rolls back.
        let mut store = MemIntentStore::failing_after(2);
        let err = rt
            .apply_rollout_logged(
                &r.output,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
                &mut store,
            )
            .unwrap_err();
        assert_eq!(err.code, Some(codes::INTENT_STORE_IO));

        // The partial journal still recovers the deployment.
        let mut readable = MemIntentStore::new();
        for rec in store.load().unwrap() {
            readable.append(&rec).unwrap();
        }
        let rep = rt
            .recover(
                &r.output,
                &mut readable,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(rep.rolled_back, "{rep:?}");
        assert_eq!(rt.epoch(), epoch_before);
        assert!(rt.epochs_coherent());
    }

    #[test]
    fn audit_detects_and_repairs_every_drift_class() {
        let compiler = Compiler::new();
        let req = lb_request();
        let out = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&out);
        let on = rt.install("conn_table", 1, 100).unwrap();
        rt.install("conn_table", 2, 200).unwrap();
        let victim = on[0].clone();

        rt.inject_drift(
            &victim,
            &DriftOp::Remove {
                table: "conn_table".into(),
                key: 1,
            },
        )
        .unwrap();
        rt.inject_drift(
            &victim,
            &DriftOp::Insert {
                table: "conn_table".into(),
                key: 999,
                value: 7,
            },
        )
        .unwrap();
        // Corrupt key 2 wherever it lives.
        let holder = rt
            .states
            .iter()
            .find(|(_, st)| {
                st.dp
                    .externs
                    .get("conn_table")
                    .is_some_and(|t| t.contains_key(2))
            })
            .map(|(sw, _)| sw.clone())
            .unwrap();
        rt.inject_drift(
            &holder,
            &DriftOp::Corrupt {
                table: "conn_table".into(),
                key: 2,
                value: 555,
            },
        )
        .unwrap();

        let report = rt.audit_switches();
        let counts = report.counts();
        assert_eq!(counts.get("missing"), Some(&1), "{report:?}");
        assert_eq!(counts.get("extra"), Some(&1), "{report:?}");
        assert_eq!(counts.get("stale"), Some(&1), "{report:?}");
        assert!(report.repaired >= 3);
        assert!(!report.drifted_switches.is_empty());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Some(codes::DRIFT_DETECTED)));

        // Repaired: a second audit is clean and the semantics are back.
        let again = rt.audit_switches();
        assert!(again.clean(), "{again:?}");
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 1);
        let (end, _) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 100);
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 999);
        let (_, effects) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert!(
            effects.iter().any(
                |e| matches!(e, lyra_ir::Effect::Action { name, .. } if name == "copy_to_cpu")
            ),
            "the foreign entry must be gone: {effects:?}"
        );
    }

    #[test]
    fn audit_resets_a_regressed_epoch_tag() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 4, 44).unwrap();
        rt.fail_switch("Agg3").unwrap(); // bumps the epoch past zero
        assert!(rt.epoch() > 0);
        rt.inject_drift("Agg4", &DriftOp::RegressEpoch).unwrap();
        assert!(!rt.epochs_coherent());

        let report = rt.audit_switches();
        assert_eq!(report.counts().get("stale-epoch"), Some(&1), "{report:?}");
        assert!(rt.epochs_coherent(), "audit must restore coherence");
    }

    #[test]
    fn clean_deployment_audits_clean() {
        let compiler = Compiler::new();
        let req = lb_request();
        let out = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&out);
        for k in 0..32 {
            rt.install("conn_table", k, k * 10).unwrap();
        }
        let report = rt.audit_switches();
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.repaired, 0);
        assert!(report.diagnostics.is_empty());
        assert!(report.digests_compared > 0);
    }

    #[test]
    fn recovery_report_json_names_the_counters() {
        let rep = RecoveryReport {
            epoch: 5,
            in_flight: true,
            committed: true,
            queried: 3,
            reused_tokens: 2,
            ..Default::default()
        };
        let json = rep.to_json().to_pretty();
        for key in [
            "\"epoch\"",
            "\"in_flight\"",
            "\"committed\"",
            "\"rolled_back\"",
            "\"queried\"",
            "\"reused_tokens\"",
            "\"fresh_tokens\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
