//! Failover recompilation: recompile a previously-working deployment onto
//! the surviving network after switch or link failures.
//!
//! The entry point is [`Compiler::recompile_for_faults`]: given the
//! original [`CompileRequest`], its successful [`CompileOutput`], and a
//! [`FaultSet`], it degrades the topology, checks each algorithm scope's
//! survivability ([`scope_health`]), and recompiles against the survivors
//! seeded with the prior placement — so instructions on healthy switches
//! tend to stay put and the churn the control plane must push is minimal.
//! The result carries a [`PlacementDiff`] naming exactly that churn.

use std::collections::BTreeMap;

use lyra_diag::{codes, Diagnostic};
use lyra_ir::InstrId;
use lyra_synth::Placement;
use lyra_topo::{scope_health, DegradeReport, FaultSet, ScopeHealth};

use crate::{CompileError, CompileOutput, CompileRequest, Compiler, SCOPES_SOURCE};

/// How one switch-held table entry (or epoch tag) diverged from the
/// controller-expected state — the drift classes the anti-entropy audit
/// ([`crate::Runtime::audit_switches`]) detects and repairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The controller expects the entry; the switch lost it (bit rot,
    /// reboot from stale flash, an operator delete behind the
    /// controller's back).
    Missing,
    /// The switch holds an entry the controller never installed.
    Extra,
    /// The entry exists on both sides with different values (a stale
    /// value from an earlier epoch that never got overwritten).
    Stale,
    /// The switch's epoch tag regressed from the deployment epoch (a
    /// reboot into an old image); its whole shard is suspect.
    StaleEpoch,
}

impl DriftKind {
    /// Stable name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            DriftKind::Missing => "missing",
            DriftKind::Extra => "extra",
            DriftKind::Stale => "stale",
            DriftKind::StaleEpoch => "stale-epoch",
        }
    }
}

/// One drifted entry (or epoch tag) found by the anti-entropy audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriftFinding {
    /// The switch whose held state diverged.
    pub switch: String,
    /// The extern table the entry belongs to (empty for
    /// [`DriftKind::StaleEpoch`], which is per-switch).
    pub table: String,
    /// The drifted key (0 for [`DriftKind::StaleEpoch`]).
    pub key: u64,
    /// How it diverged.
    pub kind: DriftKind,
    /// The value the controller expects (`None` for
    /// [`DriftKind::Extra`]).
    pub expected: Option<u64>,
    /// The value the switch holds (`None` for [`DriftKind::Missing`]).
    pub found: Option<u64>,
}

/// A deliberate switch-state corruption, for seeding drift in audit
/// tests and `lyrac --audit-drift` demonstrations. Applied behind the
/// controller's back with [`crate::Runtime::inject_drift`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftOp {
    /// Silently delete an entry the controller installed.
    Remove {
        /// Table to corrupt.
        table: String,
        /// Key to delete.
        key: u64,
    },
    /// Overwrite an installed entry's value.
    Corrupt {
        /// Table to corrupt.
        table: String,
        /// Key whose value to overwrite.
        key: u64,
        /// The wrong value.
        value: u64,
    },
    /// Insert an entry the controller never installed.
    Insert {
        /// Table to pollute.
        table: String,
        /// The foreign key.
        key: u64,
        /// Its value.
        value: u64,
    },
    /// Regress the switch's epoch tag (simulates a reboot into an old
    /// image).
    RegressEpoch,
}

/// One extern whose shard layout changed between two placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternShardChange {
    /// Switch whose hosted entry count changed.
    pub switch: String,
    /// Entries hosted before the fault (0 = not hosted).
    pub before: u64,
    /// Entries hosted after failover recompilation (0 = evicted).
    pub after: u64,
}

/// The churn between a prior placement and its failover recompilation:
/// which instructions each switch gained or lost, and which extern tables
/// were re-sharded. This is what a control plane must push to converge the
/// network onto the new placement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlacementDiff {
    /// Switch → algorithm → instructions newly deployed there.
    pub added: BTreeMap<String, BTreeMap<String, Vec<InstrId>>>,
    /// Switch → algorithm → instructions no longer deployed there (includes
    /// everything that was on a failed switch).
    pub removed: BTreeMap<String, BTreeMap<String, Vec<InstrId>>>,
    /// Extern name → per-switch entry-count changes.
    pub resharded: BTreeMap<String, Vec<ExternShardChange>>,
}

impl PlacementDiff {
    /// Diff two placements (instruction deployment and extern sharding).
    pub fn between(prior: &Placement, new: &Placement) -> Self {
        let mut diff = PlacementDiff::default();
        let switches: std::collections::BTreeSet<&String> =
            prior.switches.keys().chain(new.switches.keys()).collect();
        for &sw in &switches {
            let old_plan = prior.switches.get(sw);
            let new_plan = new.switches.get(sw);
            let algs: std::collections::BTreeSet<&String> = old_plan
                .iter()
                .flat_map(|p| p.instrs.keys())
                .chain(new_plan.iter().flat_map(|p| p.instrs.keys()))
                .collect();
            for &alg in &algs {
                let olds: std::collections::BTreeSet<InstrId> = old_plan
                    .and_then(|p| p.instrs.get(alg))
                    .map(|is| is.iter().copied().collect())
                    .unwrap_or_default();
                let news: std::collections::BTreeSet<InstrId> = new_plan
                    .and_then(|p| p.instrs.get(alg))
                    .map(|is| is.iter().copied().collect())
                    .unwrap_or_default();
                let added: Vec<InstrId> = news.difference(&olds).copied().collect();
                let removed: Vec<InstrId> = olds.difference(&news).copied().collect();
                if !added.is_empty() {
                    diff.added
                        .entry(sw.clone())
                        .or_default()
                        .insert(alg.clone(), added);
                }
                if !removed.is_empty() {
                    diff.removed
                        .entry(sw.clone())
                        .or_default()
                        .insert(alg.clone(), removed);
                }
            }
            // Extern sharding changes on this switch.
            let externs: std::collections::BTreeSet<&String> = old_plan
                .iter()
                .flat_map(|p| p.extern_entries.keys())
                .chain(new_plan.iter().flat_map(|p| p.extern_entries.keys()))
                .collect();
            for &e in &externs {
                let before = old_plan
                    .and_then(|p| p.extern_entries.get(e))
                    .copied()
                    .unwrap_or(0);
                let after = new_plan
                    .and_then(|p| p.extern_entries.get(e))
                    .copied()
                    .unwrap_or(0);
                if before != after {
                    diff.resharded
                        .entry(e.clone())
                        .or_default()
                        .push(ExternShardChange {
                            switch: sw.clone(),
                            before,
                            after,
                        });
                }
            }
        }
        diff
    }

    /// True when the new placement is identical to the prior one.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.resharded.is_empty()
    }

    /// Total instructions that changed host (added plus removed across all
    /// switches) — the headline churn number.
    pub fn total_churn(&self) -> usize {
        self.added
            .values()
            .chain(self.removed.values())
            .flat_map(|per_alg| per_alg.values())
            .map(|is| is.len())
            .sum()
    }

    /// Total table entries the re-shard moves: the sum of per-switch entry
    /// count deltas across every re-sharded extern. This is the number a
    /// delta rollout's wire traffic scales with, so the incremental solver
    /// hints exist to keep it proportional to what the fault destroyed —
    /// not the fleet's total entry count.
    pub fn entry_churn(&self) -> u64 {
        self.resharded
            .values()
            .flatten()
            .map(|c| c.before.abs_diff(c.after))
            .sum()
    }
}

/// A successful failover recompilation.
#[derive(Debug)]
pub struct FaultRecompile {
    /// The new compilation, against the surviving topology. Its
    /// [`CompileOutput::degraded`] field reports any watchdog fallback, as
    /// for a normal compile.
    pub output: CompileOutput,
    /// Churn between the prior placement and the new one.
    pub diff: PlacementDiff,
    /// What the fault set did to the topology (survivor network, removed
    /// elements, connected components).
    pub report: DegradeReport,
    /// Per-algorithm scope survivability under the fault set (every entry
    /// is survivable, or the recompile would have failed).
    pub scope_health: BTreeMap<String, ScopeHealth>,
}

impl Compiler {
    /// Recompile `req` (which previously produced `prior`) onto the network
    /// surviving `faults`, seeded with the prior placement so healthy
    /// switches keep their code wherever the constraints still allow.
    ///
    /// Fails with [`CompileError::Scope`] when the fault set names unknown
    /// elements (`LYR0205`), leaves some algorithm's scope with no
    /// surviving switch (`LYR0551`), or leaves its region partitioned with
    /// no surviving flow path (`LYR0552`). Scopes that merely *shrank*
    /// recompile onto the survivors; MULTI-SW direction endpoints that died
    /// are dropped rather than rejected (see
    /// [`lyra_topo::resolve_scope_degraded`]).
    pub fn recompile_for_faults(
        &self,
        req: &CompileRequest,
        prior: &CompileOutput,
        faults: &FaultSet,
    ) -> Result<FaultRecompile, CompileError> {
        // A fault set naming elements outside the topology is a caller bug,
        // not a degraded network — reject it before touching anything.
        let unknown = faults.unknown_elements(&req.topology);
        if !unknown.is_empty() {
            return Err(CompileError::Scope(
                unknown
                    .into_iter()
                    .map(|n| {
                        Diagnostic::error(
                            codes::SCOPE_UNKNOWN_SWITCH,
                            format!("fault set names unknown switch `{n}`"),
                        )
                    })
                    .collect(),
            ));
        }

        let report = req.topology.degrade(faults);

        // Classify every scope's survivability against the *original*
        // topology (scope health needs the pre-fault paths to know what was
        // lost) and refuse outright-dead scopes with fault-model codes.
        let specs = lyra_lang::parse_scopes(req.scopes).map_err(|e| {
            CompileError::Scope(vec![e.to_diagnostic().attach_source(SCOPES_SOURCE)])
        })?;
        let mut health = BTreeMap::new();
        let mut dead: Vec<Diagnostic> = Vec::new();
        for spec in &specs {
            let resolved = lyra_topo::resolve_scope(&req.topology, spec).map_err(|e| {
                CompileError::Scope(vec![e.to_diagnostic().attach_source(SCOPES_SOURCE)])
            })?;
            let h = scope_health(&req.topology, &resolved, faults);
            match &h {
                ScopeHealth::Unreachable => dead.push(
                    Diagnostic::error(
                        codes::FAULT_UNREACHABLE,
                        format!(
                            "every switch in the scope of `{}` failed; the algorithm cannot \
                             be deployed anywhere",
                            spec.algorithm
                        ),
                    )
                    .with_anonymous_span(spec.span)
                    .attach_source(SCOPES_SOURCE),
                ),
                ScopeHealth::Partitioned => dead.push(
                    Diagnostic::error(
                        codes::FAULT_PARTITIONED,
                        format!(
                            "the scope of `{}` survives but no flow path through it does; \
                             traffic cannot traverse the algorithm",
                            spec.algorithm
                        ),
                    )
                    .with_anonymous_span(spec.span)
                    .attach_source(SCOPES_SOURCE),
                ),
                ScopeHealth::Intact | ScopeHealth::Degraded { .. } => {}
            }
            health.insert(spec.algorithm.clone(), h);
        }
        if !dead.is_empty() {
            return Err(CompileError::Scope(dead));
        }

        // Recompile against the survivors, seeded with the prior placement
        // (lenient scope resolution tolerates dead direction endpoints).
        let degraded_req = CompileRequest {
            program: req.program,
            scopes: req.scopes,
            topology: report.topology.clone(),
            profile: req.profile.clone(),
        };
        let output = self.compile_inner(&degraded_req, Some(&prior.placement), true)?;
        let diff = PlacementDiff::between(&prior.placement, &output.placement);
        Ok(FaultRecompile {
            output,
            diff,
            report,
            scope_health: health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveProfile;
    use lyra_topo::figure1_network;

    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {
                ipv4.dstAddr = conn_table[hash];
            }
        }
    "#;
    const LB_SCOPES: &str =
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

    fn lb_request() -> CompileRequest<'static> {
        CompileRequest::new(LB, LB_SCOPES, figure1_network())
            .with_solve_profile(SolveProfile::fast())
    }

    #[test]
    fn empty_fault_set_recompiles_with_zero_instruction_churn() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let r = compiler
            .recompile_for_faults(&req, &prior, &FaultSet::new())
            .unwrap();
        // Same topology, seeded with the same placement: nothing moves.
        assert!(r.diff.is_empty(), "expected zero churn, got {:?}", r.diff);
        assert_eq!(r.report.removed_switches.len(), 0);
        assert!(r.scope_health["loadbalancer"].survivable());
    }

    #[test]
    fn failover_replan_moves_only_the_dead_switchs_entries() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let shard = |placement: &lyra_synth::Placement, sw: &str| -> u64 {
            placement
                .switches
                .get(sw)
                .and_then(|p| p.extern_entries.get("conn_table"))
                .copied()
                .unwrap_or(0)
        };
        let lost = shard(&prior.placement, "Agg3");
        assert!(lost > 0, "Agg3 must hold a shard for this test to bite");
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();
        // The integer stability hints keep every surviving shard where it
        // was: churn counts the dead switch's entries leaving (once) and
        // landing on survivors (once) — 2x the lost shard — and nothing
        // else. Without the hints the solver is free to re-deal all 1024
        // entries from scratch.
        let churn = r.diff.entry_churn();
        assert!(
            churn <= 2 * lost,
            "re-plan moved {churn} entry-slots but Agg3 only held {lost}: {:?}",
            r.diff.resharded
        );
        // Survivors that are not absorbing the lost shard keep their exact
        // counts — specifically, no surviving switch shrinks.
        for change in r.diff.resharded.values().flatten() {
            if change.switch != "Agg3" {
                assert!(
                    change.after >= change.before,
                    "survivor `{}` shed entries ({} -> {}) during failover",
                    change.switch,
                    change.before,
                    change.after
                );
            }
        }
    }

    #[test]
    fn agg3_failure_moves_code_off_the_dead_switch() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();
        assert_eq!(r.report.removed_switches, vec!["Agg3".to_string()]);
        // The new placement never uses the dead switch…
        assert!(!r.output.placement.switches.contains_key("Agg3"));
        // …and the surviving deployment still hosts the full conn_table on
        // every remaining flow path.
        let total: u64 = r
            .output
            .placement
            .switches
            .values()
            .filter_map(|p| p.extern_entries.get("conn_table"))
            .sum();
        assert!(total >= 1024, "conn_table entries after failover: {total}");
        // Anything that was on Agg3 shows up as removed churn.
        if prior.placement.switches.contains_key("Agg3") {
            assert!(r.diff.removed.contains_key("Agg3") || r.diff.total_churn() == 0);
        }
        assert!(matches!(
            r.scope_health["loadbalancer"],
            ScopeHealth::Degraded { .. }
        ));
    }

    #[test]
    fn unreachable_scope_fails_with_fault_code() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new()
            .with_switch("Agg3")
            .with_switch("Agg4")
            .with_switch("ToR3")
            .with_switch("ToR4");
        let err = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap_err();
        assert!(err
            .diagnostics()
            .iter()
            .any(|d| d.code == Some(codes::FAULT_UNREACHABLE)));
    }

    #[test]
    fn partitioned_scope_fails_with_fault_code() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        // Both Aggs die: the ToRs survive but no Agg→ToR path exists.
        let faults = FaultSet::new().with_switch("Agg3").with_switch("Agg4");
        let err = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap_err();
        assert!(
            err.diagnostics()
                .iter()
                .any(|d| d.code == Some(codes::FAULT_PARTITIONED)),
            "got {:?}",
            err.diagnostics()
        );
    }

    #[test]
    fn unknown_fault_element_is_rejected() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let err = compiler
            .recompile_for_faults(&req, &prior, &FaultSet::new().with_switch("Banana"))
            .unwrap_err();
        assert_eq!(err.diagnostics()[0].code, Some(codes::SCOPE_UNKNOWN_SWITCH));
    }

    #[test]
    fn placement_diff_reports_moves_and_resharding() {
        use lyra_synth::{Placement, SwitchPlan};
        let mut prior = Placement::default();
        let mut a = SwitchPlan::default();
        a.instrs.insert("lb".into(), vec![InstrId(0), InstrId(1)]);
        a.extern_entries.insert("t".into(), 1024);
        prior.switches.insert("Agg3".into(), a);

        let mut new = Placement::default();
        let mut b = SwitchPlan::default();
        b.instrs.insert("lb".into(), vec![InstrId(0), InstrId(1)]);
        b.extern_entries.insert("t".into(), 1024);
        new.switches.insert("Agg4".into(), b);

        let diff = PlacementDiff::between(&prior, &new);
        assert!(!diff.is_empty());
        assert_eq!(diff.total_churn(), 4); // 2 removed + 2 added
        assert_eq!(diff.removed["Agg3"]["lb"].len(), 2);
        assert_eq!(diff.added["Agg4"]["lb"].len(), 2);
        let shards = &diff.resharded["t"];
        assert!(shards.iter().any(|c| c.switch == "Agg3" && c.after == 0));
        assert!(shards.iter().any(|c| c.switch == "Agg4" && c.before == 0));
    }
}
