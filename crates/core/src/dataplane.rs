//! # Line-rate data-plane execution under live rollouts
//!
//! The runtime's [`Runtime::inject`](crate::Runtime::inject) interprets the
//! IR per packet — fine for semantics, far too slow for measuring a rollout
//! under traffic. This module compiles each placement into slot-indexed
//! bytecode ([`lyra_ir::compiled`]) once at deployment time and replays
//! seeded traffic through it on every core:
//!
//! * [`CompiledDeployment`] — a [`CompileOutput`] flattened to per-switch
//!   bytecode streams sharing one [`ProgramLayout`] register file.
//! * [`LiveTrafficPlane`] — the switches as the *data plane* sees them:
//!   per-switch `RwLock<Arc<EpochPlane>>` snapshots (program + sealed table
//!   snapshot + epoch), flipped atomically by control messages. Workers pin
//!   a packet to one epoch per path; a packet never executes under two.
//! * [`TrafficChannel`] — wraps any [`ControlChannel`] so every message the
//!   rollout engine sends (including lossy fates and late replays) is also
//!   applied to the live plane, exactly as the switch agent would.
//! * [`replay_compiled`] / [`replay_interpreted`] — throughput harnesses
//!   over identical seeded traffic, for the compiled-vs-interpreter bench.
//! * [`replay_under_rollout`] — runs [`Runtime::apply_rollout`] *while*
//!   worker threads push packets, then reports packet loss and mixed-epoch
//!   exposure alongside the rollout report.
//! * [`replay_under_recovery`] — the same harness around
//!   [`Runtime::recover`]: traffic keeps flowing through the mid-flight
//!   remnants a crashed controller left behind while the restarted
//!   controller drives them to all-commit or all-rollback.
//!
//! ## Epoch pinning
//!
//! Each worker caches the per-switch serving planes and revalidates the
//! cache against a generation counter bumped on every commit/rollback flip.
//! Before executing a packet it checks that every hop on the packet's path
//! serves the same epoch; a disagreeing path refuses the packet (counted as
//! `refused_epoch_mismatch`, the replay's packet loss) rather than exposing
//! it to two placements — the same guarantee `inject` enforces, kept under
//! concurrency by checking the exact `Arc` snapshots the packet would run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use lyra_ir::{
    execute, CompiledAlgorithm, DataPlaneState, GlobalAccess, GlobalOverlay, InstrId, IrAlgorithm,
    Machine, PacketState, ProgramLayout, TableSnapshot,
};

use crate::channel::{ControlChannel, ControlMsg, ControlOp, Delivery, EntryOp};
use crate::recovery::RecoveryReport;
use crate::rollout::{IntentStore, RolloutConfig, RolloutReport};
use crate::runtime::{Runtime, RuntimeError};
use crate::CompileOutput;

/// Recover a lock even if a worker panicked while holding it: the plane's
/// data is epoch snapshots swapped whole (never partially written), so the
/// poisoned contents are still consistent and refusing to serve would turn
/// one worker's panic into a total outage.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// See [`read_lock`].
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// See [`read_lock`].
fn lock_control<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A placement compiled to per-switch bytecode streams. Built once per
/// deployment; packets then execute with zero name lookups and zero
/// allocation.
pub struct CompiledDeployment {
    layout: Arc<ProgramLayout>,
    switches: BTreeMap<String, Arc<Vec<CompiledAlgorithm>>>,
    paths: Vec<Vec<String>>,
    live_in: Vec<u32>,
}

impl CompiledDeployment {
    /// Compile `output` against its own program's layout.
    pub fn new(output: &CompileOutput) -> Self {
        Self::with_layout(output, Arc::new(ProgramLayout::new(&output.ir)))
    }

    /// Compile `output` against a caller-provided layout — use
    /// [`ProgramLayout::unioned`] when two deployments (current and next
    /// epoch of a rollout) must share one register file.
    pub fn with_layout(output: &CompileOutput, layout: Arc<ProgramLayout>) -> Self {
        let mut switches = BTreeMap::new();
        let mut live_in: BTreeSet<u32> = BTreeSet::new();
        for (sw, plan) in &output.placement.switches {
            let mut algs = Vec::new();
            // Mirror `Runtime::inject`: algorithms in BTreeMap order, each
            // stream's instruction ids sorted into program order.
            for (alg_name, ids) in &plan.instrs {
                let Some(alg) = output.ir.algorithm(alg_name) else {
                    continue; // placement of an unknown algorithm: no code
                };
                let mut ordered: Vec<InstrId> = ids.clone();
                ordered.sort();
                let compiled = CompiledAlgorithm::compile(alg, &ordered, &layout);
                live_in.extend(compiled.live_in().iter().copied());
                algs.push(compiled);
            }
            switches.insert(sw.clone(), Arc::new(algs));
        }
        let mut paths: Vec<Vec<String>> = output
            .flow_paths
            .values()
            .flatten()
            .filter(|p| !p.is_empty())
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if paths.is_empty() {
            // Degenerate single-switch deployments (PER-SW scopes without
            // recorded flow paths): every holder is its own one-hop path.
            paths = switches.keys().map(|sw| vec![sw.clone()]).collect();
        }
        CompiledDeployment {
            layout,
            switches,
            paths,
            live_in: live_in.into_iter().collect(),
        }
    }

    /// The shared register-file layout.
    pub fn layout(&self) -> &Arc<ProgramLayout> {
        &self.layout
    }

    /// Slots a packet must provide (union over every compiled stream).
    pub fn live_in(&self) -> &[u32] {
        &self.live_in
    }

    /// The replayable paths (deduped union of the placement's flow paths).
    pub fn paths(&self) -> &[Vec<String>] {
        &self.paths
    }

    /// Number of switches holding code.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Total compiled ops across all switches and algorithms.
    pub fn op_count(&self) -> usize {
        self.switches
            .values()
            .map(|algs| algs.iter().map(|a| a.len()).sum::<usize>())
            .sum()
    }
}

/// Everything one switch serves for one epoch: the compiled programs and a
/// sealed, sorted snapshot of its tables and global registers. Immutable
/// once built — epoch flips swap the `Arc`, never mutate in place. (Delta
/// prepares mutate the *staged* plane via `Arc::make_mut` before it is
/// ever served, which is why this is `Clone`.)
#[derive(Clone)]
struct EpochPlane {
    epoch: u64,
    algs: Arc<Vec<CompiledAlgorithm>>,
    snap: TableSnapshot,
}

/// The control-side view of one switch, mirroring the rollout engine's
/// switch-agent state machine (`rollout::deliver`) message for message.
struct PlaneControl {
    epoch: u64,
    staged: Option<(u64, Arc<EpochPlane>)>,
    prior: Option<(u64, Arc<EpochPlane>)>,
    tokens: BTreeSet<u64>,
}

/// The switches as worker threads see them: read-mostly per-switch serving
/// planes plus the control state that flips them. Shared by reference into
/// a [`std::thread::scope`].
pub struct LiveTrafficPlane {
    layout: Arc<ProgramLayout>,
    names: Vec<String>,
    index: BTreeMap<String, usize>,
    serving: Vec<RwLock<Arc<EpochPlane>>>,
    control: Mutex<Vec<PlaneControl>>,
    /// Per-switch programs of the *next* deployment; a `Prepare` pairs the
    /// staged table state with these.
    staged_algs: Vec<Arc<Vec<CompiledAlgorithm>>>,
    paths: Vec<Vec<usize>>,
    live_in: Vec<u32>,
    /// Bumped (release) on every serving flip; workers revalidate their
    /// plane cache against it with one acquire load per packet.
    generation: AtomicU64,
}

impl LiveTrafficPlane {
    /// A static plane for pure-throughput replay: every switch serves the
    /// runtime's current epoch and will never be flipped.
    pub fn for_replay(rt: &Runtime<'_>, dep: &CompiledDeployment) -> Self {
        Self::build(rt, dep, dep)
    }

    /// A plane that will live through a rollout from the deployment of
    /// `rt.output()` (`dep_cur`) to `dep_next`. Covers the union of both
    /// placements' switches so prepares to newly added switches land.
    pub fn for_rollout(
        rt: &Runtime<'_>,
        dep_cur: &CompiledDeployment,
        dep_next: &CompiledDeployment,
    ) -> Self {
        Self::build(rt, dep_cur, dep_next)
    }

    fn build(
        rt: &Runtime<'_>,
        dep_cur: &CompiledDeployment,
        dep_next: &CompiledDeployment,
    ) -> Self {
        let empty = DataPlaneState::new();
        let empty_algs: Arc<Vec<CompiledAlgorithm>> = Arc::new(Vec::new());
        let mut names: BTreeSet<String> = dep_cur.switches.keys().cloned().collect();
        names.extend(dep_next.switches.keys().cloned());
        names.extend(rt.states.keys().cloned());
        let names: Vec<String> = names.into_iter().collect();
        let index: BTreeMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        let mut serving = Vec::with_capacity(names.len());
        let mut control = Vec::with_capacity(names.len());
        let mut staged_algs = Vec::with_capacity(names.len());
        for name in &names {
            let st = rt.states.get(name);
            let (epoch, dp) = match st {
                Some(st) => (st.epoch, &st.dp),
                None => (rt.epoch, &empty),
            };
            let next_algs = dep_next.switches.get(name).unwrap_or(&empty_algs).clone();
            // A switch that retains a prior epoch already flipped to the
            // *next* deployment mid-rollout (a crashed controller can leave
            // the fleet like this); its serving program is the next one.
            let flipped = st.is_some_and(|st| st.prior.is_some());
            let cur_algs = dep_cur.switches.get(name).unwrap_or(&empty_algs).clone();
            let algs = if flipped {
                next_algs.clone()
            } else {
                cur_algs.clone()
            };
            serving.push(RwLock::new(Arc::new(EpochPlane {
                epoch,
                algs,
                snap: TableSnapshot::build(&dep_cur.layout, dp),
            })));
            // Mirror any mid-flight staged/prior/token remnants so a plane
            // built *after* a controller crash agrees with the runtime's
            // switch agents message for message during recovery.
            let staged = st.and_then(|st| st.staged.as_ref()).map(|(e, dp)| {
                (
                    *e,
                    Arc::new(EpochPlane {
                        epoch: *e,
                        algs: next_algs.clone(),
                        snap: TableSnapshot::build(&dep_cur.layout, dp),
                    }),
                )
            });
            let prior = st.and_then(|st| st.prior.as_ref()).map(|(e, dp)| {
                (
                    *e,
                    Arc::new(EpochPlane {
                        epoch: *e,
                        algs: cur_algs,
                        snap: TableSnapshot::build(&dep_cur.layout, dp),
                    }),
                )
            });
            control.push(PlaneControl {
                epoch,
                staged,
                prior,
                tokens: st.map(|st| st.tokens.clone()).unwrap_or_default(),
            });
            staged_algs.push(next_algs);
        }
        let paths = dep_cur
            .paths
            .iter()
            .map(|p| p.iter().filter_map(|h| index.get(h).copied()).collect())
            .collect();
        let mut live_in: BTreeSet<u32> = dep_cur.live_in.iter().copied().collect();
        live_in.extend(dep_next.live_in.iter().copied());
        LiveTrafficPlane {
            layout: dep_cur.layout.clone(),
            names,
            index,
            serving,
            control: Mutex::new(control),
            staged_algs,
            paths,
            live_in: live_in.into_iter().collect(),
            generation: AtomicU64::new(0),
        }
    }

    /// The epoch a switch currently serves (`None` if unknown here).
    pub fn serving_epoch(&self, switch: &str) -> Option<u64> {
        let i = *self.index.get(switch)?;
        Some(read_lock(&self.serving[i]).epoch)
    }

    /// True when the plane agrees with the runtime on every switch the
    /// runtime knows: the serving epoch matches, and the plane retains
    /// staged/prior state exactly where the runtime's switch agent does.
    /// This is the traffic-plane half of
    /// [`Runtime::epochs_coherent_with_plane`](crate::Runtime::epochs_coherent_with_plane).
    pub fn mirrors(&self, rt: &Runtime<'_>) -> bool {
        let control = lock_control(&self.control);
        self.names.iter().enumerate().all(|(i, name)| {
            let Some(st) = rt.states.get(name) else {
                return true; // failed/unknown switch: no runtime state to mirror
            };
            let ctl = &control[i];
            read_lock(&self.serving[i]).epoch == st.epoch
                && ctl.epoch == st.epoch
                && ctl.staged.as_ref().map(|(e, _)| *e) == st.staged.as_ref().map(|(e, _)| *e)
                && ctl.prior.as_ref().map(|(e, _)| *e) == st.prior.as_ref().map(|(e, _)| *e)
        })
    }

    /// Apply one delivered control message, mirroring the rollout engine's
    /// switch agent: token idempotency, stale-prepare guards, commit flip
    /// with retained prior, rollback restore.
    pub fn apply(&self, msg: &ControlMsg) {
        let Some(&i) = self.index.get(&msg.switch) else {
            return; // message to a switch the plane does not know: dropped
        };
        if matches!(msg.op, ControlOp::Query | ControlOp::Probe) {
            // Read-only state query (recovery) or health probe: nothing to
            // apply, and no token is recorded — a retried copy must never
            // be suppressed.
            return;
        }
        let mut control = lock_control(&self.control);
        let ctl = &mut control[i];
        if ctl.tokens.contains(&msg.token) {
            return;
        }
        match &msg.op {
            ControlOp::Prepare { staged } => {
                let newer_than_active = msg.epoch > ctl.epoch;
                let not_stale = ctl.staged.as_ref().is_none_or(|(e, _)| msg.epoch >= *e);
                if newer_than_active && not_stale {
                    let plane = Arc::new(EpochPlane {
                        epoch: msg.epoch,
                        algs: self.staged_algs[i].clone(),
                        snap: TableSnapshot::build(&self.layout, staged),
                    });
                    ctl.staged = Some((msg.epoch, plane));
                }
            }
            ControlOp::PrepareDelta {
                base_epoch,
                ops,
                globals,
                batch_index,
                ..
            } => {
                if *batch_index == 0 {
                    // Opening batch: clone the *serving* snapshot once
                    // (sorted-array memcpy, never repeated per batch),
                    // swap in the next epoch's globals, and fold the ops
                    // in — the full next-epoch `DataPlaneState` is never
                    // materialized on the mirror. Same guards as the
                    // switch agent, plus the delta-specific check that
                    // the serving epoch is the base the diff was cut
                    // against.
                    let newer_than_active = msg.epoch > ctl.epoch;
                    let not_stale = ctl.staged.as_ref().is_none_or(|(e, _)| msg.epoch >= *e);
                    if newer_than_active && not_stale && *base_epoch == ctl.epoch {
                        let mut snap = read_lock(&self.serving[i]).snap.clone();
                        let mut gdp = DataPlaneState::new();
                        gdp.globals = globals.clone();
                        snap.globals = self.layout.globals_from(&gdp);
                        apply_delta_ops(&self.layout, &mut snap, ops);
                        let plane = Arc::new(EpochPlane {
                            epoch: msg.epoch,
                            algs: self.staged_algs[i].clone(),
                            snap,
                        });
                        ctl.staged = Some((msg.epoch, plane));
                    }
                } else if let Some((e, plane)) = ctl.staged.as_mut() {
                    // Later batches append onto the staged plane — which
                    // is not serving yet, so in-place mutation behind
                    // `make_mut` cannot be observed by a worker.
                    if *e == msg.epoch {
                        let ep = Arc::make_mut(plane);
                        apply_delta_ops(&self.layout, &mut ep.snap, ops);
                    }
                }
            }
            ControlOp::Query | ControlOp::Probe => return, // handled above; kept for exhaustiveness
            ControlOp::Commit => {
                if ctl.epoch != msg.epoch {
                    if let Some((e, plane)) = ctl.staged.take() {
                        if e == msg.epoch {
                            let old = {
                                let mut s = write_lock(&self.serving[i]);
                                std::mem::replace(&mut *s, plane)
                            };
                            ctl.prior = Some((ctl.epoch, old));
                            ctl.epoch = msg.epoch;
                            self.generation.fetch_add(1, Ordering::Release);
                        } else {
                            ctl.staged = Some((e, plane)); // wrong epoch: ignore
                        }
                    }
                }
            }
            ControlOp::Rollback => {
                if ctl.epoch == msg.epoch {
                    if let Some((e, plane)) = ctl.prior.take() {
                        *write_lock(&self.serving[i]) = plane;
                        ctl.epoch = e;
                        self.generation.fetch_add(1, Ordering::Release);
                    }
                }
                if ctl.staged.as_ref().is_some_and(|(e, _)| *e == msg.epoch) {
                    ctl.staged = None;
                }
            }
        }
        ctl.tokens.insert(msg.token);
    }

    /// Resynchronise the plane with the runtime after a rollout returns —
    /// covers the paths messages alone cannot: out-of-band forced rollbacks
    /// and the finalize sweep that clears staged/prior/tokens. `winner` is
    /// the deployment of whichever output the runtime now serves.
    pub fn align(&self, rt: &Runtime<'_>, winner: &CompiledDeployment) {
        self.resync(rt, winner, &self.names);
    }

    /// Re-snapshot only the named switches from the runtime — the targeted
    /// form of [`LiveTrafficPlane::align`] the anti-entropy audit uses:
    /// after [`Runtime::audit_switches`](crate::Runtime::audit_switches)
    /// repairs drift, pass
    /// [`AuditReport::drifted_switches`](crate::AuditReport::drifted_switches)
    /// so repaired state becomes servable without rebuilding the healthy
    /// majority. `winner` is the deployment of the output the runtime
    /// serves. Unknown names are ignored.
    pub fn resync(&self, rt: &Runtime<'_>, winner: &CompiledDeployment, switches: &[String]) {
        let empty = DataPlaneState::new();
        let empty_algs: Arc<Vec<CompiledAlgorithm>> = Arc::new(Vec::new());
        let mut control = lock_control(&self.control);
        for name in switches {
            let Some(&i) = self.index.get(name) else {
                continue;
            };
            let (epoch, dp) = match rt.states.get(name) {
                Some(st) => (st.epoch, &st.dp),
                None => (rt.epoch, &empty),
            };
            let algs = winner.switches.get(name).unwrap_or(&empty_algs).clone();
            *write_lock(&self.serving[i]) = Arc::new(EpochPlane {
                epoch,
                algs,
                snap: TableSnapshot::build(&self.layout, dp),
            });
            control[i] = PlaneControl {
                epoch,
                staged: None,
                prior: None,
                tokens: BTreeSet::new(),
            };
        }
        self.generation.fetch_add(1, Ordering::Release);
    }
}

/// Fold a delta prepare's entry ops into a staged [`TableSnapshot`]. Ops
/// naming tables the layout does not know are dropped, matching how the
/// interpreter-side switch agent ignores installs into undeclared tables.
fn apply_delta_ops(layout: &ProgramLayout, snap: &mut TableSnapshot, ops: &[EntryOp]) {
    for op in ops {
        match op {
            EntryOp::Set { table, key, value } => {
                if let Some(t) = layout.table(table) {
                    snap.set(t, *key, *value);
                }
            }
            EntryOp::Remove { table, key } => {
                if let Some(t) = layout.table(table) {
                    snap.remove(t, *key);
                }
            }
        }
    }
}

/// A [`ControlChannel`] adapter that forwards every transmit to an inner
/// channel (which decides the fate) and applies each *delivered* copy to a
/// [`LiveTrafficPlane`], so the data plane flips in lock-step with the
/// runtime's switch states — duplicates, late replays, lost acks and all.
pub struct TrafficChannel<'a> {
    inner: &'a mut dyn ControlChannel,
    plane: &'a LiveTrafficPlane,
}

impl<'a> TrafficChannel<'a> {
    /// Wrap `inner`, mirroring deliveries onto `plane`.
    pub fn new(inner: &'a mut dyn ControlChannel, plane: &'a LiveTrafficPlane) -> Self {
        TrafficChannel { inner, plane }
    }
}

impl ControlChannel for TrafficChannel<'_> {
    fn transmit(&mut self, msg: &ControlMsg) -> Delivery {
        let fate = self.inner.transmit(msg);
        match fate {
            Delivery::Delivered | Delivery::AckLost => self.plane.apply(msg),
            Delivery::Duplicated => {
                self.plane.apply(msg);
                self.plane.apply(msg);
            }
            Delivery::Dropped => {}
        }
        fate
    }

    fn drain_late(&mut self) -> Vec<ControlMsg> {
        let msgs = self.inner.drain_late();
        for m in &msgs {
            self.plane.apply(m);
        }
        msgs
    }
}

/// Replay-harness knobs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Total packets to push (shared across all workers).
    pub packets: u64,
    /// Worker threads. `replay_interpreted` ignores this (the interpreter
    /// baseline is single-threaded, like `inject`).
    pub workers: usize,
    /// Seed for the packet generator. A packet's contents and path are a
    /// pure function of `(seed, packet index)`, so results do not depend on
    /// which worker claims which packet.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            packets: 200_000,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: 0x017a_5eed,
        }
    }
}

impl ReplayConfig {
    /// Set the packet budget.
    pub fn with_packets(mut self, packets: u64) -> Self {
        self.packets = packets;
        self
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the traffic seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a replay observed.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Packets attempted (delivered + refused).
    pub packets: u64,
    /// Packets that executed end to end under one pinned epoch.
    pub delivered: u64,
    /// Packets refused because their path's hops disagreed on the serving
    /// epoch mid-rollout — the harness's packet-loss figure.
    pub refused_epoch_mismatch: u64,
    /// Packets that *executed* under two different epochs. The pinning
    /// check makes this structurally zero; it is counted (not assumed) so
    /// the invariant is measured, and asserted in the chaos tests.
    pub mixed_epoch_exposure: u64,
    /// Worker threads that panicked mid-replay. Their partial counts are
    /// lost but the replay completes on the survivors — a poisoned worker
    /// must not take the serving plane down with it.
    pub worker_panics: u64,
    /// Total effects fired (actions recorded by executed packets).
    pub effects: u64,
    /// XOR-fold of every packet's machine digest — order-independent, so
    /// equal traffic must produce the same digest for any worker count.
    pub digest: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the replay.
    pub elapsed: Duration,
    /// Delivered packets per second.
    pub pps: f64,
}

impl ReplayReport {
    /// Serialise for logs and the bench recorder.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"packets\":{},\"delivered\":{},\"refused_epoch_mismatch\":{},\
             \"mixed_epoch_exposure\":{},\"worker_panics\":{},\"effects\":{},\
             \"digest\":\"{:#x}\",\"workers\":{},\"elapsed_us\":{},\"pps\":{:.0}}}",
            self.packets,
            self.delivered,
            self.refused_epoch_mismatch,
            self.mixed_epoch_exposure,
            self.worker_panics,
            self.effects,
            self.digest,
            self.workers,
            self.elapsed.as_micros(),
            self.pps,
        )
    }
}

/// A replay and the rollout it ran under.
#[derive(Debug)]
pub struct RolloutReplayOutcome {
    /// The traffic-side observations.
    pub replay: ReplayReport,
    /// The control-side report from [`Runtime::apply_rollout`].
    pub rollout: RolloutReport,
}

/// splitmix64 finalizer — the replay's only randomness. Deterministic per
/// packet index so worker scheduling cannot change the traffic.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-packet base state from the seed and the global packet index.
fn packet_base(seed: u64, idx: u64) -> u64 {
    splitmix(seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// The value of live-in field `j` for a packet: a mix of small values
/// (branch selectors, opcodes, table keys that collide) and wide ones.
fn field_value(base: u64, j: usize) -> u64 {
    let r = splitmix(base ^ ((j as u64) << 17));
    match r & 3 {
        0 => r >> 59,
        1 => (r >> 48) & 0xff,
        _ => r >> 2,
    }
}

#[derive(Default)]
struct WorkerOut {
    delivered: u64,
    refused: u64,
    mixed: u64,
    effects: u64,
    digest: u64,
}

fn run_worker(
    plane: &LiveTrafficPlane,
    cfg: &ReplayConfig,
    next: &AtomicU64,
    stop: &AtomicBool,
) -> WorkerOut {
    let mut machine = Machine::new(&plane.layout);
    let mut overlay = GlobalOverlay::new();
    let mut cache: Vec<Arc<EpochPlane>> = Vec::new();
    let mut cache_gen = u64::MAX;
    let mut out = WorkerOut::default();
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= cfg.packets || stop.load(Ordering::Relaxed) {
            break;
        }
        // Revalidate the per-switch plane cache: one acquire load per
        // packet in steady state, a full re-read only after a flip.
        let gen = plane.generation.load(Ordering::Acquire);
        if gen != cache_gen {
            cache = plane.serving.iter().map(|l| read_lock(l).clone()).collect();
            cache_gen = gen;
        }
        let base = packet_base(cfg.seed, idx);
        if plane.paths.is_empty() {
            out.delivered += 1;
            continue;
        }
        let path = &plane.paths[(base % plane.paths.len() as u64) as usize];
        // Epoch pinning: the packet runs only if every hop serves the same
        // epoch. The check is on the exact snapshots the packet would
        // execute, so a concurrent flip cannot slip a second epoch in.
        if let Some(&first) = path.first() {
            let pin = cache[first].epoch;
            if path.iter().any(|&h| cache[h].epoch != pin) {
                out.refused += 1;
                continue;
            }
        }
        machine.reset();
        for (j, &slot) in plane.live_in.iter().enumerate() {
            machine.set_slot(slot, field_value(base, j));
        }
        let mut pinned: Option<u64> = None;
        for &h in path {
            let ep = &cache[h];
            if let Some(pin) = pinned {
                if ep.epoch != pin {
                    out.mixed += 1; // measured, never expected: see pinning
                    break;
                }
            }
            pinned = Some(ep.epoch);
            // Globals are per-switch, so the overlay resets at each hop;
            // within a hop, reads see this packet's earlier writes.
            overlay.clear();
            let mut globals = GlobalAccess::Isolated {
                baseline: &ep.snap.globals,
                overlay: &mut overlay,
            };
            for alg in ep.algs.iter() {
                machine.run(alg, &ep.snap, &mut globals);
            }
        }
        out.delivered += 1;
        out.effects += machine.effect_count() as u64;
        out.digest ^= splitmix(machine.digest() ^ base);
    }
    out
}

/// Join replay workers without letting one panicked worker take the
/// harness down: a panicked worker's partial counts are lost, but the
/// replay (and the serving plane behind it) completes on the survivors.
/// The panic is counted on the report instead of re-raised — the
/// thread-side counterpart of the poison-recovering lock helpers above.
fn join_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, WorkerOut>>,
) -> (Vec<WorkerOut>, u64) {
    let mut outs = Vec::with_capacity(handles.len());
    let mut panics = 0u64;
    for h in handles {
        match h.join() {
            Ok(o) => outs.push(o),
            Err(_) => panics += 1,
        }
    }
    (outs, panics)
}

fn aggregate(
    outs: Vec<WorkerOut>,
    worker_panics: u64,
    workers: usize,
    elapsed: Duration,
) -> ReplayReport {
    let mut report = ReplayReport {
        packets: 0,
        delivered: 0,
        refused_epoch_mismatch: 0,
        mixed_epoch_exposure: 0,
        worker_panics,
        effects: 0,
        digest: 0,
        workers,
        elapsed,
        pps: 0.0,
    };
    for o in outs {
        report.delivered += o.delivered;
        report.refused_epoch_mismatch += o.refused;
        report.mixed_epoch_exposure += o.mixed;
        report.effects += o.effects;
        report.digest ^= o.digest;
    }
    report.packets = report.delivered + report.refused_epoch_mismatch;
    report.pps = report.delivered as f64 / elapsed.as_secs_f64().max(1e-9);
    report
}

fn run_replay(plane: &LiveTrafficPlane, cfg: &ReplayConfig) -> ReplayReport {
    let workers = cfg.workers.max(1);
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (outs, panics) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| s.spawn(|| run_worker(plane, cfg, &next, &stop)))
            .collect();
        join_workers(handles)
    });
    aggregate(outs, panics, workers, t0.elapsed())
}

/// Replay seeded traffic through the *compiled* engine on a static plane
/// (no rollout in flight) and measure throughput.
pub fn replay_compiled(rt: &Runtime<'_>, cfg: &ReplayConfig) -> ReplayReport {
    let dep = CompiledDeployment::new(rt.output());
    let plane = LiveTrafficPlane::for_replay(rt, &dep);
    run_replay(&plane, cfg)
}

/// Replay the *same* seeded traffic through the reference interpreter,
/// single-threaded, as the throughput baseline. State handling matches
/// [`Runtime::inject`]: one persistent mutable [`DataPlaneState`] clone per
/// switch, shared packet state across hops.
pub fn replay_interpreted(rt: &Runtime<'_>, cfg: &ReplayConfig) -> ReplayReport {
    let output = rt.output();
    let dep = CompiledDeployment::new(output);
    let layout = dep.layout.clone();
    let mut states: BTreeMap<&str, DataPlaneState> = BTreeMap::new();
    let mut streams: BTreeMap<&str, Vec<(&IrAlgorithm, Vec<InstrId>)>> = BTreeMap::new();
    for (sw, plan) in &output.placement.switches {
        let dp = rt
            .states
            .get(sw)
            .map(|st| st.dp.clone())
            .unwrap_or_default();
        states.insert(sw.as_str(), dp);
        let mut algs = Vec::new();
        for (alg_name, ids) in &plan.instrs {
            if let Some(alg) = output.ir.algorithm(alg_name) {
                let mut ordered: Vec<InstrId> = ids.clone();
                ordered.sort();
                algs.push((alg, ordered));
            }
        }
        streams.insert(sw.as_str(), algs);
    }
    let paths: Vec<Vec<&str>> = dep
        .paths()
        .iter()
        .map(|p| {
            p.iter()
                .map(String::as_str)
                .filter(|h| streams.contains_key(h))
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    let mut delivered = 0u64;
    let mut effects = 0u64;
    for idx in 0..cfg.packets {
        let base = packet_base(cfg.seed, idx);
        let mut pkt = PacketState::new();
        for (j, &slot) in dep.live_in().iter().enumerate() {
            pkt.set(layout.slot_name(slot), field_value(base, j));
        }
        if !paths.is_empty() {
            let path = &paths[(base % paths.len() as u64) as usize];
            for &sw in path {
                // Paths are pre-filtered to stream switches, but a hop
                // without state is a skip, not a panic, in a replay loop.
                let Some(dp) = states.get_mut(sw) else {
                    continue;
                };
                let Some(algs) = streams.get(sw) else {
                    continue;
                };
                for (alg, ids) in algs {
                    effects += execute(alg, ids, &mut pkt, dp).len() as u64;
                }
            }
        }
        delivered += 1;
    }
    let elapsed = t0.elapsed();
    ReplayReport {
        packets: delivered,
        delivered,
        refused_epoch_mismatch: 0,
        mixed_epoch_exposure: 0,
        worker_panics: 0,
        effects,
        digest: 0,
        workers: 1,
        elapsed,
        pps: delivered as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Run [`Runtime::apply_rollout`] while worker threads replay traffic
/// through the live plane, then report both sides.
///
/// The current and next deployments are compiled against one unioned
/// layout, so a worker's machine can execute either epoch. Workers push a
/// tenth of the packet budget on the old epoch first (so the flip happens
/// under load), the rollout runs over a [`TrafficChannel`] wrapping
/// `channel`, the plane is re-aligned with the runtime's final state
/// (forced rollbacks, finalize), and the remaining traffic drains on
/// whichever epoch won.
///
/// On a gated rollout (`Err`), traffic stops and the error is returned.
pub fn replay_under_rollout<'a>(
    rt: &mut Runtime<'a>,
    new_output: &'a CompileOutput,
    channel: &mut dyn ControlChannel,
    rollout_cfg: &RolloutConfig,
    replay_cfg: &ReplayConfig,
) -> Result<RolloutReplayOutcome, RuntimeError> {
    let layout = Arc::new(ProgramLayout::unioned(&[&rt.output().ir, &new_output.ir]));
    let dep_cur = CompiledDeployment::with_layout(rt.output(), layout.clone());
    let dep_next = CompiledDeployment::with_layout(new_output, layout);
    let plane = LiveTrafficPlane::for_rollout(rt, &dep_cur, &dep_next);
    let workers = replay_cfg.workers.max(1);
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (outs, rollout) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| s.spawn(|| run_worker(&plane, replay_cfg, &next, &stop)))
            .collect();
        // Let traffic establish itself on the old epoch before flipping.
        let warm = replay_cfg.packets / 10;
        while next.load(Ordering::Relaxed) < warm && !handles.iter().all(|h| h.is_finished()) {
            std::thread::yield_now();
        }
        let mut traffic = TrafficChannel::new(channel, &plane);
        let rollout = rt.apply_rollout(new_output, &mut traffic, rollout_cfg);
        match &rollout {
            Ok(report) => {
                let winner = if report.committed {
                    &dep_next
                } else {
                    &dep_cur
                };
                plane.align(rt, winner);
            }
            Err(_) => stop.store(true, Ordering::Relaxed),
        }
        let outs = join_workers(handles);
        (outs, rollout)
    });
    let elapsed = t0.elapsed();
    let (outs, panics) = outs;
    let rollout = rollout?;
    Ok(RolloutReplayOutcome {
        replay: aggregate(outs, panics, workers, elapsed),
        rollout,
    })
}

/// A replay and the restart recovery it ran under.
#[derive(Debug)]
pub struct RecoveryReplayOutcome {
    /// The traffic-side observations.
    pub replay: ReplayReport,
    /// The control-side report from [`Runtime::recover`].
    pub recovery: RecoveryReport,
}

/// Run [`Runtime::recover`] while worker threads replay traffic through
/// the mid-flight state a crashed controller left behind.
///
/// The plane is built from the runtime *as the crash left it* — staged
/// epochs, retained priors, switches already flipped, and the idempotency
/// tokens each switch consumed — so recovery's re-driven messages land on
/// the traffic plane exactly as they land on the switch agents. Traffic
/// establishes itself first (a tenth of the packet budget), recovery runs
/// over a [`TrafficChannel`] wrapping `channel` (the same channel instance
/// the crashed rollout used: the network outlives the controller), the
/// plane is re-aligned with whichever epoch won, and the rest of the
/// traffic drains. Epoch pinning holds throughout, so
/// [`ReplayReport::mixed_epoch_exposure`] must come back zero even though
/// the fleet is mid-transaction when traffic starts.
pub fn replay_under_recovery<'a>(
    rt: &mut Runtime<'a>,
    new_output: &'a CompileOutput,
    store: &mut dyn IntentStore,
    channel: &mut dyn ControlChannel,
    rollout_cfg: &RolloutConfig,
    replay_cfg: &ReplayConfig,
) -> Result<RecoveryReplayOutcome, RuntimeError> {
    let layout = Arc::new(ProgramLayout::unioned(&[&rt.output().ir, &new_output.ir]));
    let dep_cur = CompiledDeployment::with_layout(rt.output(), layout.clone());
    let dep_next = CompiledDeployment::with_layout(new_output, layout);
    let plane = LiveTrafficPlane::for_rollout(rt, &dep_cur, &dep_next);
    let workers = replay_cfg.workers.max(1);
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (outs, recovery) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| s.spawn(|| run_worker(&plane, replay_cfg, &next, &stop)))
            .collect();
        // Traffic flows through the crashed fleet before recovery starts.
        let warm = replay_cfg.packets / 10;
        while next.load(Ordering::Relaxed) < warm && !handles.iter().all(|h| h.is_finished()) {
            std::thread::yield_now();
        }
        let mut traffic = TrafficChannel::new(channel, &plane);
        let recovery = rt.recover(new_output, store, &mut traffic, rollout_cfg);
        match &recovery {
            Ok(report) => {
                let winner = if report.committed {
                    &dep_next
                } else {
                    &dep_cur
                };
                plane.align(rt, winner);
            }
            Err(_) => stop.store(true, Ordering::Relaxed),
        }
        let outs = join_workers(handles);
        (outs, recovery)
    });
    let elapsed = t0.elapsed();
    let (outs, panics) = outs;
    let recovery = recovery?;
    Ok(RecoveryReplayOutcome {
        replay: aggregate(outs, panics, workers, elapsed),
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{LossyChannel, ReliableChannel};
    use crate::{CompileRequest, Compiler, FaultSet, SolveProfile};
    use lyra_topo::figure1_network;

    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[64] conn_table;
            if (flow_h in conn_table) {
                ipv4.dstAddr = conn_table[flow_h];
            } else {
                copy_to_cpu();
            }
        }
    "#;
    const LB_SCOPES: &str =
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

    fn lb_request() -> CompileRequest<'static> {
        CompileRequest::new(LB, LB_SCOPES, figure1_network())
            .with_solve_profile(SolveProfile::fast())
    }

    #[test]
    fn compiled_replay_matches_interpreter_effect_stream() {
        let out = Compiler::new().compile(&lb_request()).unwrap();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 42, 0xabcd).unwrap();
        let cfg = ReplayConfig::default()
            .with_packets(2_000)
            .with_workers(1)
            .with_seed(7);
        let compiled = replay_compiled(&rt, &cfg);
        let interp = replay_interpreted(&rt, &cfg);
        assert_eq!(compiled.delivered, 2_000);
        assert_eq!(interp.delivered, 2_000);
        // The LB program is stateless outside its tables, so persistent
        // (interpreter) and isolated (compiled) replay see identical
        // traffic and must fire identical effect counts.
        assert_eq!(compiled.effects, interp.effects);
        assert_eq!(compiled.mixed_epoch_exposure, 0);
        assert_eq!(compiled.refused_epoch_mismatch, 0);
    }

    #[test]
    fn worker_count_does_not_change_the_digest() {
        let out = Compiler::new().compile(&lb_request()).unwrap();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 9, 0x0b00).unwrap();
        let base = ReplayConfig::default().with_packets(4_000).with_seed(11);
        let one = replay_compiled(&rt, &base.clone().with_workers(1));
        let four = replay_compiled(&rt, &base.clone().with_workers(4));
        assert_eq!(one.digest, four.digest, "replay must be deterministic");
        assert_eq!(one.effects, four.effects);
        assert_eq!(one.delivered, four.delivered);
    }

    #[test]
    fn reliable_rollout_under_traffic_commits_with_zero_exposure() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();
        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 42, 0xabcd).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
        let mut chan = ReliableChannel::new();
        let outcome = replay_under_rollout(
            &mut rt,
            &r.output,
            &mut chan,
            &config,
            &ReplayConfig::default().with_packets(30_000).with_workers(3),
        )
        .unwrap();
        assert!(outcome.rollout.committed, "{:?}", outcome.rollout);
        assert_eq!(outcome.replay.mixed_epoch_exposure, 0);
        assert_eq!(
            outcome.replay.delivered + outcome.replay.refused_epoch_mismatch,
            30_000
        );
        // Post-rollout the plane serves the new epoch everywhere.
        assert!(rt.epochs_coherent());
    }

    #[test]
    fn lossy_rollback_under_traffic_restores_the_old_epoch() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();
        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 7, 0x0a00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        let mut chan = LossyChannel::new(3).with_switch_death("Agg4", 1);
        let config = RolloutConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(50),
            ..Default::default()
        };
        let outcome = replay_under_rollout(
            &mut rt,
            &r.output,
            &mut chan,
            &config,
            &ReplayConfig::default().with_packets(30_000).with_workers(3),
        )
        .unwrap();
        assert!(outcome.rollout.rolled_back, "{:?}", outcome.rollout);
        assert_eq!(outcome.replay.mixed_epoch_exposure, 0);
        assert_eq!(rt.epoch(), epoch_before);
        // After align, every plane switch is back on the old epoch.
        let plane = LiveTrafficPlane::for_replay(&rt, &CompiledDeployment::new(rt.output()));
        for sw in ["Agg3", "Agg4", "ToR3", "ToR4"] {
            if let Some(epoch) = plane.serving_epoch(sw) {
                assert_eq!(epoch, epoch_before, "{sw} must serve the prior epoch");
            }
        }
    }

    #[test]
    fn traffic_channel_mirrors_duplicates_and_ignores_drops() {
        let out = Compiler::new().compile(&lb_request()).unwrap();
        let rt = Runtime::new(&out);
        let dep = CompiledDeployment::new(&out);
        let plane = LiveTrafficPlane::for_rollout(&rt, &dep, &dep);
        let epoch0 = plane.serving_epoch("Agg3").unwrap();
        // Hand-deliver a prepare+commit pair for the next epoch.
        let staged = DataPlaneState::new();
        plane.apply(&ControlMsg {
            switch: "Agg3".into(),
            epoch: epoch0 + 1,
            token: 1,
            op: ControlOp::Prepare {
                staged: staged.clone(),
            },
        });
        assert_eq!(plane.serving_epoch("Agg3"), Some(epoch0), "prepare stages");
        let commit = ControlMsg {
            switch: "Agg3".into(),
            epoch: epoch0 + 1,
            token: 2,
            op: ControlOp::Commit,
        };
        plane.apply(&commit);
        plane.apply(&commit); // duplicate: token-idempotent
        assert_eq!(plane.serving_epoch("Agg3"), Some(epoch0 + 1));
        // Rollback restores the retained prior.
        plane.apply(&ControlMsg {
            switch: "Agg3".into(),
            epoch: epoch0 + 1,
            token: 3,
            op: ControlOp::Rollback,
        });
        assert_eq!(plane.serving_epoch("Agg3"), Some(epoch0));
    }
}
