#![warn(missing_docs)]
//! # lyra — the Lyra compiler
//!
//! A Rust reproduction of *Lyra: A Cross-Platform Language and Compiler for
//! Data Plane Programming on Heterogeneous ASICs* (SIGCOMM 2020): a
//! high-level, chip-neutral data-plane language with a *one-big-pipeline*
//! abstraction, compiled into multiple pieces of runnable chip-specific
//! code (P4₁₄, P4₁₆, NPL) deployed across a heterogeneous data center
//! network.
//!
//! The pipeline mirrors the paper's Figure 3:
//!
//! ```text
//! Lyra program ─▶ checker ─▶ preprocessor ─▶ code analyzer   (front-end)
//!                     │                            │
//! algorithm scopes ───┤        context-aware IR ◀──┘
//! topology & config ──┴─▶ synthesizer ─▶ SMT encoding ─▶ solver
//!                                   │
//!                       translator ─┴─▶ P4/NPL code per switch (back-end)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use lyra::{Compiler, CompileRequest};
//! use lyra_topo::figure1_network;
//!
//! let program = r#"
//!     pipeline[DEMO]{ filter };
//!     algorithm filter {
//!         extern list<bit[32] ip>[256] watch_list;
//!         if (ipv4.src_ip in watch_list) {
//!             int_enable = 1;
//!         }
//!     }
//! "#;
//! let scopes = "filter: [ ToR* | PER-SW | - ]";
//! let out = Compiler::new()
//!     .compile(&CompileRequest::new(program, scopes, figure1_network()))
//!     .expect("compiles");
//! assert_eq!(out.artifacts.len(), 4); // one program per ToR switch
//! ```
//!
//! ## Diagnostics
//!
//! Every failure carries structured [`lyra_diag::Diagnostic`]s with stable
//! `LYR0xxx` codes and byte spans into the program or scope source; render
//! them with [`CompileError::render`] against
//! [`CompileRequest::source_map`]:
//!
//! ```
//! use lyra::{Compiler, CompileRequest};
//! use lyra_topo::figure1_network;
//!
//! let req = CompileRequest::new(
//!     "pipeline[P]{a}; algorithm a { x = undefined_fn(); }",
//!     "a: [ ToR* | PER-SW | - ]",
//!     figure1_network(),
//! );
//! let err = Compiler::new().compile(&req).unwrap_err();
//! let rendered = err.render(&req.source_map());
//! assert!(rendered.contains("error[LYR0103]"));
//! assert!(rendered.contains("^^^")); // the offending span, rustc-style
//! ```

pub mod cache;
pub mod channel;
pub mod dataplane;
pub mod fault;
pub mod health;
pub mod oracle;
pub mod recovery;
pub mod rollout;
pub mod runtime;

pub use cache::{synth_key, SynthCache};
pub use channel::{ControlChannel, ControlMsg, ControlOp, Delivery, LossyChannel, ReliableChannel};
pub use dataplane::{
    replay_compiled, replay_interpreted, replay_under_recovery, replay_under_rollout,
    CompiledDeployment, LiveTrafficPlane, RecoveryReplayOutcome, ReplayConfig, ReplayReport,
    RolloutReplayOutcome, TrafficChannel,
};
pub use fault::{DriftFinding, DriftKind, DriftOp, FaultRecompile, PlacementDiff};
pub use health::{
    run_selfheal, ChaosChannel, ChaosEvent, ChaosSchedule, HealthConfig, HealthEvent,
    HealthMonitor, HealthReport, HealthState, PlanOutcome, ProbeOutcome, RemediationPlan,
    RemediationReport, SelfHealConfig, SelfHealOutcome, SelfHealer, Target, TargetStatus,
};
pub use oracle::{check_output, OracleConfig, OracleReport};
pub use recovery::{AuditReport, RecoveryReport, SwitchProbe};
pub use rollout::{
    CrashPlan, CrashPoint, FileIntentStore, IntentRecord, IntentStore, MemIntentStore,
    RolloutConfig, RolloutReport, SwitchRollout,
};
pub use runtime::{Runtime, RuntimeError};

use std::sync::Arc;
use std::time::{Duration, Instant};

pub use lyra_codegen::{Artifact, CodeSummary};
pub use lyra_diag::{Diagnostic, Phase, SourceId, SourceMap};
pub use lyra_solver::{ClauseStore, SearchStats};
pub use lyra_synth::{
    Backend, DegradeRung, EncodeOptions, Objective, P4Options, Placement, SolveProfile,
    SolverStrategy,
};
pub use lyra_topo::{DegradeReport, FaultSet, ScopeHealth};

use lyra_diag::codes;
use lyra_diag::json::{Object, Value};
use lyra_ir::IrProgram;
use lyra_topo::{resolve_scope, resolve_scope_degraded, ResolvedScope, Topology};

/// [`SourceId`] of the Lyra program source inside
/// [`CompileRequest::source_map`].
pub const PROGRAM_SOURCE: SourceId = SourceId(0);
/// [`SourceId`] of the scope specification inside
/// [`CompileRequest::source_map`].
pub const SCOPES_SOURCE: SourceId = SourceId(1);

/// A compilation request: the three inputs of Figure 3, plus the
/// [`SolveProfile`] describing how to discharge the placement constraints
/// (strategy, watchdog limits, and the datacenter-scale accelerations).
pub struct CompileRequest<'a> {
    /// Lyra program source.
    pub program: &'a str,
    /// Algorithm scope specification (§3.3 / Figure 7 syntax).
    pub scopes: &'a str,
    /// Target network topology.
    pub topology: Topology,
    /// How to solve: strategy, deadline, decision budget, symmetry
    /// breaking, decomposition, warm start. The default is a portfolio race
    /// with every scale acceleration on; see [`SolveProfile`] for the
    /// `fast()` / `thorough()` / `deadline(d)` presets.
    pub profile: SolveProfile,
}

impl<'a> CompileRequest<'a> {
    /// Bundle the three compiler inputs (default solve profile).
    pub fn new(program: &'a str, scopes: &'a str, topology: Topology) -> Self {
        CompileRequest {
            program,
            scopes,
            topology,
            profile: SolveProfile::default(),
        }
    }

    /// Select the complete solver configuration for this request.
    ///
    /// ```
    /// use lyra::{CompileRequest, SolveProfile};
    /// use lyra_topo::figure1_network;
    ///
    /// let req = CompileRequest::new("pipeline[P]{a}; algorithm a { x = 1; }",
    ///                               "a: [ ToR1 | PER-SW | - ]",
    ///                               figure1_network())
    ///     .with_solve_profile(SolveProfile::deadline(std::time::Duration::from_secs(2)));
    /// assert!(req.profile.deadline.is_some());
    /// ```
    pub fn with_solve_profile(mut self, profile: SolveProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Deprecated alias: set the strategy through
    /// [`CompileRequest::with_solve_profile`] instead.
    ///
    /// ```
    /// #![allow(deprecated)]
    /// use lyra::{CompileRequest, SolverStrategy};
    /// use lyra_topo::figure1_network;
    ///
    /// let req = CompileRequest::new("pipeline[P]{a}; algorithm a { x = 1; }",
    ///                               "a: [ ToR1 | PER-SW | - ]",
    ///                               figure1_network())
    ///     .with_solver_strategy(SolverStrategy::Sequential)
    ///     .with_deadline(std::time::Duration::from_secs(1))
    ///     .with_decision_budget(10_000);
    /// assert_eq!(req.profile.strategy, SolverStrategy::Sequential);
    /// ```
    #[deprecated(since = "0.2.0", note = "use `with_solve_profile`")]
    pub fn with_solver_strategy(mut self, strategy: SolverStrategy) -> Self {
        self.profile.strategy = strategy;
        self
    }

    /// Deprecated alias: set the deadline through
    /// [`CompileRequest::with_solve_profile`] instead.
    #[deprecated(since = "0.2.0", note = "use `with_solve_profile`")]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.profile.deadline = Some(deadline);
        self
    }

    /// Deprecated alias: set the budget through
    /// [`CompileRequest::with_solve_profile`] instead.
    #[deprecated(since = "0.2.0", note = "use `with_solve_profile`")]
    pub fn with_decision_budget(mut self, decisions: u64) -> Self {
        self.profile.decision_budget = Some(decisions);
        self
    }

    /// A [`SourceMap`] over this request's two text inputs, for rendering
    /// diagnostics: the program registers as [`PROGRAM_SOURCE`], the scope
    /// specification as [`SCOPES_SOURCE`].
    pub fn source_map(&self) -> SourceMap {
        let mut sm = SourceMap::new();
        let p = sm.add("<program>", self.program);
        let s = sm.add("<scopes>", self.scopes);
        debug_assert_eq!((p, s), (PROGRAM_SOURCE, SCOPES_SOURCE));
        sm
    }
}

/// Wall-clock timing of each compiler phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Parsing the program source.
    pub parse: Duration,
    /// Semantic checking.
    pub check: Duration,
    /// Lowering to the context-aware IR (SSA + inference).
    pub lower: Duration,
    /// Scope parsing and topology resolution.
    pub scopes: Duration,
    /// Synthesis + encoding + solving.
    pub synth: Duration,
    /// Translation to chip-specific code.
    pub codegen: Duration,
    /// End-to-end.
    pub total: Duration,
    /// Synthesis-cache hits this compile (0 unless a [`SynthCache`] is
    /// registered with [`Compiler::with_synth_cache`]).
    pub synth_cache_hits: u64,
    /// Synthesis-cache misses this compile.
    pub synth_cache_misses: u64,
    /// Warm-start clause-store hits this compile: solves that replayed a
    /// learned-clause bundle from an earlier solve of the same formula
    /// (0 unless [`SolveProfile::warm_start`] is enabled).
    pub warm_hits: u64,
    /// Warm-start clause-store misses this compile.
    pub warm_misses: u64,
}

impl CompileStats {
    /// Front-end total (parse + check + lower), the paper's "checker +
    /// preprocessor + code analyzer" grouping.
    pub fn frontend(&self) -> Duration {
        self.parse + self.check + self.lower
    }

    /// Phase/duration pairs in pipeline order.
    pub fn phases(&self) -> [(Phase, Duration); 6] {
        [
            (Phase::Parse, self.parse),
            (Phase::Check, self.check),
            (Phase::Lower, self.lower),
            (Phase::Scopes, self.scopes),
            (Phase::Solve, self.synth),
            (Phase::Codegen, self.codegen),
        ]
    }
}

/// Resource utilization of one switch in the solved placement, against its
/// chip's budgets — Figure 9's per-program columns, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceUtilization {
    /// Switch name.
    pub switch: String,
    /// ASIC model name.
    pub asic: String,
    /// Match-action tables placed / chip capacity.
    pub tables: (u64, u64),
    /// SRAM blocks consumed / chip capacity.
    pub sram_blocks: (u64, u64),
    /// Pipeline stages used (longest dependency chain) / stages available.
    pub stages: (u64, u64),
    /// Actions placed / chip capacity.
    pub actions: (u64, u64),
    /// Extern table entries hosted on this switch.
    pub extern_entries: u64,
}

impl ResourceUtilization {
    fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("switch", Value::String(self.switch.clone()));
        o.push("asic", Value::String(self.asic.clone()));
        for (key, (used, cap)) in [
            ("tables", self.tables),
            ("sram_blocks", self.sram_blocks),
            ("stages", self.stages),
            ("actions", self.actions),
        ] {
            let mut pair = Object::new();
            pair.push("used", Value::Number(used as f64));
            pair.push("cap", Value::Number(cap as f64));
            o.push(key, Value::Object(pair));
        }
        o.push("extern_entries", Value::Number(self.extern_entries as f64));
        Value::Object(o)
    }
}

/// Observability record of one compile run: phase timings, solver effort,
/// and per-switch resource utilization. Obtain one from
/// [`CompileOutput::session`]; serialize it with [`CompileSession::to_json`]
/// (this is what `lyrac --emit-stats` writes).
///
/// ```
/// use lyra::{Compiler, CompileRequest};
/// use lyra_topo::figure1_network;
///
/// let out = Compiler::new()
///     .compile(&CompileRequest::new(
///         "pipeline[P]{a}; algorithm a { x = 1; }",
///         "a: [ ToR1 | PER-SW | - ]",
///         figure1_network(),
///     ))
///     .unwrap();
/// let session = out.session();
/// assert!(session.stats.total >= session.stats.synth);
/// let json = session.to_json().to_pretty();
/// assert!(json.contains("\"solver\""));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CompileSession {
    /// Per-phase wall-clock timings.
    pub stats: CompileStats,
    /// Aggregated solver search statistics (summed across every solver
    /// invocation the compile made).
    pub solver: SearchStats,
    /// Per-switch resource utilization of the solved placement.
    pub utilization: Vec<ResourceUtilization>,
    /// The transactional rollout that applied this compile to a running
    /// deployment, when one was driven (`lyrac --rollout-fail`); its
    /// retries and rollbacks render under `"rollout"` in the JSON.
    pub rollout: Option<RolloutReport>,
    /// The closed self-healing loop driven against this compile, when one
    /// ran (`lyrac --monitor`); detection verdicts and remediation rounds
    /// render under `"selfheal"` in the JSON.
    pub selfheal: Option<SelfHealOutcome>,
}

impl CompileSession {
    /// Attach the [`RolloutReport`] of the rollout that deployed this
    /// compile, so session JSON carries the full update story.
    pub fn with_rollout(mut self, report: RolloutReport) -> Self {
        self.rollout = Some(report);
        self
    }

    /// Attach the [`SelfHealOutcome`] of a monitoring run driven against
    /// this compile, so session JSON carries the detection and
    /// remediation story.
    pub fn with_selfheal(mut self, outcome: SelfHealOutcome) -> Self {
        self.selfheal = Some(outcome);
        self
    }
    /// Serialize to a JSON value (phases in microseconds).
    pub fn to_json(&self) -> Value {
        let mut phases = Object::new();
        for (ph, d) in self.stats.phases() {
            phases.push(ph.as_str(), Value::Number(d.as_micros() as f64));
        }
        phases.push("total", Value::Number(self.stats.total.as_micros() as f64));
        let mut solver = Object::new();
        solver.push("decisions", Value::Number(self.solver.decisions as f64));
        solver.push(
            "propagations",
            Value::Number(self.solver.propagations as f64),
        );
        solver.push("conflicts", Value::Number(self.solver.conflicts as f64));
        solver.push("learned", Value::Number(self.solver.learned as f64));
        solver.push("restarts", Value::Number(self.solver.restarts as f64));
        solver.push("reductions", Value::Number(self.solver.reductions as f64));
        solver.push(
            "clauses_deleted",
            Value::Number(self.solver.clauses_deleted as f64),
        );
        solver.push(
            "workers_spawned",
            Value::Number(self.solver.workers_spawned as f64),
        );
        solver.push(
            "workers_cancelled",
            Value::Number(self.solver.workers_cancelled as f64),
        );
        let mut cache = Object::new();
        cache.push("hits", Value::Number(self.stats.synth_cache_hits as f64));
        cache.push(
            "misses",
            Value::Number(self.stats.synth_cache_misses as f64),
        );
        let mut warm = Object::new();
        warm.push("hits", Value::Number(self.stats.warm_hits as f64));
        warm.push("misses", Value::Number(self.stats.warm_misses as f64));
        let mut o = Object::new();
        o.push("phases_us", Value::Object(phases));
        o.push("solver", Value::Object(solver));
        o.push("synth_cache", Value::Object(cache));
        o.push("warm_start", Value::Object(warm));
        o.push(
            "utilization",
            Value::Array(self.utilization.iter().map(|u| u.to_json()).collect()),
        );
        if let Some(rollout) = &self.rollout {
            o.push("rollout", rollout.to_json());
        }
        if let Some(selfheal) = &self.selfheal {
            o.push("selfheal", selfheal.to_json());
        }
        Value::Object(o)
    }
}

/// Event sink for compile-phase progress. Implement this to observe a
/// compilation as it runs (progress bars, tracing, CI timing) without the
/// compiler depending on any logging framework; register it with
/// [`Compiler::with_observer`].
pub trait CompileObserver: Send + Sync {
    /// A phase is about to run.
    fn on_phase_start(&self, phase: Phase) {
        let _ = phase;
    }
    /// A phase finished.
    fn on_phase_end(&self, phase: Phase, elapsed: Duration) {
        let _ = (phase, elapsed);
    }
    /// A transactional rollout finished (committed or rolled back). Fired
    /// by [`Runtime::apply_rollout`] and the failover re-sync paths when
    /// an observer is registered via [`Runtime::set_observer`], after the
    /// `Phase::Rollout` start/end pair.
    fn on_rollout(&self, report: &RolloutReport) {
        let _ = report;
    }
}

/// A successful compilation.
#[derive(Debug)]
pub struct CompileOutput {
    /// One artifact (code + control-plane stub) per switch receiving code.
    pub artifacts: Vec<Artifact>,
    /// The solved placement (tables, entries, carried values per switch).
    pub placement: Placement,
    /// Flow paths per algorithm (switch names in traversal order) — the
    /// control-plane runtime replicates logical table entries so every
    /// path sees the full table.
    pub flow_paths: std::collections::BTreeMap<String, Vec<Vec<String>>>,
    /// The context-aware IR (useful for inspection and tests).
    pub ir: IrProgram,
    /// Phase timings.
    pub stats: CompileStats,
    /// Aggregated solver search statistics.
    pub solver: SearchStats,
    /// Per-switch resource utilization against chip budgets.
    pub utilization: Vec<ResourceUtilization>,
    /// Checker warnings (implicit metadata and similar), as structured
    /// diagnostics spanned into the program source.
    pub warnings: Vec<Diagnostic>,
    /// Which degradation-ladder rung produced the placement, when the
    /// solver watchdog fired. `None` for a fully solver-verified placement;
    /// `Some(_)` is mirrored by a `LYR0550` warning in
    /// [`CompileOutput::warnings`].
    pub degraded: Option<DegradeRung>,
}

impl CompileOutput {
    /// The observability record of this run (timings, solver effort,
    /// utilization) — see [`CompileSession`].
    pub fn session(&self) -> CompileSession {
        CompileSession {
            stats: self.stats,
            solver: self.solver,
            utilization: self.utilization.clone(),
            rollout: None,
            selfheal: None,
        }
    }

    /// Validate every artifact and return per-switch summaries.
    pub fn validate_all(&self) -> Result<Vec<(String, CodeSummary)>, CompileError> {
        let mut out = Vec::new();
        for a in &self.artifacts {
            let s = lyra_codegen::validate(a).map_err(|e| {
                CompileError::Codegen(vec![Diagnostic::error(
                    codes::VALIDATE,
                    format!("{} ({}): {e}", a.switch, a.asic),
                )])
            })?;
            out.push((a.switch.clone(), s));
        }
        Ok(out)
    }

    /// Total tables across all generated programs.
    pub fn total_tables(&self) -> u64 {
        self.placement.total_tables()
    }
}

/// Compilation failure, by phase. Every variant carries the structured
/// diagnostics of that phase; use [`CompileError::render`] with the
/// request's [`CompileRequest::source_map`] for rustc-style snippets, or
/// [`CompileError::to_json`] for machine consumption.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// Front-end failure (parse / check / lower).
    Frontend(Vec<Diagnostic>),
    /// Scope parsing or resolution failure.
    Scope(Vec<Diagnostic>),
    /// Synthesis / solving failure (including infeasible placements).
    Synth(Vec<Diagnostic>),
    /// Code generation or validation failure.
    Codegen(Vec<Diagnostic>),
}

impl CompileError {
    /// The diagnostics carried by this error.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        match self {
            CompileError::Frontend(d)
            | CompileError::Scope(d)
            | CompileError::Synth(d)
            | CompileError::Codegen(d) => d,
        }
    }

    /// Name of the failing phase group.
    pub fn phase_name(&self) -> &'static str {
        match self {
            CompileError::Frontend(_) => "front-end",
            CompileError::Scope(_) => "scope",
            CompileError::Synth(_) => "synthesis",
            CompileError::Codegen(_) => "codegen",
        }
    }

    /// Render every diagnostic with source snippets (rustc-style).
    pub fn render(&self, sources: &SourceMap) -> String {
        sources.render_all(self.diagnostics())
    }

    /// Serialize as `{"phase": ..., "diagnostics": [...]}`.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("phase", Value::String(self.phase_name().to_string()));
        o.push(
            "diagnostics",
            Value::Array(self.diagnostics().iter().map(|d| d.to_json()).collect()),
        );
        Value::Object(o)
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.phase_name())?;
        for (i, d) in self.diagnostics().iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}", d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.diagnostics()
            .first()
            .map(|d| d as &(dyn std::error::Error + 'static))
    }
}

/// The compiler: configuration plus a [`Compiler::compile`] entry point.
#[derive(Default, Clone)]
pub struct Compiler {
    backend: Backend,
    encode: EncodeOptions,
    observer: Option<Arc<dyn CompileObserver>>,
    cache: Option<Arc<SynthCache>>,
    /// Learned-clause store shared by every compile this `Compiler` (and
    /// its clones) runs. Consulted only when the request's
    /// [`SolveProfile::warm_start`] is on; keyed by encoding fingerprint so
    /// a changed formula can never replay stale clauses.
    warm: Arc<ClauseStore>,
}

impl Compiler {
    /// A compiler with default options (native solver, feasibility
    /// objective, parser hoisting on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the solver backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Use the native solver (the default; kept for call-site clarity).
    pub fn native_backend(self) -> Self {
        self.with_backend(Backend::Native)
    }

    /// Set the optimization objective (§6).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.encode.objective = objective;
        self
    }

    /// Toggle the Appendix C.1 parser-hoisting optimization.
    pub fn with_parser_hoisting(mut self, on: bool) -> Self {
        self.encode.p4.parser_hoisting = on;
        self
    }

    /// Allow one recirculation pass per switch, doubling the usable stage
    /// depth (§8). Code generation emits the `recirculate` call on plans
    /// that need the second pass.
    pub fn with_recirculation(mut self, on: bool) -> Self {
        self.encode.allow_recirculation = on;
        self
    }

    /// Enable the full per-stage assignment encoding (eqs. 13–15): exact
    /// start/end stages and per-stage entry distribution per table.
    pub fn with_stage_detail(mut self, on: bool) -> Self {
        self.encode.stage_detail = on;
        self
    }

    /// Register an event sink receiving phase start/end notifications.
    pub fn with_observer(mut self, observer: Arc<dyn CompileObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Share a [`SynthCache`] across compiles: synthesis results are
    /// memoized by content hash ([`synth_key`]), so recompiling an
    /// unchanged problem reuses the solved placement without any solver
    /// effort. Hits and misses surface in
    /// [`CompileStats::synth_cache_hits`] / `synth_cache_misses`.
    pub fn with_synth_cache(mut self, cache: Arc<SynthCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Deprecated alias of [`Compiler::with_backend`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_backend`")]
    pub fn backend(self, backend: Backend) -> Self {
        self.with_backend(backend)
    }

    /// Deprecated alias of [`Compiler::with_objective`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_objective`")]
    pub fn objective(self, objective: Objective) -> Self {
        self.with_objective(objective)
    }

    /// Deprecated alias of [`Compiler::with_parser_hoisting`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_parser_hoisting`")]
    pub fn parser_hoisting(self, on: bool) -> Self {
        self.with_parser_hoisting(on)
    }

    /// Deprecated alias of [`Compiler::with_recirculation`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_recirculation`")]
    pub fn allow_recirculation(self, on: bool) -> Self {
        self.with_recirculation(on)
    }

    /// Deprecated alias of [`Compiler::with_stage_detail`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_stage_detail`")]
    pub fn stage_detail(self, on: bool) -> Self {
        self.with_stage_detail(on)
    }

    /// Recompile after a program change, seeded with the previous solved
    /// placement so unchanged instructions tend to stay on their switches
    /// (§8 "Synthesizing incremental changes").
    pub fn compile_incremental(
        &self,
        req: &CompileRequest,
        previous: &Placement,
    ) -> Result<CompileOutput, CompileError> {
        self.compile_inner(req, Some(previous), false)
    }

    /// Compile a request end to end.
    pub fn compile(&self, req: &CompileRequest) -> Result<CompileOutput, CompileError> {
        self.compile_inner(req, None, false)
    }

    /// Run `f` as phase `ph`, notifying the observer and timing it.
    fn phase<T>(&self, ph: Phase, f: impl FnOnce() -> T) -> (T, Duration) {
        if let Some(obs) = &self.observer {
            obs.on_phase_start(ph);
        }
        let t = Instant::now();
        let out = f();
        let elapsed = t.elapsed();
        if let Some(obs) = &self.observer {
            obs.on_phase_end(ph, elapsed);
        }
        (out, elapsed)
    }

    /// Synthesize through the cache (when configured): consult it by
    /// content key, fall back to a real [`lyra_synth::synthesize_full`]
    /// run, and memoize successes. Returns the result plus whether it was
    /// a cache hit — a hit spent no solver effort, so the caller must not
    /// absorb its (historical) [`SearchStats`].
    #[allow(clippy::too_many_arguments)]
    fn synthesize_cached(
        &self,
        ir: &IrProgram,
        topo: &Topology,
        scopes: &[ResolvedScope],
        opts: &EncodeOptions,
        strategy: lyra_synth::SolverStrategy,
        previous: Option<&Placement>,
        limits: &lyra_synth::SynthLimits,
    ) -> Result<(Arc<lyra_synth::SynthResult>, bool), lyra_synth::SynthError> {
        let key = self
            .cache
            .as_ref()
            .map(|_| cache::synth_key(ir, topo, scopes, opts, &self.backend));
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            if let Some(hit) = cache.lookup(key) {
                return Ok((hit, true));
            }
        }
        let result = Arc::new(lyra_synth::synthesize_limited(
            ir,
            topo,
            scopes,
            opts,
            &self.backend,
            strategy,
            previous,
            limits,
        )?);
        // Degraded results never enter the cache: the key ignores limits,
        // so a later unlimited compile of the same problem must not be
        // served a watchdog fallback placement.
        if result.degraded.is_none() {
            if let (Some(cache), Some(key)) = (&self.cache, key) {
                cache.insert(key, result.clone());
            }
        }
        Ok((result, false))
    }

    fn compile_inner(
        &self,
        req: &CompileRequest,
        previous: Option<&Placement>,
        lenient_scopes: bool,
    ) -> Result<CompileOutput, CompileError> {
        let t0 = Instant::now();
        let mut stats = CompileStats::default();
        let profile = &req.profile;
        // The watchdog's limits. The grace window for the sequential-restart
        // rung scales with the requested deadline (a 1 ms deadline should
        // still answer within ~100 ms; a 10 s one can afford a longer
        // retry), clamped so it is never uselessly short nor unbounded.
        let limits = lyra_synth::SynthLimits {
            deadline: profile.deadline.map(|d| t0 + d),
            max_decisions: profile.decision_budget,
            grace: match (profile.deadline, profile.decision_budget) {
                (Some(d), _) => (d * 4).clamp(Duration::from_millis(40), Duration::from_secs(5)),
                (None, Some(_)) => Duration::from_secs(5),
                (None, None) => Duration::ZERO,
            },
            decomposition: profile.decomposition,
            warm: profile.warm_start.then(|| self.warm.clone()),
        };
        // The request's symmetry toggle rides into the encoder through the
        // options (and therefore into the synthesis-cache key).
        let encode_opts = {
            let mut e = self.encode.clone();
            e.symmetry_breaking = profile.symmetry_breaking;
            e
        };
        let warm_before = (self.warm.hit_count(), self.warm.miss_count());

        // --- Front-end (checker + preprocessor + code analyzer) ------------
        let (prog, t_parse) = self.phase(Phase::Parse, || {
            lyra_lang::parse_program(req.program).map_err(|e| {
                CompileError::Frontend(vec![e.to_diagnostic().attach_source(PROGRAM_SOURCE)])
            })
        });
        stats.parse = t_parse;
        let prog = prog?;

        let (info, t_check) = self.phase(Phase::Check, || {
            lyra_lang::check_program(&prog).map_err(|e| {
                CompileError::Frontend(
                    e.errors
                        .iter()
                        .map(|d| d.clone().attach_source(PROGRAM_SOURCE))
                        .collect(),
                )
            })
        });
        stats.check = t_check;
        let info = info?;
        let warnings: Vec<Diagnostic> = info
            .warnings
            .iter()
            .map(|w| w.clone().attach_source(PROGRAM_SOURCE))
            .collect();

        let (ir, t_lower) = self.phase(Phase::Lower, || {
            lyra_ir::frontend_ast(&prog).map_err(|e| {
                CompileError::Frontend(
                    e.to_diagnostics()
                        .into_iter()
                        .map(|d| d.attach_source(PROGRAM_SOURCE))
                        .collect(),
                )
            })
        });
        stats.lower = t_lower;
        let ir = ir?;

        // --- Scopes --------------------------------------------------------
        let (resolved, t_scopes) = self.phase(Phase::Scopes, || {
            let scope_specs = lyra_lang::parse_scopes(req.scopes).map_err(|e| {
                CompileError::Scope(vec![e.to_diagnostic().attach_source(SCOPES_SOURCE)])
            })?;
            if scope_specs.is_empty() {
                return Err(CompileError::Scope(vec![Diagnostic::error(
                    codes::SCOPE_MISSING,
                    "no algorithm scopes specified",
                )
                .with_note(
                    "every pipeline algorithm needs a `name: [ region | mode | paths ]` line",
                )]));
            }
            // Every algorithm reachable from a pipeline needs a scope.
            let mut missing: Vec<Diagnostic> = Vec::new();
            for p in &ir.pipelines {
                for a in &p.algorithms {
                    if !scope_specs.iter().any(|s| &s.algorithm == a) {
                        missing.push(
                            Diagnostic::error(
                                codes::SCOPE_MISSING,
                                format!("algorithm `{a}` (pipeline `{}`) has no scope", p.name),
                            )
                            .with_note(format!(
                                "add a line like `{a}: [ ToR* | PER-SW | - ]` to the scope \
                                 specification"
                            )),
                        );
                    }
                }
            }
            if !missing.is_empty() {
                return Err(CompileError::Scope(missing));
            }
            scope_specs
                .iter()
                .map(|s| {
                    if lenient_scopes {
                        // Failover recompilation: tolerate MULTI-SW direction
                        // endpoints that the fault removed, as long as at
                        // least one ingress and one egress survive.
                        resolve_scope_degraded(&req.topology, s)
                    } else {
                        resolve_scope(&req.topology, s)
                    }
                })
                .collect::<Result<Vec<ResolvedScope>, _>>()
                .map_err(|e| {
                    CompileError::Scope(vec![e.to_diagnostic().attach_source(SCOPES_SOURCE)])
                })
        });
        stats.scopes = t_scopes;
        let resolved = resolved?;

        // --- Back-end ------------------------------------------------------
        // PER-SW-only workloads decompose per switch: every switch of a
        // scope hosts the full algorithm independently, so identical
        // (ASIC, algorithm-set) groups share one synthesis run. This is the
        // paper's explanation for Figure 10's flat PER-SW curve ("all the
        // switches have the same program and Lyra can generate the program
        // for each switch in parallel").
        let all_per_sw = resolved
            .iter()
            .all(|s| s.deploy == lyra_lang::DeployMode::PerSwitch)
            && matches!(self.encode.objective, Objective::Feasible);
        let t1 = Instant::now();
        let (placement, artifacts, solver, t_synth, t_codegen, hits, misses, degraded) =
            if all_per_sw {
                self.compile_per_switch(&ir, req, &resolved, &encode_opts, &limits)?
            } else {
                if let Some(obs) = &self.observer {
                    obs.on_phase_start(Phase::Solve);
                }
                let (synth, was_hit) = self
                    .synthesize_cached(
                        &ir,
                        &req.topology,
                        &resolved,
                        &encode_opts,
                        profile.strategy,
                        previous,
                        &limits,
                    )
                    .map_err(|e| CompileError::Synth(e.to_diagnostics()))?;
                let t_synth = t1.elapsed();
                if let Some(obs) = &self.observer {
                    obs.on_phase_end(Phase::Solve, t_synth);
                }
                // A cache hit spent no solver effort this compile — its stats
                // belong to the run that populated the cache.
                let solver = if was_hit {
                    SearchStats::default()
                } else {
                    synth.stats
                };
                let (hits, misses) = match (&self.cache, was_hit) {
                    (None, _) => (0, 0),
                    (Some(_), true) => (1, 0),
                    (Some(_), false) => (0, 1),
                };
                let (artifacts, t_codegen) = self.phase(Phase::Codegen, || {
                    lyra_codegen::generate(&ir, &req.topology, &synth).map_err(|e| {
                        CompileError::Codegen(vec![Diagnostic::error(
                            codes::CODEGEN,
                            e.to_string(),
                        )])
                    })
                });
                // A hit's rung (always `None` by the cache invariant) must
                // not be confused with this compile's own outcome.
                let degraded = if was_hit { None } else { synth.degraded };
                (
                    synth.placement.clone(),
                    artifacts?,
                    solver,
                    t_synth,
                    t_codegen,
                    hits,
                    misses,
                    degraded,
                )
            };
        stats.synth = t_synth;
        stats.codegen = t_codegen;
        stats.synth_cache_hits = hits;
        stats.synth_cache_misses = misses;
        stats.warm_hits = self.warm.hit_count().saturating_sub(warm_before.0);
        stats.warm_misses = self.warm.miss_count().saturating_sub(warm_before.1);

        let flow_paths = resolved
            .iter()
            .map(|sc| {
                (
                    sc.algorithm.clone(),
                    sc.paths
                        .iter()
                        .map(|p| {
                            p.iter()
                                .map(|&s| req.topology.switch(s).name.clone())
                                .collect()
                        })
                        .collect(),
                )
            })
            .collect();
        stats.total = t0.elapsed();
        let utilization = utilization_of(&placement, &req.topology);
        let mut warnings = warnings;
        if let Some(rung) = degraded {
            warnings.push(
                Diagnostic::warning(
                    codes::DEGRADED,
                    format!(
                        "placement produced by the degradation ladder ({rung} rung): the \
                         solver could not reach a verdict within the configured limits"
                    ),
                )
                .with_note(
                    "the generated code is deployable but may be non-optimal; recompile \
                     without a deadline for a solver-verified placement",
                ),
            );
        }
        Ok(CompileOutput {
            artifacts,
            placement,
            flow_paths,
            ir,
            stats,
            solver,
            utilization,
            warnings,
            degraded,
        })
    }

    /// PER-SW fast path: group scope switches by (ASIC model, set of
    /// algorithms), synthesize one representative per group, and replicate
    /// the plan to every member.
    #[allow(clippy::type_complexity)]
    fn compile_per_switch(
        &self,
        ir: &IrProgram,
        req: &CompileRequest,
        resolved: &[ResolvedScope],
        opts: &EncodeOptions,
        limits: &lyra_synth::SynthLimits,
    ) -> Result<
        (
            Placement,
            Vec<Artifact>,
            SearchStats,
            Duration,
            Duration,
            u64,
            u64,
            Option<DegradeRung>,
        ),
        CompileError,
    > {
        use std::collections::BTreeMap;
        let t1 = Instant::now();
        if let Some(obs) = &self.observer {
            obs.on_phase_start(Phase::Solve);
        }

        // Switch → algorithms scoped there.
        let mut algs_on: BTreeMap<lyra_topo::SwitchId, Vec<&ResolvedScope>> = BTreeMap::new();
        for scope in resolved {
            for &s in &scope.switches {
                algs_on.entry(s).or_default().push(scope);
            }
        }
        // Group key: (asic, sorted algorithm names).
        let mut groups: BTreeMap<(String, Vec<String>), Vec<lyra_topo::SwitchId>> = BTreeMap::new();
        for (&s, scopes) in &algs_on {
            let mut names: Vec<String> = scopes.iter().map(|sc| sc.algorithm.clone()).collect();
            names.sort();
            let asic = req.topology.switch(s).asic.clone();
            groups.entry((asic, names)).or_default().push(s);
        }

        // Synthesize one representative per group, on scoped threads ("Lyra
        // can generate the program for each switch in parallel" — §7.2).
        type GroupKey = (String, Vec<String>);
        let group_list: Vec<(&GroupKey, &Vec<lyra_topo::SwitchId>)> = groups.iter().collect();
        let rep_scopes_of = |rep: lyra_topo::SwitchId| -> Vec<ResolvedScope> {
            algs_on[&rep]
                .iter()
                .map(|sc| ResolvedScope {
                    algorithm: sc.algorithm.clone(),
                    switches: vec![rep],
                    deploy: sc.deploy,
                    paths: vec![vec![rep]],
                })
                .collect()
        };
        type SynthOutcome = Result<(Arc<lyra_synth::SynthResult>, bool), lyra_synth::SynthError>;
        let mut synth_results: Vec<SynthOutcome> = Vec::with_capacity(group_list.len());
        if group_list.len() > 1 {
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = group_list
                    .iter()
                    .map(|(_, members)| {
                        let rep = members[0];
                        let scopes = rep_scopes_of(rep);
                        let topology = &req.topology;
                        let strategy = req.profile.strategy;
                        s.spawn(move || {
                            self.synthesize_cached(
                                ir, topology, &scopes, opts, strategy, None, limits,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("synthesis thread"))
                    .collect::<Vec<_>>()
            });
            synth_results.extend(results);
        } else {
            for (_, members) in &group_list {
                let rep = members[0];
                let scopes = rep_scopes_of(rep);
                synth_results.push(self.synthesize_cached(
                    ir,
                    &req.topology,
                    &scopes,
                    opts,
                    req.profile.strategy,
                    None,
                    limits,
                ));
            }
        }

        let mut placement = Placement::default();
        let mut artifacts = Vec::new();
        let mut solver = SearchStats::default();
        let mut t_codegen = Duration::ZERO;
        let (mut hits, mut misses) = (0u64, 0u64);
        let mut degraded: Option<DegradeRung> = None;
        for ((_, members), synth) in group_list.iter().zip(synth_results) {
            let rep = members[0];
            let (synth, was_hit) = synth.map_err(|e| CompileError::Synth(e.to_diagnostics()))?;
            if was_hit {
                hits += 1;
            } else {
                // A cache hit spent no solver effort and, by the cache's
                // only-store-clean-results invariant, cannot have degraded
                // *this* compile — so the rung (like the stats) is absorbed
                // only from real synthesis runs, never from hits.
                degraded = worst_rung(degraded, synth.degraded);
                if self.cache.is_some() {
                    misses += 1;
                }
                solver.absorb(synth.stats);
            }
            let tc = Instant::now();
            let rep_artifacts = lyra_codegen::generate(ir, &req.topology, &synth).map_err(|e| {
                CompileError::Codegen(vec![Diagnostic::error(codes::CODEGEN, e.to_string())])
            })?;
            let rep_name = req.topology.switch(rep).name.clone();
            let rep_plan = synth.placement.switches.get(&rep_name).cloned();
            for &member in members.iter() {
                let member_name = req.topology.switch(member).name.clone();
                if let Some(plan) = &rep_plan {
                    placement.switches.insert(member_name.clone(), plan.clone());
                }
                for a in &rep_artifacts {
                    let mut a = a.clone();
                    a.code = a.code.replace(
                        &format!("program for {rep_name} "),
                        &format!("program for {member_name} "),
                    );
                    a.switch = member_name.clone();
                    artifacts.push(a);
                }
            }
            t_codegen += tc.elapsed();
        }
        let t_synth = t1.elapsed().saturating_sub(t_codegen);
        if let Some(obs) = &self.observer {
            obs.on_phase_end(Phase::Solve, t_synth);
            obs.on_phase_start(Phase::Codegen);
            obs.on_phase_end(Phase::Codegen, t_codegen);
        }
        Ok((
            placement, artifacts, solver, t_synth, t_codegen, hits, misses, degraded,
        ))
    }
}

/// The more-degraded of two ladder rungs (greedy first-fit is worse than a
/// sequential-restart solve; any rung is worse than none) — used to report
/// a single honest rung when parallel per-switch groups degrade unevenly.
fn worst_rung(a: Option<DegradeRung>, b: Option<DegradeRung>) -> Option<DegradeRung> {
    use DegradeRung::{GreedyFirstFit, SequentialRestarts};
    match (a, b) {
        (Some(GreedyFirstFit), _) | (_, Some(GreedyFirstFit)) => Some(GreedyFirstFit),
        (Some(SequentialRestarts), _) | (_, Some(SequentialRestarts)) => Some(SequentialRestarts),
        (None, None) => None,
    }
}

/// Compute per-switch utilization of a placement against chip budgets.
fn utilization_of(placement: &Placement, topo: &Topology) -> Vec<ResourceUtilization> {
    let mut out = Vec::new();
    for (name, plan) in &placement.switches {
        let Some(id) = topo.find(name) else { continue };
        let Some(chip) = lyra_chips::by_name(&topo.switch(id).asic) else {
            continue;
        };
        let u = &plan.usage;
        out.push(ResourceUtilization {
            switch: name.clone(),
            asic: chip.name.clone(),
            tables: (
                u.tables,
                chip.stages as u64 * chip.max_tables_per_stage as u64,
            ),
            sram_blocks: (u.sram_blocks, chip.total_sram_blocks()),
            stages: (u.stages.max(u.longest_code_path), chip.stages as u64),
            actions: (
                u.actions,
                chip.stages as u64 * chip.max_actions_per_stage as u64,
            ),
            extern_entries: plan.extern_entries.values().sum(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_topo::figure1_network;

    const INT_LB: &str = r#"
        pipeline[INT]{int_in};
        pipeline[LB]{loadbalancer};
        algorithm int_in {
            extern list<bit[32] ip>[256] int_watch;
            if (ipv4.src_ip in int_watch) { int_enable = 1; }
        }
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {
                ipv4.dstAddr = conn_table[hash];
            }
        }
    "#;

    const SCOPES: &str = r#"
        int_in: [ ToR* | PER-SW | - ]
        loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
    "#;

    #[test]
    fn compiles_int_plus_lb_composition() {
        let out = Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(INT_LB, SCOPES, figure1_network()))
            .unwrap();
        // INT on all 4 ToRs; LB somewhere in its scope.
        assert!(out.artifacts.len() >= 4);
        let summaries = out.validate_all().unwrap();
        for (_, s) in &summaries {
            assert!(s.tables >= 1);
        }
        // Trident-4 switches get NPL; Tofino/SiliconOne get P4.
        for a in &out.artifacts {
            match a.asic.as_str() {
                "trident4" => assert_eq!(a.lang, lyra_chips::TargetLang::Npl),
                "tofino-32q" | "tofino-64q" => {
                    assert_eq!(a.lang, lyra_chips::TargetLang::P414)
                }
                "silicon-one" => assert_eq!(a.lang, lyra_chips::TargetLang::P416),
                other => panic!("unexpected asic {other}"),
            }
        }
    }

    #[test]
    fn sequential_and_portfolio_strategies_agree() {
        let topo = figure1_network();
        let seq = Compiler::new()
            .compile(
                &CompileRequest::new(INT_LB, SCOPES, topo.clone())
                    .with_solve_profile(SolveProfile::fast()),
            )
            .unwrap();
        let par = Compiler::new()
            .compile(
                &CompileRequest::new(INT_LB, SCOPES, topo).with_solve_profile(
                    SolveProfile::default().with_strategy(SolverStrategy::Portfolio { workers: 4 }),
                ),
            )
            .unwrap();
        // Both must solve; artifact coverage (which switches get code for
        // PER-SW scopes) is identical.
        assert_eq!(seq.artifacts.len() >= 4, par.artifacts.len() >= 4);
        assert!(par.solver.workers_spawned >= 1);
        assert_eq!(seq.solver.workers_cancelled, 0);
    }

    #[test]
    fn synth_cache_hits_on_repeat_multi_sw_compile() {
        let cache = Arc::new(SynthCache::new());
        let compiler = Compiler::new().with_synth_cache(cache.clone());
        // Mixed PER-SW + MULTI-SW scopes take the single-synthesis path.
        let req = CompileRequest::new(INT_LB, SCOPES, figure1_network());
        let first = compiler.compile(&req).unwrap();
        assert_eq!(first.stats.synth_cache_hits, 0);
        assert_eq!(first.stats.synth_cache_misses, 1);
        let second = compiler.compile(&req).unwrap();
        assert_eq!(second.stats.synth_cache_hits, 1);
        assert_eq!(second.stats.synth_cache_misses, 0);
        // The hit reuses the solved placement without solver effort.
        assert_eq!(first.placement, second.placement);
        assert_eq!(second.solver.decisions, 0);
        assert_eq!(second.solver.propagations, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_hit_does_not_inherit_degraded_rung() {
        let cache = Arc::new(SynthCache::new());
        let compiler = Compiler::new().with_synth_cache(cache.clone());
        let program = "pipeline[P]{a}; algorithm a { x = 1; }";
        let scopes = "a: [ ToR1 | PER-SW | - ]";
        let limited = CompileRequest::new(program, scopes, figure1_network())
            .with_solve_profile(SolveProfile::deadline(Duration::ZERO));
        let first = compiler.compile(&limited).unwrap();
        assert!(
            first.degraded.is_some(),
            "an already-expired deadline must degrade"
        );
        // Degraded results never enter the cache…
        assert_eq!(cache.len(), 0);
        // …so an unlimited compile of the same problem populates it cleanly.
        let clean = compiler
            .compile(&CompileRequest::new(program, scopes, figure1_network()))
            .unwrap();
        assert!(clean.degraded.is_none());
        assert_eq!(cache.len(), 1);
        // A repeat limited compile hits the cache: no solver effort spent,
        // and no degraded rung inherited from any earlier compile.
        let hit = compiler.compile(&limited).unwrap();
        assert_eq!(hit.stats.synth_cache_hits, 1);
        assert_eq!(hit.degraded, None, "cache hit must not report a rung");
        assert_eq!(hit.solver.decisions, 0);
    }

    #[test]
    fn warm_start_counters_surface_in_stats_and_json() {
        let compiler = Compiler::new();
        let first = compiler
            .compile(&CompileRequest::new(INT_LB, SCOPES, figure1_network()))
            .unwrap();
        assert!(
            first.stats.warm_hits + first.stats.warm_misses >= 1,
            "the default profile consults the learned-clause store"
        );
        let json = first.session().to_json();
        let warm = json.get("warm_start").expect("warm_start object");
        assert!(warm.get("hits").is_some() && warm.get("misses").is_some());
        // thorough() turns warm start off: the store is never consulted.
        let cold = Compiler::new()
            .compile(
                &CompileRequest::new(INT_LB, SCOPES, figure1_network())
                    .with_solve_profile(SolveProfile::thorough()),
            )
            .unwrap();
        assert_eq!((cold.stats.warm_hits, cold.stats.warm_misses), (0, 0));
    }

    #[test]
    fn synth_cache_misses_on_changed_program() {
        let cache = Arc::new(SynthCache::new());
        let compiler = Compiler::new().with_synth_cache(cache.clone());
        let scopes = "a: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";
        compiler
            .compile(&CompileRequest::new(
                "pipeline[P]{a}; algorithm a { x = 1; }",
                scopes,
                figure1_network(),
            ))
            .unwrap();
        let out = compiler
            .compile(&CompileRequest::new(
                "pipeline[P]{a}; algorithm a { x = 2; }",
                scopes,
                figure1_network(),
            ))
            .unwrap();
        assert_eq!(out.stats.synth_cache_hits, 0);
        assert_eq!(out.stats.synth_cache_misses, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn session_json_carries_cache_and_portfolio_counters() {
        let out = Compiler::new()
            .compile(&CompileRequest::new(
                "pipeline[P]{a}; algorithm a { x = 1; }",
                "a: [ ToR1 | PER-SW | - ]",
                figure1_network(),
            ))
            .unwrap();
        let json = out.session().to_json();
        let solver = json.get("solver").expect("solver");
        for key in [
            "reductions",
            "clauses_deleted",
            "workers_spawned",
            "workers_cancelled",
        ] {
            assert!(solver.get(key).is_some(), "missing solver.{key}");
        }
        let cache = json.get("synth_cache").expect("synth_cache");
        assert!(cache.get("hits").is_some());
        assert!(cache.get("misses").is_some());
    }

    #[test]
    fn missing_scope_is_reported() {
        let err = Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                INT_LB,
                "int_in: [ ToR* | PER-SW | - ]",
                figure1_network(),
            ))
            .unwrap_err();
        assert!(matches!(err, CompileError::Scope(_)));
        assert!(err.to_string().contains("loadbalancer"));
        let diags = err.diagnostics();
        assert_eq!(diags[0].code, Some(codes::SCOPE_MISSING));
    }

    #[test]
    fn parse_errors_surface_as_frontend_with_span() {
        let req = CompileRequest::new(
            "algorithm { broken",
            "x: [ ToR* | - | - ]",
            figure1_network(),
        );
        let err = Compiler::new().compile(&req).unwrap_err();
        assert!(matches!(err, CompileError::Frontend(_)));
        let d = &err.diagnostics()[0];
        assert!(d.code.is_some());
        assert!(d.primary_span().is_some(), "parse errors must carry a span");
        // Rendering against the request's sources produces a snippet.
        let rendered = err.render(&req.source_map());
        assert!(rendered.contains("-->"), "rendered: {rendered}");
    }

    #[test]
    fn check_errors_span_the_program_source() {
        let req = CompileRequest::new(
            "pipeline[P]{a}; algorithm a { x = undefined_fn(); }",
            "a: [ ToR* | PER-SW | - ]",
            figure1_network(),
        );
        let err = Compiler::new().compile(&req).unwrap_err();
        let d = &err.diagnostics()[0];
        assert_eq!(d.code, Some(codes::UNKNOWN_FUNCTION));
        let span = d.primary_span().expect("span");
        assert!(req.program[span.lo as usize..span.hi as usize].contains("undefined_fn"));
    }

    #[test]
    fn scope_errors_span_the_scope_source() {
        let req = CompileRequest::new(
            "pipeline[P]{a}; algorithm a { x = 1; }",
            "a: [ NoSuchSwitch | PER-SW | - ]",
            figure1_network(),
        );
        let err = Compiler::new().compile(&req).unwrap_err();
        assert!(matches!(err, CompileError::Scope(_)));
        let d = &err.diagnostics()[0];
        let label = d.labels.first().expect("label");
        assert_eq!(label.source, Some(SCOPES_SOURCE));
    }

    #[test]
    fn stats_and_session_are_populated() {
        let out = Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                "pipeline[P]{a}; algorithm a { x = 1; }",
                "a: [ ToR1 | PER-SW | - ]",
                figure1_network(),
            ))
            .unwrap();
        assert!(out.stats.total >= out.stats.synth);
        assert!(!out.utilization.is_empty());
        let json = out.session().to_json();
        let phases = json.get("phases_us").expect("phases_us");
        assert!(phases.get("total").is_some());
        assert!(json
            .get("solver")
            .and_then(|s| s.get("decisions"))
            .is_some());
    }

    #[test]
    fn observer_sees_every_phase() {
        use std::sync::Mutex;
        #[derive(Default)]
        struct Recorder(Mutex<Vec<(Phase, bool)>>);
        impl CompileObserver for Recorder {
            fn on_phase_start(&self, phase: Phase) {
                self.0.lock().unwrap().push((phase, false));
            }
            fn on_phase_end(&self, phase: Phase, _elapsed: Duration) {
                self.0.lock().unwrap().push((phase, true));
            }
        }
        let rec = Arc::new(Recorder::default());
        Compiler::new()
            .with_observer(rec.clone())
            .compile(&CompileRequest::new(
                "pipeline[P]{a}; algorithm a { x = 1; }",
                "a: [ ToR1 | PER-SW | - ]",
                figure1_network(),
            ))
            .unwrap();
        let events = rec.0.lock().unwrap();
        for ph in [
            Phase::Parse,
            Phase::Check,
            Phase::Lower,
            Phase::Scopes,
            Phase::Solve,
        ] {
            assert!(
                events.contains(&(ph, false)) && events.contains(&(ph, true)),
                "missing events for {ph:?}: {events:?}"
            );
        }
    }

    #[test]
    fn infeasible_placements_carry_family_diagnostics() {
        let err = Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                r#"
                pipeline[P]{big};
                algorithm big {
                    extern dict<bit[32] k, bit[32] v>[100000000] huge;
                    if (k in huge) { x = 1; }
                }
                "#,
                "big: [ Agg3,Agg4,ToR3,ToR4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
                figure1_network(),
            ))
            .unwrap_err();
        assert!(matches!(err, CompileError::Synth(_)));
        assert!(err
            .diagnostics()
            .iter()
            .any(|d| d.code == Some(codes::INFEASIBLE_MEMORY)));
    }
}
