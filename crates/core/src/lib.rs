#![warn(missing_docs)]
//! # lyra — the Lyra compiler
//!
//! A Rust reproduction of *Lyra: A Cross-Platform Language and Compiler for
//! Data Plane Programming on Heterogeneous ASICs* (SIGCOMM 2020): a
//! high-level, chip-neutral data-plane language with a *one-big-pipeline*
//! abstraction, compiled into multiple pieces of runnable chip-specific
//! code (P4₁₄, P4₁₆, NPL) deployed across a heterogeneous data center
//! network.
//!
//! The pipeline mirrors the paper's Figure 3:
//!
//! ```text
//! Lyra program ─▶ checker ─▶ preprocessor ─▶ code analyzer   (front-end)
//!                     │                            │
//! algorithm scopes ───┤        context-aware IR ◀──┘
//! topology & config ──┴─▶ synthesizer ─▶ SMT encoding ─▶ solver
//!                                   │
//!                       translator ─┴─▶ P4/NPL code per switch (back-end)
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use lyra::{Compiler, CompileRequest};
//! use lyra_topo::figure1_network;
//!
//! let program = r#"
//!     pipeline[DEMO]{ filter };
//!     algorithm filter {
//!         extern list<bit[32] ip>[256] watch_list;
//!         if (ipv4.src_ip in watch_list) {
//!             int_enable = 1;
//!         }
//!     }
//! "#;
//! let scopes = "filter: [ ToR* | PER-SW | - ]";
//! let out = Compiler::new()
//!     .compile(&CompileRequest {
//!         program,
//!         scopes,
//!         topology: figure1_network(),
//!     })
//!     .expect("compiles");
//! assert_eq!(out.artifacts.len(), 4); // one program per ToR switch
//! ```

pub mod runtime;

pub use runtime::{Runtime, RuntimeError};

use std::time::{Duration, Instant};

pub use lyra_codegen::{Artifact, CodeSummary};
pub use lyra_synth::{Backend, EncodeOptions, Objective, P4Options, Placement};

use lyra_ir::IrProgram;
use lyra_topo::{resolve_scope, ResolvedScope, Topology};

/// A compilation request: the three inputs of Figure 3.
pub struct CompileRequest<'a> {
    /// Lyra program source.
    pub program: &'a str,
    /// Algorithm scope specification (§3.3 / Figure 7 syntax).
    pub scopes: &'a str,
    /// Target network topology.
    pub topology: Topology,
}

/// Wall-clock timing of each compiler phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileStats {
    /// Parse + check + lower + SSA + inference.
    pub frontend: Duration,
    /// Synthesis + encoding + solving.
    pub synth: Duration,
    /// Translation to chip-specific code.
    pub codegen: Duration,
    /// End-to-end.
    pub total: Duration,
}

/// A successful compilation.
#[derive(Debug)]
pub struct CompileOutput {
    /// One artifact (code + control-plane stub) per switch receiving code.
    pub artifacts: Vec<Artifact>,
    /// The solved placement (tables, entries, carried values per switch).
    pub placement: Placement,
    /// Flow paths per algorithm (switch names in traversal order) — the
    /// control-plane runtime replicates logical table entries so every
    /// path sees the full table.
    pub flow_paths: std::collections::BTreeMap<String, Vec<Vec<String>>>,
    /// The context-aware IR (useful for inspection and tests).
    pub ir: IrProgram,
    /// Phase timings.
    pub stats: CompileStats,
    /// Checker warnings (implicit metadata and similar).
    pub warnings: Vec<String>,
}

impl CompileOutput {
    /// Validate every artifact and return per-switch summaries.
    pub fn validate_all(&self) -> Result<Vec<(String, CodeSummary)>, CompileError> {
        let mut out = Vec::new();
        for a in &self.artifacts {
            let s = lyra_codegen::validate(a).map_err(|e| CompileError::Codegen(e.to_string()))?;
            out.push((a.switch.clone(), s));
        }
        Ok(out)
    }

    /// Total tables across all generated programs.
    pub fn total_tables(&self) -> u64 {
        self.placement.total_tables()
    }
}

/// Compilation failure, by phase.
#[derive(Debug)]
pub enum CompileError {
    /// Front-end failure (parse / check / lower).
    Frontend(String),
    /// Scope parsing or resolution failure.
    Scope(String),
    /// Synthesis / solving failure (including infeasible placements).
    Synth(String),
    /// Code generation or validation failure.
    Codegen(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Frontend(m) => write!(f, "front-end: {m}"),
            CompileError::Scope(m) => write!(f, "scope: {m}"),
            CompileError::Synth(m) => write!(f, "synthesis: {m}"),
            CompileError::Codegen(m) => write!(f, "codegen: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The compiler: configuration plus a [`Compiler::compile`] entry point.
#[derive(Default)]
pub struct Compiler {
    backend: Backend,
    encode: EncodeOptions,
}

impl Compiler {
    /// A compiler with default options (Z3 backend when the `z3-backend`
    /// feature is on — the paper's configuration — otherwise the native
    /// solver).
    pub fn new() -> Self {
        Self::default()
    }

    /// Select the solver backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Use the native solver.
    pub fn native_backend(self) -> Self {
        self.backend(Backend::Native)
    }

    /// Set the optimization objective (§6).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.encode.objective = objective;
        self
    }

    /// Toggle the Appendix C.1 parser-hoisting optimization.
    pub fn parser_hoisting(mut self, on: bool) -> Self {
        self.encode.p4.parser_hoisting = on;
        self
    }

    /// Allow one recirculation pass per switch, doubling the usable stage
    /// depth (§8). Code generation emits the `recirculate` call on plans
    /// that need the second pass.
    pub fn allow_recirculation(mut self, on: bool) -> Self {
        self.encode.allow_recirculation = on;
        self
    }

    /// Enable the full per-stage assignment encoding (eqs. 13–15): exact
    /// start/end stages and per-stage entry distribution per table.
    pub fn stage_detail(mut self, on: bool) -> Self {
        self.encode.stage_detail = on;
        self
    }

    /// Recompile after a program change, seeded with the previous solved
    /// placement so unchanged instructions tend to stay on their switches
    /// (§8 "Synthesizing incremental changes"). Hints are honored by the
    /// native backend; the Z3 backend falls back to a fresh solve.
    pub fn compile_incremental(
        &self,
        req: &CompileRequest,
        previous: &Placement,
    ) -> Result<CompileOutput, CompileError> {
        self.compile_inner(req, Some(previous))
    }

    /// Compile a request end to end.
    pub fn compile(&self, req: &CompileRequest) -> Result<CompileOutput, CompileError> {
        self.compile_inner(req, None)
    }

    fn compile_inner(
        &self,
        req: &CompileRequest,
        previous: Option<&Placement>,
    ) -> Result<CompileOutput, CompileError> {
        let t0 = Instant::now();

        // --- Front-end (checker + preprocessor + code analyzer) ------------
        let prog = lyra_lang::parse_program(req.program)
            .map_err(|e| CompileError::Frontend(e.to_string()))?;
        let info = lyra_lang::check_program(&prog)
            .map_err(|e| CompileError::Frontend(e.to_string()))?;
        let warnings: Vec<String> =
            info.warnings.iter().map(|w| w.message.clone()).collect();
        let ir = lyra_ir::frontend_ast(&prog)
            .map_err(|e| CompileError::Frontend(e.to_string()))?;
        let t_frontend = t0.elapsed();

        // --- Scopes -----------------------------------------------------------
        let scope_specs = lyra_lang::parse_scopes(req.scopes)
            .map_err(|e| CompileError::Scope(e.to_string()))?;
        if scope_specs.is_empty() {
            return Err(CompileError::Scope("no algorithm scopes specified".into()));
        }
        // Every algorithm reachable from a pipeline needs a scope.
        for p in &ir.pipelines {
            for a in &p.algorithms {
                if !scope_specs.iter().any(|s| &s.algorithm == a) {
                    return Err(CompileError::Scope(format!(
                        "algorithm `{a}` (pipeline `{}`) has no scope",
                        p.name
                    )));
                }
            }
        }
        let resolved: Vec<ResolvedScope> = scope_specs
            .iter()
            .map(|s| resolve_scope(&req.topology, s))
            .collect::<Result<_, _>>()
            .map_err(|e| CompileError::Scope(e.to_string()))?;

        // --- Back-end -----------------------------------------------------------
        // PER-SW-only workloads decompose per switch: every switch of a
        // scope hosts the full algorithm independently, so identical
        // (ASIC, algorithm-set) groups share one synthesis run. This is the
        // paper's explanation for Figure 10's flat PER-SW curve ("all the
        // switches have the same program and Lyra can generate the program
        // for each switch in parallel").
        let all_per_sw = resolved
            .iter()
            .all(|s| s.deploy == lyra_lang::DeployMode::PerSwitch)
            && matches!(self.encode.objective, Objective::Feasible);
        let t1 = Instant::now();
        let (placement, artifacts, t_synth, t_codegen) = if all_per_sw {
            self.compile_per_switch(&ir, req, &resolved)?
        } else {
            let synth = lyra_synth::synthesize_hinted(
                &ir,
                &req.topology,
                &resolved,
                &self.encode,
                &self.backend,
                previous,
            )
            .map_err(|e| CompileError::Synth(e.to_string()))?;
            let t_synth = t1.elapsed();
            let t2 = Instant::now();
            let artifacts = lyra_codegen::generate(&ir, &req.topology, &synth)
                .map_err(|e| CompileError::Codegen(e.to_string()))?;
            (synth.placement, artifacts, t_synth, t2.elapsed())
        };

        let flow_paths = resolved
            .iter()
            .map(|sc| {
                (
                    sc.algorithm.clone(),
                    sc.paths
                        .iter()
                        .map(|p| {
                            p.iter()
                                .map(|&s| req.topology.switch(s).name.clone())
                                .collect()
                        })
                        .collect(),
                )
            })
            .collect();
        Ok(CompileOutput {
            artifacts,
            placement,
            flow_paths,
            ir,
            stats: CompileStats {
                frontend: t_frontend,
                synth: t_synth,
                codegen: t_codegen,
                total: t0.elapsed(),
            },
            warnings,
        })
    }

    /// PER-SW fast path: group scope switches by (ASIC model, set of
    /// algorithms), synthesize one representative per group, and replicate
    /// the plan to every member.
    fn compile_per_switch(
        &self,
        ir: &IrProgram,
        req: &CompileRequest,
        resolved: &[ResolvedScope],
    ) -> Result<(Placement, Vec<Artifact>, Duration, Duration), CompileError> {
        use std::collections::BTreeMap;
        let t1 = Instant::now();

        // Switch → algorithms scoped there.
        let mut algs_on: BTreeMap<lyra_topo::SwitchId, Vec<&ResolvedScope>> = BTreeMap::new();
        for scope in resolved {
            for &s in &scope.switches {
                algs_on.entry(s).or_default().push(scope);
            }
        }
        // Group key: (asic, sorted algorithm names).
        let mut groups: BTreeMap<(String, Vec<String>), Vec<lyra_topo::SwitchId>> =
            BTreeMap::new();
        for (&s, scopes) in &algs_on {
            let mut names: Vec<String> =
                scopes.iter().map(|sc| sc.algorithm.clone()).collect();
            names.sort();
            let asic = req.topology.switch(s).asic.clone();
            groups.entry((asic, names)).or_default().push(s);
        }

        // Synthesize one representative per group. With the native backend
        // the groups run on crossbeam scoped threads ("Lyra can generate the
        // program for each switch in parallel" — §7.2); the Z3 backend runs
        // sequentially because the bundled solver context is not shared
        // across threads.
        type GroupKey = (String, Vec<String>);
        let group_list: Vec<(&GroupKey, &Vec<lyra_topo::SwitchId>)> = groups.iter().collect();
        let rep_scopes_of = |rep: lyra_topo::SwitchId| -> Vec<ResolvedScope> {
            algs_on[&rep]
                .iter()
                .map(|sc| ResolvedScope {
                    algorithm: sc.algorithm.clone(),
                    switches: vec![rep],
                    deploy: sc.deploy,
                    paths: vec![vec![rep]],
                })
                .collect()
        };
        let parallel = matches!(self.backend, Backend::Native) && group_list.len() > 1;
        let mut synth_results: Vec<Result<lyra_synth::SynthResult, String>> =
            Vec::with_capacity(group_list.len());
        if parallel {
            let results = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = group_list
                    .iter()
                    .map(|(_, members)| {
                        let rep = members[0];
                        let scopes = rep_scopes_of(rep);
                        let encode = &self.encode;
                        let backend = &self.backend;
                        let topology = &req.topology;
                        s.spawn(move |_| {
                            lyra_synth::synthesize(ir, topology, &scopes, encode, backend)
                                .map_err(|e| e.to_string())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("synthesis thread")).collect::<Vec<_>>()
            })
            .expect("crossbeam scope");
            synth_results.extend(results);
        } else {
            for (_, members) in &group_list {
                let rep = members[0];
                let scopes = rep_scopes_of(rep);
                synth_results.push(
                    lyra_synth::synthesize(ir, &req.topology, &scopes, &self.encode, &self.backend)
                        .map_err(|e| e.to_string()),
                );
            }
        }

        let mut placement = Placement::default();
        let mut artifacts = Vec::new();
        let mut t_codegen = Duration::ZERO;
        for ((_, members), synth) in group_list.iter().zip(synth_results) {
            let rep = members[0];
            let synth = synth.map_err(CompileError::Synth)?;
            let tc = Instant::now();
            let rep_artifacts = lyra_codegen::generate(ir, &req.topology, &synth)
                .map_err(|e| CompileError::Codegen(e.to_string()))?;
            let rep_name = req.topology.switch(rep).name.clone();
            let rep_plan = synth.placement.switches.get(&rep_name).cloned();
            for &member in members.iter() {
                let member_name = req.topology.switch(member).name.clone();
                if let Some(plan) = &rep_plan {
                    placement.switches.insert(member_name.clone(), plan.clone());
                }
                for a in &rep_artifacts {
                    let mut a = a.clone();
                    a.code = a.code.replace(
                        &format!("program for {rep_name} "),
                        &format!("program for {member_name} "),
                    );
                    a.switch = member_name.clone();
                    artifacts.push(a);
                }
            }
            t_codegen += tc.elapsed();
        }
        let t_synth = t1.elapsed().saturating_sub(t_codegen);
        Ok((placement, artifacts, t_synth, t_codegen))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_topo::figure1_network;

    const INT_LB: &str = r#"
        pipeline[INT]{int_in};
        pipeline[LB]{loadbalancer};
        algorithm int_in {
            extern list<bit[32] ip>[256] int_watch;
            if (ipv4.src_ip in int_watch) { int_enable = 1; }
        }
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            bit[32] hash;
            hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
            if (hash in conn_table) {
                ipv4.dstAddr = conn_table[hash];
            }
        }
    "#;

    const SCOPES: &str = r#"
        int_in: [ ToR* | PER-SW | - ]
        loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
    "#;

    #[test]
    fn compiles_int_plus_lb_composition() {
        let out = Compiler::new()
            .native_backend()
            .compile(&CompileRequest {
                program: INT_LB,
                scopes: SCOPES,
                topology: figure1_network(),
            })
            .unwrap();
        // INT on all 4 ToRs; LB somewhere in its scope.
        assert!(out.artifacts.len() >= 4);
        let summaries = out.validate_all().unwrap();
        for (_, s) in &summaries {
            assert!(s.tables >= 1);
        }
        // Trident-4 switches get NPL; Tofino/SiliconOne get P4.
        for a in &out.artifacts {
            match a.asic.as_str() {
                "trident4" => assert_eq!(a.lang, lyra_chips::TargetLang::Npl),
                "tofino-32q" | "tofino-64q" => {
                    assert_eq!(a.lang, lyra_chips::TargetLang::P414)
                }
                "silicon-one" => assert_eq!(a.lang, lyra_chips::TargetLang::P416),
                other => panic!("unexpected asic {other}"),
            }
        }
    }

    #[test]
    fn missing_scope_is_reported() {
        let err = Compiler::new()
            .native_backend()
            .compile(&CompileRequest {
                program: INT_LB,
                scopes: "int_in: [ ToR* | PER-SW | - ]",
                topology: figure1_network(),
            })
            .unwrap_err();
        assert!(matches!(err, CompileError::Scope(_)));
        assert!(err.to_string().contains("loadbalancer"));
    }

    #[test]
    fn parse_errors_surface_as_frontend() {
        let err = Compiler::new()
            .compile(&CompileRequest {
                program: "algorithm { broken",
                scopes: "x: [ ToR* | - | - ]",
                topology: figure1_network(),
            })
            .unwrap_err();
        assert!(matches!(err, CompileError::Frontend(_)));
    }

    #[test]
    fn stats_are_populated() {
        let out = Compiler::new()
            .native_backend()
            .compile(&CompileRequest {
                program: "pipeline[P]{a}; algorithm a { x = 1; }",
                scopes: "a: [ ToR1 | PER-SW | - ]",
                topology: figure1_network(),
            })
            .unwrap();
        assert!(out.stats.total >= out.stats.synth);
    }
}
