//! The control channel between the rollout engine and each switch.
//!
//! A transactional rollout ([`crate::rollout`]) converges a running
//! deployment onto a new placement by sending per-switch prepare / commit /
//! rollback messages. Real control channels lose, delay, and duplicate
//! those messages; this module interposes a [`ControlChannel`] trait that
//! decides the *fate* of every transmission so tests can inject a
//! deterministic, seeded fault model ([`LossyChannel`]) while production
//! callers use the in-process [`ReliableChannel`].
//!
//! The channel never applies a message itself — it only rules on delivery.
//! The rollout engine applies delivered messages to the per-switch state
//! machines, which makes duplicated and late deliveries observable end to
//! end (and is exactly what the idempotency tokens on [`ControlMsg`]
//! exist to survive).

use std::collections::{BTreeMap, VecDeque};

use lyra_ir::DataPlaneState;

/// One entry-level change in a delta prepare: the unit of a batched
/// install message. A rollout that touched 1% of a million-entry table
/// ships ~10⁴ of these instead of the 10⁶-entry snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryOp {
    /// Install or overwrite `table[key] = value` in the staged epoch.
    Set {
        /// Extern table name.
        table: String,
        /// Entry key.
        key: u64,
        /// Entry value.
        value: u64,
    },
    /// Remove `table[key]` from the staged epoch.
    Remove {
        /// Extern table name.
        table: String,
        /// Entry key.
        key: u64,
    },
}

impl EntryOp {
    /// Estimated wire size: a one-byte opcode, the 8-byte key (and value
    /// for sets), plus the table name (amortized to a 2-byte table id on
    /// a real SDK wire; we charge the name once per op to stay
    /// conservative).
    pub fn wire_bytes(&self) -> usize {
        match self {
            EntryOp::Set { table, .. } => 1 + table.len() + 16,
            EntryOp::Remove { table, .. } => 1 + table.len() + 8,
        }
    }
}

/// The operation a control message carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOp {
    /// Stage the full per-switch state of the next epoch. Carries the
    /// payload so a duplicated or late prepare re-delivers *its own*
    /// (possibly stale) snapshot, as on a real wire. This is the
    /// fallback path — fresh switches, drift-repaired switches, and
    /// base-epoch mismatches take it; everything else prepares via
    /// [`ControlOp::PrepareDelta`].
    Prepare {
        /// The staged data-plane state for the new epoch.
        staged: DataPlaneState,
    },
    /// Stage the next epoch as a batch of entry-level changes against the
    /// switch's *serving* state. Batch 0 opens the staged epoch (cloning
    /// the serving state and replacing the globals); later batches append
    /// to it. Each batch is its own message with its own idempotency
    /// token, so the lossy-channel fault model rules on every batch
    /// independently — exactly like a real SDK's bounded-size install
    /// RPCs.
    PrepareDelta {
        /// The serving epoch this delta was diffed against. A switch
        /// whose serving epoch differs must refuse the batch (the
        /// controller falls back to a snapshot prepare).
        base_epoch: u64,
        /// Entry-level changes, applied in order.
        ops: Vec<EntryOp>,
        /// The complete global register arrays of the new epoch
        /// (globals are tiny next to million-entry tables, so they ride
        /// whole in batch 0 and empty afterwards).
        globals: BTreeMap<String, Vec<u64>>,
        /// Position of this batch in the prepare stream for this switch.
        batch_index: u32,
        /// Total batches in the stream (for acknowledgement accounting).
        batches_total: u32,
    },
    /// Flip the switch to its staged epoch and garbage-collect the old one
    /// (the old state is retained switch-side until the rollout finalizes,
    /// so a rollback can still revert).
    Commit,
    /// Abandon the staged epoch; if the switch already committed, revert
    /// to the retained prior epoch.
    Rollback,
    /// Ask the switch to report its serving epoch and any staged/prior
    /// epoch it retains. Read-only: a restarted controller sends this
    /// during [`crate::Runtime::recover`] to learn how far an in-flight
    /// rollout got before the crash. Queries carry no idempotency token
    /// state — they never mutate the switch.
    Query,
    /// A heartbeat from the health monitor ([`crate::HealthMonitor`]): the
    /// switch (or the agent at one end of a probed link) answers with its
    /// liveness and epoch tags (`lyra_health_probe()` in the emitted
    /// control stub). Read-only like [`ControlOp::Query`] — it never
    /// mutates the switch and records no idempotency token, so a dropped
    /// probe is pure evidence, not protocol state.
    Probe,
}

impl ControlOp {
    /// Short wire name (for reports and logs).
    pub fn name(&self) -> &'static str {
        match self {
            ControlOp::Prepare { .. } => "prepare",
            ControlOp::PrepareDelta { .. } => "prepare-delta",
            ControlOp::Commit => "commit",
            ControlOp::Rollback => "rollback",
            ControlOp::Query => "query",
            ControlOp::Probe => "probe",
        }
    }

    /// True for either prepare flavor (snapshot or delta).
    pub fn is_prepare(&self) -> bool {
        matches!(
            self,
            ControlOp::Prepare { .. } | ControlOp::PrepareDelta { .. }
        )
    }

    /// Estimated payload size on a real wire, in bytes. Snapshot prepares
    /// charge every entry and global word; delta prepares charge only
    /// their ops (plus globals in batch 0); control-only ops are a fixed
    /// header. This is the number the bench harness tracks to prove
    /// prepare cost scales with the delta, not the state.
    pub fn wire_bytes(&self) -> usize {
        match self {
            ControlOp::Prepare { staged } => {
                let entries: usize = staged
                    .externs
                    .iter()
                    .map(|(name, t)| t.len() * 16 + name.len())
                    .sum();
                let globals: usize = staged
                    .globals
                    .iter()
                    .map(|(name, arr)| name.len() + arr.len() * 8)
                    .sum();
                entries + globals
            }
            ControlOp::PrepareDelta { ops, globals, .. } => {
                let ops: usize = ops.iter().map(|o| o.wire_bytes()).sum();
                let globals: usize = globals
                    .iter()
                    .map(|(name, arr)| name.len() + arr.len() * 8)
                    .sum();
                // base_epoch + batch_index + batches_total.
                ops + globals + 16
            }
            ControlOp::Commit | ControlOp::Rollback | ControlOp::Query | ControlOp::Probe => 0,
        }
    }
}

/// One control-plane message addressed to one switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlMsg {
    /// Destination switch.
    pub switch: String,
    /// The epoch this message is about (the epoch being rolled out).
    pub epoch: u64,
    /// Idempotency token, unique per logical message. Retransmissions and
    /// network duplicates reuse the token, so a switch that already
    /// applied it acknowledges without re-applying.
    pub token: u64,
    /// What to do.
    pub op: ControlOp,
}

impl ControlMsg {
    /// Estimated total wire size: a fixed header (switch id, epoch,
    /// token, opcode) plus the op payload.
    pub fn wire_bytes(&self) -> usize {
        self.switch.len() + 8 + 8 + 1 + self.op.wire_bytes()
    }
}

/// The fate of one transmission attempt, as ruled by the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered once; the acknowledgement came back.
    Delivered,
    /// Delivered twice (network duplicate); the acknowledgement came back.
    Duplicated,
    /// Never delivered; the sender times out.
    Dropped,
    /// Delivered, but the acknowledgement was lost — the switch applied
    /// the message while the sender times out and must retry. This is the
    /// case idempotency tokens exist for.
    AckLost,
}

/// Decides the fate of control messages between the rollout engine and
/// the switches. Implementations must be deterministic for a fixed seed so
/// chaos scenarios reproduce.
pub trait ControlChannel {
    /// Rule on one transmission attempt of `msg`.
    fn transmit(&mut self, msg: &ControlMsg) -> Delivery;

    /// Late (reordered) copies that are due for delivery now. The engine
    /// drains this before every transmission and applies the returned
    /// messages to the switches — their acknowledgements go nowhere, like
    /// any packet that outlived its sender's patience.
    fn drain_late(&mut self) -> Vec<ControlMsg> {
        Vec::new()
    }
}

/// A perfect channel: every message is delivered exactly once. The default
/// for in-process use ([`crate::Runtime::fail_switch`] and friends).
#[derive(Debug, Default)]
pub struct ReliableChannel;

impl ReliableChannel {
    /// A new reliable channel.
    pub fn new() -> Self {
        ReliableChannel
    }
}

impl ControlChannel for ReliableChannel {
    fn transmit(&mut self, _msg: &ControlMsg) -> Delivery {
        Delivery::Delivered
    }
}

/// Deterministic xorshift64* generator (the workspace builds offline; all
/// randomness is seeded and in-tree). Shared with the rollout engine's
/// backoff jitter.
#[derive(Debug, Clone)]
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A seeded fault-injecting channel: drops, timeouts (acknowledgement
/// loss), duplicates, late replays, and an optional mid-rollout switch
/// death. All probabilities are per transmission attempt; the same seed
/// replays the identical fault sequence.
#[derive(Debug)]
pub struct LossyChannel {
    rng: Rng,
    /// Probability the message never arrives.
    pub drop_p: f64,
    /// Probability the message arrives but its acknowledgement is lost.
    pub ack_loss_p: f64,
    /// Probability the message is delivered twice.
    pub dup_p: f64,
    /// Probability a copy of the message is also delivered *late*, after
    /// a few more transmissions (reordering).
    pub late_p: f64,
    /// `(switch, after_n_messages)` — the switch stops answering entirely
    /// once this many messages (to anyone) have been transmitted. Models a
    /// switch dying in the middle of a rollout.
    kill: Option<(String, u64)>,
    /// Pending late copies: `(deliveries_remaining, message)`.
    late: VecDeque<(u64, ControlMsg)>,
    sent: u64,
}

impl LossyChannel {
    /// A lossless channel with the given seed; layer faults on with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        LossyChannel {
            rng: Rng::new(seed),
            drop_p: 0.0,
            ack_loss_p: 0.0,
            dup_p: 0.0,
            late_p: 0.0,
            kill: None,
            late: VecDeque::new(),
            sent: 0,
        }
    }

    /// Set the message-drop probability.
    pub fn with_drop_p(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Set the acknowledgement-loss probability.
    pub fn with_ack_loss_p(mut self, p: f64) -> Self {
        self.ack_loss_p = p;
        self
    }

    /// Set the duplicate-delivery probability.
    pub fn with_dup_p(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Set the late-replay probability.
    pub fn with_late_p(mut self, p: f64) -> Self {
        self.late_p = p;
        self
    }

    /// Kill `switch` after `after` total transmissions: every later
    /// message to it is dropped, as if the switch died mid-rollout.
    pub fn with_switch_death(mut self, switch: impl Into<String>, after: u64) -> Self {
        self.kill = Some((switch.into(), after));
        self
    }

    /// Total transmission attempts ruled on so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn switch_dead(&self, switch: &str) -> bool {
        self.kill
            .as_ref()
            .is_some_and(|(s, after)| s == switch && self.sent > *after)
    }
}

impl ControlChannel for LossyChannel {
    fn transmit(&mut self, msg: &ControlMsg) -> Delivery {
        self.sent += 1;
        if self.switch_dead(&msg.switch) {
            return Delivery::Dropped;
        }
        if self.rng.next_f64() < self.late_p {
            let countdown = 1 + self.rng.below(5);
            self.late.push_back((countdown, msg.clone()));
        }
        if self.rng.next_f64() < self.drop_p {
            return Delivery::Dropped;
        }
        if self.rng.next_f64() < self.ack_loss_p {
            return Delivery::AckLost;
        }
        if self.rng.next_f64() < self.dup_p {
            return Delivery::Duplicated;
        }
        Delivery::Delivered
    }

    fn drain_late(&mut self) -> Vec<ControlMsg> {
        let mut due = Vec::new();
        for (countdown, _) in self.late.iter_mut() {
            *countdown = countdown.saturating_sub(1);
        }
        while matches!(self.late.front(), Some((0, _))) {
            let Some((_, msg)) = self.late.pop_front() else {
                break; // front was just checked; defensive rather than panicking
            };
            // A late copy to a dead switch is lost like everything else.
            if !self.switch_dead(&msg.switch) {
                due.push(msg);
            }
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(switch: &str, token: u64) -> ControlMsg {
        ControlMsg {
            switch: switch.into(),
            epoch: 1,
            token,
            op: ControlOp::Commit,
        }
    }

    #[test]
    fn reliable_always_delivers() {
        let mut ch = ReliableChannel::new();
        for t in 0..10 {
            assert_eq!(ch.transmit(&msg("S", t)), Delivery::Delivered);
        }
        assert!(ch.drain_late().is_empty());
    }

    #[test]
    fn lossy_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<Delivery> {
            let mut ch = LossyChannel::new(seed)
                .with_drop_p(0.3)
                .with_ack_loss_p(0.2)
                .with_dup_p(0.2);
            (0..64).map(|t| ch.transmit(&msg("S", t))).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn dead_switch_drops_everything_after_the_cut() {
        let mut ch = LossyChannel::new(7).with_switch_death("S", 3);
        let fates: Vec<Delivery> = (0..8).map(|t| ch.transmit(&msg("S", t))).collect();
        assert!(fates[..3].iter().all(|d| *d == Delivery::Delivered));
        assert!(fates[3..].iter().all(|d| *d == Delivery::Dropped));
        // Other switches are unaffected.
        assert_eq!(ch.transmit(&msg("T", 99)), Delivery::Delivered);
    }

    #[test]
    fn wire_bytes_charge_delta_by_ops_and_snapshot_by_state() {
        let mut staged = DataPlaneState::new();
        for k in 0..10_000u64 {
            staged.install("t", k, k);
        }
        let snapshot = ControlOp::Prepare { staged };
        let delta = ControlOp::PrepareDelta {
            base_epoch: 1,
            ops: (0..100u64)
                .map(|k| EntryOp::Set {
                    table: "t".into(),
                    key: k,
                    value: k,
                })
                .collect(),
            globals: BTreeMap::new(),
            batch_index: 0,
            batches_total: 1,
        };
        assert!(snapshot.wire_bytes() >= 10_000 * 16);
        assert!(delta.wire_bytes() < snapshot.wire_bytes() / 50);
        assert_eq!(ControlOp::Commit.wire_bytes(), 0);
    }

    #[test]
    fn late_copies_surface_after_a_few_sends() {
        let mut ch = LossyChannel::new(11).with_late_p(1.0);
        let original = msg("S", 0);
        ch.transmit(&original);
        let mut seen = Vec::new();
        for t in 1..16 {
            seen.extend(ch.drain_late());
            ch.transmit(&msg("S", t));
        }
        seen.extend(ch.drain_late());
        assert!(
            seen.iter().any(|m| m.token == original.token),
            "the late copy of token 0 never surfaced"
        );
    }
}
