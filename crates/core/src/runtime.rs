//! A control-plane/data-plane runtime simulator for compiled placements.
//!
//! §5.8 leaves control-plane logic to the operator: Lyra generates table
//! *interfaces* (the `<t>_entry_set/get` stubs) and the operator fills
//! entries without knowing how tables were split across switches. This
//! module is the executable version of that contract: a [`Runtime`] wraps a
//! [`CompileOutput`], accepts logical `install` calls against extern tables
//! — routing each entry to a switch shard with free capacity — and injects
//! packets along switch paths, executing each hop's placed instructions
//! with the IR reference interpreter.
//!
//! It exists for tests and examples; it is not a performance simulator.

use std::collections::BTreeMap;

use lyra_ir::{execute, DataPlaneState, Effect, InstrId, PacketState};
use lyra_topo::FaultSet;

use crate::CompileOutput;

/// Errors from runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for RuntimeError {}

/// A simulated deployment: per-switch data-plane state plus the logical
/// view the control plane uses.
pub struct Runtime<'a> {
    output: &'a CompileOutput,
    /// Per-switch state (table shards + globals).
    shards: BTreeMap<String, DataPlaneState>,
    /// Entries installed per (switch, table) — for capacity accounting.
    installed: BTreeMap<(String, String), u64>,
    /// Elements failed at runtime ([`Runtime::fail_switch`] /
    /// [`Runtime::fail_link`]). Failed switches hold no shards; paths
    /// through failed elements reject traffic and receive no installs.
    faults: FaultSet,
}

impl<'a> Runtime<'a> {
    /// Build a runtime over a compilation result. Globals are sized from
    /// the program's declarations on every hosting switch.
    pub fn new(output: &'a CompileOutput) -> Self {
        let mut shards: BTreeMap<String, DataPlaneState> = BTreeMap::new();
        for (switch, plan) in &output.placement.switches {
            let mut dp = DataPlaneState::new();
            for instrs in plan.instrs.values() {
                let _ = instrs;
            }
            for (global, &(_, len)) in &output.ir.globals {
                dp.global(global, len as usize);
            }
            shards.insert(switch.clone(), dp);
        }
        Runtime {
            output,
            shards,
            installed: BTreeMap::new(),
            faults: FaultSet::new(),
        }
    }

    /// The elements failed so far.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Capacity of `table` on `switch` per the solved placement.
    fn capacity(&self, switch: &str, table: &str) -> u64 {
        self.output
            .placement
            .switches
            .get(switch)
            .and_then(|p| p.extern_entries.get(table))
            .copied()
            .unwrap_or(0)
    }

    /// Install a logical entry into `table`. The control plane does not
    /// name a switch — for every flow path the runtime places the entry on
    /// one hosting switch with free capacity (re-using a switch shared
    /// between paths when possible), exactly the abstraction §5.8 promises
    /// ("programmers only need to fill in the control plane tables, but do
    /// not need to know exactly how each table is mapped to target
    /// devices").
    ///
    /// Returns the switches that received the entry.
    pub fn install(
        &mut self,
        table: &str,
        key: u64,
        value: u64,
    ) -> Result<Vec<String>, RuntimeError> {
        let holders: Vec<String> = self
            .output
            .placement
            .switches
            .iter()
            .filter(|(n, p)| p.extern_entries.contains_key(table) && !self.faults.switch_failed(n))
            .map(|(n, _)| n.clone())
            .collect();
        if holders.is_empty() {
            return Err(RuntimeError {
                message: format!("no surviving switch hosts extern table `{table}`"),
            });
        }
        // Surviving paths that can reach this table (host at least one
        // shard); paths through failed elements carry no traffic and need
        // no entry.
        let mut paths: Vec<Vec<String>> = self
            .output
            .flow_paths
            .values()
            .flatten()
            .filter(|p| self.faults.path_survives(p) && p.iter().any(|sw| holders.contains(sw)))
            .cloned()
            .collect();
        if paths.is_empty() {
            // Degenerate single-switch deployments.
            paths = holders.iter().map(|h| vec![h.clone()]).collect();
        }
        let mut placed: Vec<String> = Vec::new();
        for path in &paths {
            // Already covered (a shared shard from an earlier path)?
            let covered = path.iter().any(|sw| {
                self.shards
                    .get(sw)
                    .and_then(|dp| dp.externs.get(table))
                    .map(|t| t.contains_key(&key))
                    .unwrap_or(false)
            });
            if covered {
                continue;
            }
            let slot = path.iter().find(|sw| {
                holders.contains(sw) && {
                    let cap = self.capacity(sw, table);
                    let used = self
                        .installed
                        .get(&((*sw).clone(), table.to_string()))
                        .copied()
                        .unwrap_or(0);
                    used < cap
                }
            });
            let Some(sw) = slot else {
                return Err(RuntimeError {
                    message: format!("table `{table}` is full along path {path:?}"),
                });
            };
            self.shards
                .get_mut(sw)
                .expect("shard exists")
                .install(table, key, value);
            *self
                .installed
                .entry((sw.clone(), table.to_string()))
                .or_insert(0) += 1;
            if !placed.contains(sw) {
                placed.push(sw.clone());
            }
        }
        // An already-covered key is an idempotent no-op, not an error — the
        // control plane may replay installs (e.g. after a failover re-sync)
        // without tracking which entries survived.
        Ok(placed)
    }

    /// Fail a switch at runtime: its shards vanish, and every logical entry
    /// it held is re-installed on surviving holders (the control-plane
    /// re-sync an operator would perform). Paths through the switch stop
    /// carrying traffic. Returns the switches that received re-synced
    /// entries; fails when some entry no longer fits anywhere.
    pub fn fail_switch(&mut self, switch: &str) -> Result<Vec<String>, RuntimeError> {
        if !self
            .output
            .flow_paths
            .values()
            .flatten()
            .any(|p| p.iter().any(|s| s == switch))
            && !self.output.placement.switches.contains_key(switch)
        {
            return Err(RuntimeError {
                message: format!("unknown switch `{switch}`"),
            });
        }
        if self.faults.switch_failed(switch) {
            return Ok(Vec::new());
        }
        // Capture the dying shard's logical entries before discarding it.
        let lost: Vec<(String, u64, u64)> = self
            .shards
            .get(switch)
            .map(|dp| {
                dp.externs
                    .iter()
                    .flat_map(|(t, entries)| entries.iter().map(|(&k, &v)| (t.clone(), k, v)))
                    .collect()
            })
            .unwrap_or_default();
        self.shards.remove(switch);
        self.installed.retain(|(sw, _), _| sw != switch);
        self.faults.add_switch(switch);
        self.resync(lost)
    }

    /// Fail a link at runtime. No shard state is lost (entries live on
    /// switches), but paths crossing the link stop carrying traffic; the
    /// re-sync re-installs any logical entry whose only shard, for some
    /// surviving path, sat beyond the dead link. Returns the switches that
    /// received re-synced entries.
    pub fn fail_link(&mut self, a: &str, b: &str) -> Result<Vec<String>, RuntimeError> {
        self.faults.add_link(a, b);
        // Replay every installed entry: surviving paths already covered are
        // untouched (idempotent install), newly-uncovered ones get a shard.
        let all: Vec<(String, u64, u64)> = self
            .shards
            .values()
            .flat_map(|dp| {
                dp.externs
                    .iter()
                    .flat_map(|(t, entries)| entries.iter().map(|(&k, &v)| (t.clone(), k, v)))
            })
            .collect();
        self.resync(all)
    }

    /// Re-install logical entries after a failure. Entries whose surviving
    /// paths are all still covered are no-ops; the rest land on surviving
    /// holders with capacity, or the re-sync fails with a capacity error.
    fn resync(&mut self, entries: Vec<(String, u64, u64)>) -> Result<Vec<String>, RuntimeError> {
        let mut touched: Vec<String> = Vec::new();
        for (table, key, value) in entries {
            for sw in self.install(&table, key, value)? {
                if !touched.contains(&sw) {
                    touched.push(sw);
                }
            }
        }
        Ok(touched)
    }

    /// Entries currently installed in `table` on `switch`.
    pub fn installed_on(&self, switch: &str, table: &str) -> u64 {
        self.installed
            .get(&(switch.to_string(), table.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Inject a packet along `path` (switch names in traversal order).
    /// Executes each hop's placed instructions for every algorithm, in
    /// program order, sharing the packet state across hops (the bridge
    /// header). Returns the final packet state and all fired effects.
    pub fn inject(
        &mut self,
        path: &[&str],
        mut pkt: PacketState,
    ) -> Result<(PacketState, Vec<Effect>), RuntimeError> {
        if let Some(dead) = path.iter().find(|s| self.faults.switch_failed(s)) {
            return Err(RuntimeError {
                message: format!("path traverses failed switch `{dead}`"),
            });
        }
        if let Some(w) = path
            .windows(2)
            .find(|w| self.faults.link_failed(w[0], w[1]))
        {
            return Err(RuntimeError {
                message: format!("path traverses failed link `{}` — `{}`", w[0], w[1]),
            });
        }
        let mut effects = Vec::new();
        for &switch in path {
            let Some(plan) = self.output.placement.switches.get(switch) else {
                // A hop with no code (e.g. a fixed-function core) is
                // transit-only.
                continue;
            };
            let dp = self.shards.entry(switch.to_string()).or_default();
            for (alg_name, instrs) in &plan.instrs {
                let alg = self
                    .output
                    .ir
                    .algorithm(alg_name)
                    .ok_or_else(|| RuntimeError {
                        message: format!("placement names unknown algorithm `{alg_name}`"),
                    })?;
                let mut ordered: Vec<InstrId> = instrs.clone();
                ordered.sort();
                effects.extend(execute(alg, &ordered, &mut pkt, dp));
            }
        }
        Ok((pkt, effects))
    }

    /// Read a global register on a switch (for assertions in tests).
    pub fn global(&self, switch: &str, name: &str, index: usize) -> Option<u64> {
        self.shards
            .get(switch)
            .and_then(|dp| dp.globals.get(name))
            .and_then(|arr| arr.get(index))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileRequest, Compiler};
    use lyra_topo::figure1_network;

    fn lb_output() -> CompileOutput {
        Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                r#"
                    pipeline[LB]{loadbalancer};
                    algorithm loadbalancer {
                        extern dict<bit[32] h, bit[32] ip>[64] conn_table;
                        if (flow_h in conn_table) {
                            ipv4.dstAddr = conn_table[flow_h];
                        } else {
                            copy_to_cpu();
                        }
                    }
                "#,
                "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
                figure1_network(),
            ))
            .unwrap()
    }

    #[test]
    fn install_then_hit() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let switches = rt.install("conn_table", 42, 0x0a000001).unwrap();
        assert!(switches
            .iter()
            .all(|sw| rt.installed_on(sw, "conn_table") >= 1));

        // A packet with the installed hash gets rewritten on its path.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        pkt.set("ipv4.dstAddr", 0x02000001);
        let (end, effects) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0x0a000001);
        assert!(
            effects.is_empty(),
            "hit path must not punt to CPU: {effects:?}"
        );
    }

    #[test]
    fn miss_punts_to_cpu() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 7);
        let (_, effects) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert!(
            effects
                .iter()
                .any(|e| matches!(e, Effect::Action { name, .. } if name == "copy_to_cpu")),
            "miss must reach the controller: {effects:?}"
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        // Each logical entry occupies one slot per covering path group;
        // the logical table holds exactly its declared 64 entries.
        let mut total = 0u64;
        while rt.install("conn_table", total, total).is_ok() {
            total += 1;
            assert!(total < 10_000, "capacity accounting is broken");
        }
        assert_eq!(total, 64, "logical capacity must equal the declared size");
    }

    #[test]
    fn unknown_table_rejected() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        assert!(rt.install("no_such_table", 1, 1).is_err());
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let first = rt.install("conn_table", 42, 7).unwrap();
        assert!(!first.is_empty());
        // Replaying the same key is a no-op, not an error, and consumes no
        // extra capacity.
        let again = rt.install("conn_table", 42, 7).unwrap();
        assert!(again.is_empty(), "replay placed entries: {again:?}");
        let used: u64 = first
            .iter()
            .map(|sw| rt.installed_on(sw, "conn_table"))
            .sum();
        assert_eq!(used as usize, first.len());
    }

    #[test]
    fn fail_switch_resyncs_entries_and_refuses_traffic() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 42, 0x0a000001).unwrap();
        rt.fail_switch("Agg3").unwrap();

        // The dead switch no longer accepts traffic…
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        pkt.set("ipv4.dstAddr", 0x02000001);
        let err = rt.inject(&["Agg3", "ToR3"], pkt.clone()).unwrap_err();
        assert!(err.message.contains("failed switch"), "{err}");

        // …and the entry still hits on every surviving flow path that
        // reaches a conn_table shard.
        let surviving: Vec<Vec<String>> = out
            .flow_paths
            .values()
            .flatten()
            .filter(|p| rt.faults().path_survives(p))
            .cloned()
            .collect();
        for path in &surviving {
            let holders_on_path = path.iter().any(|sw| {
                out.placement.switches.get(sw).is_some_and(|p| {
                    p.extern_entries.contains_key("conn_table") && !rt.faults().switch_failed(sw)
                })
            });
            if !holders_on_path {
                continue;
            }
            let hops: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
            let (end, _) = rt.inject(&hops, pkt.clone()).unwrap();
            assert_eq!(
                end.get("ipv4.dstAddr"),
                0x0a000001,
                "entry lost on surviving path {path:?}"
            );
        }

        // Failing the same switch again is a no-op.
        assert_eq!(rt.fail_switch("Agg3").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn fail_link_refuses_the_path() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 42, 0x0a000001).unwrap();
        rt.fail_link("Agg3", "ToR3").unwrap();
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        let err = rt.inject(&["Agg3", "ToR3"], pkt.clone()).unwrap_err();
        assert!(err.message.contains("failed link"), "{err}");
        // The sibling path through the same Agg still works.
        let (end, _) = rt.inject(&["Agg3", "ToR4"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0x0a000001);
    }

    #[test]
    fn unknown_switch_failure_is_rejected() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        assert!(rt.fail_switch("Banana").is_err());
    }
}
