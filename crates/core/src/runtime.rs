//! A control-plane/data-plane runtime simulator for compiled placements.
//!
//! §5.8 leaves control-plane logic to the operator: Lyra generates table
//! *interfaces* (the `<t>_entry_set/get` stubs) and the operator fills
//! entries without knowing how tables were split across switches. This
//! module is the executable version of that contract: a [`Runtime`] wraps a
//! [`CompileOutput`], accepts logical `install` calls against extern tables
//! — routing each entry to a switch shard with free capacity — and injects
//! packets along switch paths, executing each hop's placed instructions
//! with the IR reference interpreter.
//!
//! Every switch carries an *epoch tag*: the version of the placement it
//! serves. Placement changes (failover re-sync, or a full
//! [`Runtime::apply_rollout`] onto a recompiled placement) go through the
//! two-phase rollout engine in [`crate::rollout`], which guarantees that
//! after any control-plane operation returns, all switches share one
//! epoch — [`Runtime::inject`] refuses to execute a path whose hops
//! disagree, so a packet can never observe a mixed old/new table set.
//!
//! It exists for tests and examples; it is not a performance simulator.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use lyra_diag::Code;
use lyra_ir::{execute, DataPlaneState, Effect, InstrId, PacketState};
use lyra_topo::FaultSet;

use crate::{CompileObserver, CompileOutput};

/// Errors from runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Problem description.
    pub message: String,
    /// Stable diagnostic code classifying the failure, when one applies
    /// (rollout failures carry `LYR056x` codes).
    pub code: Option<Code>,
}

impl RuntimeError {
    /// An error with a message and no code.
    pub fn new(message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            code: None,
        }
    }

    /// Attach a stable diagnostic code.
    pub fn with_code(mut self, code: Code) -> Self {
        self.code = Some(code);
        self
    }
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.code {
            Some(c) => write!(f, "runtime error [{c}]: {}", self.message),
            None => write!(f, "runtime error: {}", self.message),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Per-switch state: the active data plane plus the two-phase bookkeeping
/// the rollout engine drives (staged next epoch, retained prior epoch,
/// idempotency tokens already applied).
#[derive(Debug, Clone, Default)]
pub(crate) struct SwitchState {
    /// The active (serving) data-plane state.
    pub(crate) dp: DataPlaneState,
    /// The epoch the active state belongs to.
    pub(crate) epoch: u64,
    /// A prepared-but-uncommitted next epoch: `(epoch, state)`.
    pub(crate) staged: Option<(u64, DataPlaneState)>,
    /// The previous epoch retained after a commit, until the rollout
    /// finalizes — what a rollback restores.
    pub(crate) prior: Option<(u64, DataPlaneState)>,
    /// Idempotency tokens of control messages already applied; replays
    /// and network duplicates of these are acknowledged without effect.
    pub(crate) tokens: BTreeSet<u64>,
}

impl SwitchState {
    /// A fresh switch at `epoch` with globals sized from `output`.
    pub(crate) fn fresh(output: &CompileOutput, epoch: u64) -> Self {
        let mut dp = DataPlaneState::new();
        for (global, &(_, len)) in &output.ir.globals {
            dp.global(global, len as usize);
        }
        SwitchState {
            dp,
            epoch,
            staged: None,
            prior: None,
            tokens: BTreeSet::new(),
        }
    }
}

/// A simulated deployment: per-switch data-plane state plus the logical
/// view the control plane uses.
pub struct Runtime<'a> {
    pub(crate) output: &'a CompileOutput,
    /// Per-switch state (table shards + globals + epoch bookkeeping).
    pub(crate) states: BTreeMap<String, SwitchState>,
    /// Elements failed at runtime ([`Runtime::fail_switch`] /
    /// [`Runtime::fail_link`]). Failed switches hold no state; paths
    /// through failed elements reject traffic and receive no installs.
    pub(crate) faults: FaultSet,
    /// The epoch every switch currently serves (all switches agree
    /// whenever control is outside the rollout engine).
    pub(crate) epoch: u64,
    /// Monotonic epoch allocator. Rolled-back epochs are burned, never
    /// reused, so a late message from an abandoned rollout can never be
    /// mistaken for one from a newer attempt.
    pub(crate) epoch_counter: u64,
    /// The controller's shadow of what each switch *should* hold: a copy
    /// of every switch's data-plane state, refreshed whenever a
    /// control-plane operation finalizes. [`Runtime::audit_switches`]
    /// diffs switch-held state against this to detect drift. Globals are
    /// traffic-mutable and outside the audit's scope; only extern tables
    /// (control-plane-owned) are compared.
    pub(crate) expected: BTreeMap<String, DataPlaneState>,
    /// Switches whose next prepare must carry a full state snapshot
    /// instead of a delta: fresh switches the placement just added, and
    /// switches the anti-entropy audit repaired (their page structure no
    /// longer matches the controller's retained base, so a delta computed
    /// against it cannot be trusted to be minimal). Cleared when a
    /// rollout touching them finalizes.
    pub(crate) needs_snapshot: BTreeSet<String>,
    /// Optional event sink notified of rollout phases and reports.
    pub(crate) observer: Option<Arc<dyn CompileObserver>>,
}

/// Compute the switches that must receive logical entry `(table, key)` so
/// every surviving flow path sees it — the §5.8 placement decision, shared
/// between live [`Runtime::install`] and the rollout engine's staged-layout
/// planner so both place entries identically.
///
/// `holds(sw)` reports whether the switch already holds the key;
/// `used(sw)` reports how many keys its shard of `table` currently holds.
pub(crate) fn entry_targets(
    output: &CompileOutput,
    faults: &FaultSet,
    table: &str,
    key: u64,
    holds: impl Fn(&str) -> bool,
    used: impl Fn(&str) -> u64,
) -> Result<Vec<String>, RuntimeError> {
    let _ = key; // the key itself does not influence shard choice
    EntryPlanner::new(output, faults, table)?.targets(holds, used)
}

/// The per-table placement context of [`entry_targets`], hoisted out of the
/// per-entry loop: the surviving holders, the surviving flow paths that can
/// reach the table, and each holder's shard capacity depend only on the
/// placement and the fault set — never on the key — so million-entry bulk
/// operations build this once and reuse it for every entry instead of
/// re-cloning every flow path per key.
pub(crate) struct EntryPlanner {
    table: String,
    holders: Vec<String>,
    paths: Vec<Vec<String>>,
    capacity: BTreeMap<String, u64>,
}

impl EntryPlanner {
    pub(crate) fn new(
        output: &CompileOutput,
        faults: &FaultSet,
        table: &str,
    ) -> Result<Self, RuntimeError> {
        let holders: Vec<String> = output
            .placement
            .switches
            .iter()
            .filter(|(n, p)| p.extern_entries.contains_key(table) && !faults.switch_failed(n))
            .map(|(n, _)| n.clone())
            .collect();
        if holders.is_empty() {
            return Err(RuntimeError::new(format!(
                "no surviving switch hosts extern table `{table}`"
            )));
        }
        // Surviving paths that can reach this table (host at least one
        // shard); paths through failed elements carry no traffic and need
        // no entry.
        let mut paths: Vec<Vec<String>> = output
            .flow_paths
            .values()
            .flatten()
            .filter(|p| faults.path_survives(p) && p.iter().any(|sw| holders.contains(sw)))
            .cloned()
            .collect();
        if paths.is_empty() {
            // Degenerate single-switch deployments.
            paths = holders.iter().map(|h| vec![h.clone()]).collect();
        }
        let capacity = holders
            .iter()
            .map(|sw| {
                let cap = output
                    .placement
                    .switches
                    .get(sw)
                    .and_then(|p| p.extern_entries.get(table))
                    .copied()
                    .unwrap_or(0);
                (sw.clone(), cap)
            })
            .collect();
        Ok(EntryPlanner {
            table: table.to_string(),
            holders,
            paths,
            capacity,
        })
    }

    /// The switches one logical entry must land on so every surviving flow
    /// path sees it. `holds(sw)` reports whether the switch already holds
    /// the key; `used(sw)` reports how many keys its shard currently holds.
    pub(crate) fn targets(
        &self,
        holds: impl Fn(&str) -> bool,
        used: impl Fn(&str) -> u64,
    ) -> Result<Vec<String>, RuntimeError> {
        let mut targets: Vec<String> = Vec::new();
        for path in &self.paths {
            // Already covered (an existing shard, or one chosen for an
            // earlier path of this same entry)?
            let covered = path
                .iter()
                .any(|sw| holds(sw) || targets.iter().any(|t| t == sw));
            if covered {
                continue;
            }
            let slot = path.iter().find(|sw| {
                self.holders.contains(sw) && {
                    let pending = targets.iter().any(|t| t == *sw) as u64;
                    used(sw) + pending < self.capacity.get(*sw).copied().unwrap_or(0)
                }
            });
            let Some(sw) = slot else {
                return Err(RuntimeError::new(format!(
                    "table `{}` is full along path {path:?}",
                    self.table
                )));
            };
            if !targets.contains(sw) {
                targets.push(sw.clone());
            }
        }
        Ok(targets)
    }
}

/// Place every logical entry into `staged` (per-switch data-plane states)
/// under `output`'s placement and the given fault set. Entries already
/// covered on all their surviving paths are no-ops, so seeding `staged`
/// with the current shard contents reproduces the idempotent-replay
/// semantics of a control-plane re-sync. Returns the switches that
/// received at least one entry.
pub(crate) fn plan_entries(
    output: &CompileOutput,
    faults: &FaultSet,
    staged: &mut BTreeMap<String, DataPlaneState>,
    entries: &[(String, u64, u64)],
) -> Result<Vec<String>, RuntimeError> {
    let mut touched: Vec<String> = Vec::new();
    // One placement context per table for the whole batch — at a million
    // entries, rebuilding holders and flow paths per entry is the
    // difference between milliseconds and minutes.
    let mut planners: BTreeMap<&str, EntryPlanner> = BTreeMap::new();
    for (table, key, value) in entries {
        let planner = match planners.get(table.as_str()) {
            Some(p) => p,
            None => {
                let p = EntryPlanner::new(output, faults, table)?;
                planners.entry(table.as_str()).or_insert(p)
            }
        };
        let targets = planner.targets(
            |sw| {
                staged
                    .get(sw)
                    .and_then(|dp| dp.externs.get(table))
                    .map(|t| t.contains_key(*key))
                    .unwrap_or(false)
            },
            |sw| {
                staged
                    .get(sw)
                    .and_then(|dp| dp.externs.get(table))
                    .map(|t| t.len() as u64)
                    .unwrap_or(0)
            },
        )?;
        for sw in targets {
            staged
                .entry(sw.clone())
                .or_default()
                .install(table, *key, *value);
            if !touched.contains(&sw) {
                touched.push(sw);
            }
        }
    }
    Ok(touched)
}

impl<'a> Runtime<'a> {
    /// Build a runtime over a compilation result. Globals are sized from
    /// the program's declarations on every hosting switch.
    pub fn new(output: &'a CompileOutput) -> Self {
        let states: BTreeMap<String, SwitchState> = output
            .placement
            .switches
            .keys()
            .map(|switch| (switch.clone(), SwitchState::fresh(output, 0)))
            .collect();
        let expected = states
            .iter()
            .map(|(sw, st)| (sw.clone(), st.dp.clone()))
            .collect();
        Runtime {
            output,
            states,
            faults: FaultSet::new(),
            epoch: 0,
            epoch_counter: 0,
            expected,
            needs_snapshot: BTreeSet::new(),
            observer: None,
        }
    }

    /// Rebuild the controller-expected shadow from the (just-finalized)
    /// switch states. Called whenever a control-plane transaction
    /// converges — the switches are ground truth at that instant.
    pub(crate) fn refresh_expected(&mut self) {
        self.expected = self
            .states
            .iter()
            .map(|(sw, st)| (sw.clone(), st.dp.clone()))
            .collect();
    }

    /// Register an event sink notified of rollout phases and reports
    /// (shares the [`CompileObserver`] trait with the compiler).
    pub fn set_observer(&mut self, observer: Arc<dyn CompileObserver>) {
        self.observer = Some(observer);
    }

    /// The compilation this runtime currently serves (flips to the new
    /// output when a rollout commits).
    pub fn output(&self) -> &'a CompileOutput {
        self.output
    }

    /// The elements failed so far.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The placement epoch every switch currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch one switch serves (`None` for unknown/failed switches).
    pub fn switch_epoch(&self, switch: &str) -> Option<u64> {
        self.states.get(switch).map(|st| st.epoch)
    }

    /// True when every switch serves the runtime's epoch with no staged or
    /// retained side state — the invariant the rollout engine restores
    /// before returning, asserted by the chaos tests.
    pub fn epochs_coherent(&self) -> bool {
        self.states
            .values()
            .all(|st| st.epoch == self.epoch && st.staged.is_none() && st.prior.is_none())
    }

    /// [`Runtime::epochs_coherent`] extended to the traffic plane: also
    /// asserts that a [`crate::LiveTrafficPlane`] mirror of this runtime
    /// agrees — every compiled switch serves the runtime's epoch with no
    /// staged or retained plane-side state. Traffic-plane drift (a flip
    /// the plane missed, or finalize-sweep leftovers after
    /// [`crate::LiveTrafficPlane::align`]) fails this loudly in tests.
    pub fn epochs_coherent_with_plane(&self, plane: &crate::LiveTrafficPlane) -> bool {
        self.epochs_coherent() && plane.mirrors(self)
    }

    /// All logical entries currently installed, as `(table, key, value)`
    /// triples (the union over every shard — the control plane's view).
    pub fn logical_entries(&self) -> Vec<(String, u64, u64)> {
        let mut merged: BTreeMap<(String, u64), u64> = BTreeMap::new();
        for st in self.states.values() {
            for (table, entries) in &st.dp.externs {
                for (k, v) in entries {
                    merged.entry((table.clone(), k)).or_insert(v);
                }
            }
        }
        merged
            .into_iter()
            .map(|((table, k), v)| (table, k, v))
            .collect()
    }

    /// Install a logical entry into `table`. The control plane does not
    /// name a switch — for every flow path the runtime places the entry on
    /// one hosting switch with free capacity (re-using a switch shared
    /// between paths when possible), exactly the abstraction §5.8 promises
    /// ("programmers only need to fill in the control plane tables, but do
    /// not need to know exactly how each table is mapped to target
    /// devices").
    ///
    /// Returns the switches that received the entry. An already-covered
    /// key is an idempotent no-op, not an error — the control plane may
    /// replay installs (e.g. after a failover re-sync) without tracking
    /// which entries survived.
    pub fn install(
        &mut self,
        table: &str,
        key: u64,
        value: u64,
    ) -> Result<Vec<String>, RuntimeError> {
        let targets = entry_targets(
            self.output,
            &self.faults,
            table,
            key,
            |sw| {
                self.states
                    .get(sw)
                    .and_then(|st| st.dp.externs.get(table))
                    .map(|t| t.contains_key(key))
                    .unwrap_or(false)
            },
            |sw| {
                self.states
                    .get(sw)
                    .and_then(|st| st.dp.externs.get(table))
                    .map(|t| t.len() as u64)
                    .unwrap_or(0)
            },
        )?;
        for sw in &targets {
            // A chosen holder always has live state: entry_targets only
            // proposes unfailed placement switches, which `new` seeded and
            // only `fail_switch` removes.
            let st = self.states.get_mut(sw).ok_or_else(|| {
                RuntimeError::new(format!("internal: placement switch `{sw}` has no state"))
            })?;
            st.dp.install(table, key, value);
            // Mirror into the controller's expected shadow so the
            // anti-entropy audit knows this switch should hold the entry.
            self.expected
                .entry(sw.clone())
                .or_default()
                .install(table, key, value);
        }
        Ok(targets)
    }

    /// Bulk [`Runtime::install`]: place every `(key, value)` entry of
    /// `table`, reusing one placement context for the whole batch. Same
    /// semantics as calling `install` per entry — already-covered keys are
    /// idempotent no-ops — but the per-entry cost drops from "re-derive
    /// holders and flow paths" to two shard probes, which is what makes
    /// seeding a million-entry control plane practical. Returns the number
    /// of (entry, switch) placements performed.
    pub fn install_many(
        &mut self,
        table: &str,
        entries: &[(u64, u64)],
    ) -> Result<u64, RuntimeError> {
        let planner = EntryPlanner::new(self.output, &self.faults, table)?;
        let mut placed = 0u64;
        for &(key, value) in entries {
            let targets = planner.targets(
                |sw| {
                    self.states
                        .get(sw)
                        .and_then(|st| st.dp.externs.get(table))
                        .map(|t| t.contains_key(key))
                        .unwrap_or(false)
                },
                |sw| {
                    self.states
                        .get(sw)
                        .and_then(|st| st.dp.externs.get(table))
                        .map(|t| t.len() as u64)
                        .unwrap_or(0)
                },
            )?;
            for sw in &targets {
                let st = self.states.get_mut(sw).ok_or_else(|| {
                    RuntimeError::new(format!("internal: placement switch `{sw}` has no state"))
                })?;
                st.dp.install(table, key, value);
                self.expected
                    .entry(sw.clone())
                    .or_default()
                    .install(table, key, value);
                placed += 1;
            }
        }
        Ok(placed)
    }

    /// Entries currently installed in `table` on `switch`.
    pub fn installed_on(&self, switch: &str, table: &str) -> u64 {
        self.states
            .get(switch)
            .and_then(|st| st.dp.externs.get(table))
            .map(|t| t.len() as u64)
            .unwrap_or(0)
    }

    /// Inject a packet along `path` (switch names in traversal order).
    /// Executes each hop's placed instructions for every algorithm, in
    /// program order, sharing the packet state across hops (the bridge
    /// header). Returns the final packet state and all fired effects.
    ///
    /// Refuses paths through failed elements, and paths whose hops serve
    /// different placement epochs — the per-switch consistency guarantee
    /// of the rollout engine, enforced at the data plane.
    pub fn inject(
        &mut self,
        path: &[&str],
        mut pkt: PacketState,
    ) -> Result<(PacketState, Vec<Effect>), RuntimeError> {
        if let Some(dead) = path.iter().find(|s| self.faults.switch_failed(s)) {
            return Err(RuntimeError::new(format!(
                "path traverses failed switch `{dead}`"
            )));
        }
        if let Some(w) = path
            .windows(2)
            .find(|w| self.faults.link_failed(w[0], w[1]))
        {
            return Err(RuntimeError::new(format!(
                "path traverses failed link `{}` — `{}`",
                w[0], w[1]
            )));
        }
        if let Some((sw, e)) = path
            .iter()
            .filter_map(|sw| self.states.get(*sw).map(|st| (*sw, st.epoch)))
            .find(|&(_, e)| e != self.epoch)
        {
            return Err(RuntimeError::new(format!(
                "switch `{sw}` serves epoch {e} but the deployment is at epoch {}; \
                 refusing a mixed-epoch path",
                self.epoch
            )));
        }
        let mut effects = Vec::new();
        for &switch in path {
            let Some(plan) = self.output.placement.switches.get(switch) else {
                // A hop with no code (e.g. a fixed-function core) is
                // transit-only.
                continue;
            };
            let Some(st) = self.states.get_mut(switch) else {
                // A placement switch with no live state would mean traffic
                // through a dead element — already refused above.
                return Err(RuntimeError::new(format!(
                    "placement switch `{switch}` has no live state"
                )));
            };
            for (alg_name, instrs) in &plan.instrs {
                let alg = self.output.ir.algorithm(alg_name).ok_or_else(|| {
                    RuntimeError::new(format!("placement names unknown algorithm `{alg_name}`"))
                })?;
                let mut ordered: Vec<InstrId> = instrs.clone();
                ordered.sort();
                effects.extend(execute(alg, &ordered, &mut pkt, &mut st.dp));
            }
        }
        Ok((pkt, effects))
    }

    /// Read a global register on a switch (for assertions in tests).
    pub fn global(&self, switch: &str, name: &str, index: usize) -> Option<u64> {
        self.states
            .get(switch)
            .and_then(|st| st.dp.globals.get(name))
            .and_then(|arr| arr.get(index))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileRequest, Compiler};
    use lyra_topo::figure1_network;

    fn lb_output() -> CompileOutput {
        Compiler::new()
            .native_backend()
            .compile(&CompileRequest::new(
                r#"
                    pipeline[LB]{loadbalancer};
                    algorithm loadbalancer {
                        extern dict<bit[32] h, bit[32] ip>[64] conn_table;
                        if (flow_h in conn_table) {
                            ipv4.dstAddr = conn_table[flow_h];
                        } else {
                            copy_to_cpu();
                        }
                    }
                "#,
                "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]",
                figure1_network(),
            ))
            .unwrap()
    }

    #[test]
    fn install_then_hit() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let switches = rt.install("conn_table", 42, 0x0a000001).unwrap();
        assert!(switches
            .iter()
            .all(|sw| rt.installed_on(sw, "conn_table") >= 1));

        // A packet with the installed hash gets rewritten on its path.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        pkt.set("ipv4.dstAddr", 0x02000001);
        let (end, effects) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0x0a000001);
        assert!(
            effects.is_empty(),
            "hit path must not punt to CPU: {effects:?}"
        );
    }

    #[test]
    fn miss_punts_to_cpu() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 7);
        let (_, effects) = rt.inject(&["Agg3", "ToR3"], pkt).unwrap();
        assert!(
            effects
                .iter()
                .any(|e| matches!(e, Effect::Action { name, .. } if name == "copy_to_cpu")),
            "miss must reach the controller: {effects:?}"
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        // Each logical entry occupies one slot per covering path group;
        // the logical table holds exactly its declared 64 entries.
        let mut total = 0u64;
        while rt.install("conn_table", total, total).is_ok() {
            total += 1;
            assert!(total < 10_000, "capacity accounting is broken");
        }
        assert_eq!(total, 64, "logical capacity must equal the declared size");
    }

    #[test]
    fn unknown_table_rejected() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        assert!(rt.install("no_such_table", 1, 1).is_err());
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        let first = rt.install("conn_table", 42, 7).unwrap();
        assert!(!first.is_empty());
        // Replaying the same key is a no-op, not an error, and consumes no
        // extra capacity.
        let again = rt.install("conn_table", 42, 7).unwrap();
        assert!(again.is_empty(), "replay placed entries: {again:?}");
        let used: u64 = first
            .iter()
            .map(|sw| rt.installed_on(sw, "conn_table"))
            .sum();
        assert_eq!(used as usize, first.len());
    }

    #[test]
    fn logical_entries_merge_all_shards() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 1, 10).unwrap();
        rt.install("conn_table", 2, 20).unwrap();
        let mut entries = rt.logical_entries();
        entries.sort();
        assert_eq!(
            entries,
            vec![
                ("conn_table".to_string(), 1, 10),
                ("conn_table".to_string(), 2, 20)
            ]
        );
    }

    #[test]
    fn fail_switch_resyncs_entries_and_refuses_traffic() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 42, 0x0a000001).unwrap();
        rt.fail_switch("Agg3").unwrap();

        // The dead switch no longer accepts traffic…
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        pkt.set("ipv4.dstAddr", 0x02000001);
        let err = rt.inject(&["Agg3", "ToR3"], pkt.clone()).unwrap_err();
        assert!(err.message.contains("failed switch"), "{err}");

        // …and the entry still hits on every surviving flow path that
        // reaches a conn_table shard.
        let surviving: Vec<Vec<String>> = out
            .flow_paths
            .values()
            .flatten()
            .filter(|p| rt.faults().path_survives(p))
            .cloned()
            .collect();
        for path in &surviving {
            let holders_on_path = path.iter().any(|sw| {
                out.placement.switches.get(sw).is_some_and(|p| {
                    p.extern_entries.contains_key("conn_table") && !rt.faults().switch_failed(sw)
                })
            });
            if !holders_on_path {
                continue;
            }
            let hops: Vec<&str> = path.iter().map(|s| s.as_str()).collect();
            let (end, _) = rt.inject(&hops, pkt.clone()).unwrap();
            assert_eq!(
                end.get("ipv4.dstAddr"),
                0x0a000001,
                "entry lost on surviving path {path:?}"
            );
        }

        // The re-sync went through the rollout engine: the epoch advanced
        // and every survivor agrees on it.
        assert!(rt.epoch() > 0, "re-sync must bump the epoch");
        assert!(rt.epochs_coherent());

        // Failing the same switch again is a no-op.
        assert_eq!(rt.fail_switch("Agg3").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn fail_link_refuses_the_path() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        rt.install("conn_table", 42, 0x0a000001).unwrap();
        rt.fail_link("Agg3", "ToR3").unwrap();
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        let err = rt.inject(&["Agg3", "ToR3"], pkt.clone()).unwrap_err();
        assert!(err.message.contains("failed link"), "{err}");
        // The sibling path through the same Agg still works.
        let (end, _) = rt.inject(&["Agg3", "ToR4"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0x0a000001);
    }

    #[test]
    fn unknown_switch_failure_is_rejected() {
        let out = lb_output();
        let mut rt = Runtime::new(&out);
        assert!(rt.fail_switch("Banana").is_err());
    }
}
