//! Transactional placement rollout: two-phase control-plane updates.
//!
//! Applying a recompiled placement ([`crate::fault::FaultRecompile`]) to a
//! live [`Runtime`] with independent `install` calls has no atomicity — a
//! failure halfway leaves the network matching *neither* placement. This
//! module converges a deployment onto a new [`CompileOutput`] as a
//! transaction:
//!
//! ```text
//!            ┌───────── per switch ─────────┐
//!  idle ──▶ prepare (stage epoch N+1) ──▶ commit (flip to N+1, keep N)
//!    ▲          │ exhausted                   │ exhausted
//!    │          ▼                             ▼
//!    └────── rollback (abandon N+1; committed switches revert to N)
//! ```
//!
//! * **Prepare** stages the complete per-switch table state of the next
//!   epoch (validated against shard capacity and, when provided, scope
//!   health) without touching the serving state.
//! * **Commit** flips each switch to its staged epoch; the old state is
//!   retained switch-side until the rollout finalizes, so a later failure
//!   can still revert it.
//! * Any failure triggers **rollback to the prior epoch** on every switch
//!   — with a 4× retry budget, and a forced out-of-band revert as the
//!   last resort (counted in [`RolloutReport::forced_rollbacks`]) — so the
//!   deployment is always *entirely* on the old placement or *entirely* on
//!   the new one, never mixed. [`Runtime::inject`] enforces the same
//!   invariant at the data plane by refusing mixed-epoch paths.
//!
//! Messages travel through a fault-injectable [`ControlChannel`] with
//! bounded retry, exponential backoff and seeded jitter; idempotency
//! tokens make retransmissions, network duplicates and late replays safe.
//! Epoch numbers are *burned* on rollback (never reused), so a stale
//! message from an abandoned attempt can never corrupt a later one.
//!
//! Failover re-sync ([`Runtime::fail_switch`] / [`Runtime::fail_link`])
//! runs on the same engine: the surviving entry layout is re-planned,
//! staged, and committed as a transaction, which gives re-sync retry and
//! rollback semantics for free.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lyra_diag::json::{Object, Value};
use lyra_diag::{codes, Diagnostic, Phase};
use lyra_ir::{DataPlaneState, ExternTable};
use lyra_topo::ScopeHealth;

use crate::channel::{
    ControlChannel, ControlMsg, ControlOp, Delivery, EntryOp, ReliableChannel, Rng,
};
use crate::fault::PlacementDiff;
use crate::runtime::{plan_entries, Runtime, RuntimeError, SwitchState};
use crate::CompileOutput;

/// Tuning knobs for one rollout: retry budget, backoff shape, jitter seed,
/// and an optional scope-health gate.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Transmission attempts per control message before giving up
    /// (rollback messages get 4× this budget — abandoning a rollback is
    /// worse than abandoning a rollout).
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for backoff jitter (mixed with the epoch, so retries of
    /// successive rollouts do not synchronize).
    pub seed: u64,
    /// Per-algorithm scope health under the fault set being rolled out
    /// (from [`crate::fault::FaultRecompile::scope_health`]). Any
    /// non-survivable entry gates the rollout with `LYR0564` before a
    /// single message is sent. Empty = no gate.
    pub scope_health: BTreeMap<String, ScopeHealth>,
    /// Controller-crash injection: when set, the rollout aborts with
    /// `LYR0570` at the planned point, leaving the switches and the
    /// intent log exactly as they were — [`crate::Runtime::recover`]
    /// must then finish the transaction. `None` = never crash.
    pub crash: Option<CrashPlan>,
    /// Force every prepare to carry a full state snapshot even where a
    /// delta would do. The escape hatch for operators who distrust a
    /// switch's held state, and the bench baseline that the O(delta)
    /// path is measured against.
    pub force_snapshot: bool,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            max_attempts: 8,
            base_backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(1),
            seed: 1,
            scope_health: BTreeMap::new(),
            crash: None,
            force_snapshot: false,
        }
    }
}

impl RolloutConfig {
    /// Gate this rollout on the given per-algorithm scope health.
    pub fn with_scope_health(mut self, health: BTreeMap<String, ScopeHealth>) -> Self {
        self.scope_health = health;
        self
    }

    /// Set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject a controller crash at the planned point (chaos testing).
    pub fn with_crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some(plan);
        self
    }

    /// Force full-snapshot prepares (disable the O(delta) path).
    pub fn with_force_snapshot(mut self, force: bool) -> Self {
        self.force_snapshot = force;
        self
    }
}

// ---------------------------------------------------------------------------
// Write-ahead intent log
// ---------------------------------------------------------------------------

/// One record of the write-ahead intent log.
///
/// The rollout engine journals every decision and idempotency token
/// *before* the corresponding [`ControlChannel`] send, so a controller
/// crash between journal and wire is indistinguishable from a dropped
/// message — which the tokens already make safe to re-drive. After a
/// restart, [`crate::Runtime::recover`] replays these records to find the
/// in-flight rollout, its decision point, and the tokens it was using.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentRecord {
    /// A rollout began: the epoch was allocated and the target set chosen;
    /// nothing has been sent yet.
    Begin {
        /// The epoch being rolled out.
        epoch: u64,
        /// The epoch that was serving when the rollout began (what a
        /// rollback restores).
        prior_epoch: u64,
        /// Every switch the transaction touches.
        targets: Vec<String>,
    },
    /// The controller is about to transmit one control message.
    Sent {
        /// The epoch the message is about.
        epoch: u64,
        /// Destination switch.
        switch: String,
        /// Idempotency token the message carries. Recovery re-drives the
        /// same logical message with the same token, so a switch that
        /// already applied it before the crash acknowledges without
        /// re-applying.
        token: u64,
        /// Wire name of the operation (`prepare` / `commit` / `rollback`).
        op: String,
    },
    /// The controller decided the transaction's outcome (journaled before
    /// the first message of the corresponding phase).
    Decision {
        /// The in-flight epoch.
        epoch: u64,
        /// `true` = commit everywhere; `false` = roll everything back.
        commit: bool,
    },
    /// The rollout — or its restart recovery — finalized.
    End {
        /// The epoch that finalized.
        epoch: u64,
        /// `true` = the epoch committed; `false` = it was rolled back
        /// (and burned).
        committed: bool,
    },
}

impl IntentRecord {
    /// The epoch this record is about.
    pub fn epoch(&self) -> u64 {
        match self {
            IntentRecord::Begin { epoch, .. }
            | IntentRecord::Sent { epoch, .. }
            | IntentRecord::Decision { epoch, .. }
            | IntentRecord::End { epoch, .. } => *epoch,
        }
    }

    /// Serialize as one JSON object — one line of the file-backed log.
    pub fn to_json(&self) -> Value {
        let mut o = Object::new();
        match self {
            IntentRecord::Begin {
                epoch,
                prior_epoch,
                targets,
            } => {
                o.push("t", Value::str("begin"));
                o.push("epoch", Value::Number(*epoch as f64));
                o.push("prior_epoch", Value::Number(*prior_epoch as f64));
                o.push(
                    "targets",
                    Value::Array(targets.iter().map(|s| Value::str(s.clone())).collect()),
                );
            }
            IntentRecord::Sent {
                epoch,
                switch,
                token,
                op,
            } => {
                o.push("t", Value::str("sent"));
                o.push("epoch", Value::Number(*epoch as f64));
                o.push("switch", Value::str(switch.clone()));
                o.push("token", Value::Number(*token as f64));
                o.push("op", Value::str(op.clone()));
            }
            IntentRecord::Decision { epoch, commit } => {
                o.push("t", Value::str("decision"));
                o.push("epoch", Value::Number(*epoch as f64));
                o.push("commit", Value::Bool(*commit));
            }
            IntentRecord::End { epoch, committed } => {
                o.push("t", Value::str("end"));
                o.push("epoch", Value::Number(*epoch as f64));
                o.push("committed", Value::Bool(*committed));
            }
        }
        Value::Object(o)
    }

    /// Parse a record serialized by [`IntentRecord::to_json`]. `None` on
    /// any unknown or malformed shape (a torn tail line after a crash).
    pub fn from_json(v: &Value) -> Option<IntentRecord> {
        let num = |k: &str| v.get(k).and_then(|x| x.as_number()).map(|n| n as u64);
        let epoch = num("epoch")?;
        match v.get("t")?.as_str()? {
            "begin" => Some(IntentRecord::Begin {
                epoch,
                prior_epoch: num("prior_epoch")?,
                targets: v
                    .get("targets")?
                    .as_array()?
                    .iter()
                    .map(|s| s.as_str().map(str::to_string))
                    .collect::<Option<Vec<String>>>()?,
            }),
            "sent" => Some(IntentRecord::Sent {
                epoch,
                switch: v.get("switch")?.as_str()?.to_string(),
                token: num("token")?,
                op: v.get("op")?.as_str()?.to_string(),
            }),
            "decision" => Some(IntentRecord::Decision {
                epoch,
                commit: v.get("commit")?.as_bool()?,
            }),
            "end" => Some(IntentRecord::End {
                epoch,
                committed: v.get("committed")?.as_bool()?,
            }),
            _ => None,
        }
    }
}

/// A durable, append-only store for the write-ahead intent log.
///
/// Implementations must make [`IntentStore::append`] durable before
/// returning — the rollout engine journals before every send, and
/// recovery correctness rests on the journal never lagging the wire. An
/// append error halts the rollout as a crash would (`LYR0577`), because
/// an un-journaled send could not be recovered.
pub trait IntentStore {
    /// Durably append one record.
    fn append(&mut self, record: &IntentRecord) -> Result<(), RuntimeError>;

    /// Read every record back, oldest first. Fails with `LYR0574` when
    /// the log is unreadable or holds a torn non-tail record.
    fn load(&self) -> Result<Vec<IntentRecord>, RuntimeError>;
}

/// In-memory [`IntentStore`] with injectable append faults, for chaos
/// tests (a store whose disk "fails" mid-rollout).
#[derive(Debug, Clone, Default)]
pub struct MemIntentStore {
    records: Vec<IntentRecord>,
    appends: u64,
    fail_after: Option<u64>,
}

impl MemIntentStore {
    /// An empty, never-failing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store whose appends succeed `n` times and then fail with
    /// `LYR0577` forever (injected store fault).
    pub fn failing_after(n: u64) -> Self {
        MemIntentStore {
            fail_after: Some(n),
            ..Self::default()
        }
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl IntentStore for MemIntentStore {
    fn append(&mut self, record: &IntentRecord) -> Result<(), RuntimeError> {
        self.appends += 1;
        if self.fail_after.is_some_and(|n| self.appends > n) {
            return Err(RuntimeError::new(
                "intent store append failed (injected fault)".to_string(),
            )
            .with_code(codes::INTENT_STORE_IO));
        }
        self.records.push(record.clone());
        Ok(())
    }

    fn load(&self) -> Result<Vec<IntentRecord>, RuntimeError> {
        Ok(self.records.clone())
    }
}

/// File-backed [`IntentStore`]: one JSON record per line, append-only,
/// synced per append. A torn *tail* line (the crash cut a record short)
/// is tolerated on load — exactly like a real write-ahead log — but a
/// torn record followed by intact ones means corruption (`LYR0574`).
#[derive(Debug, Clone)]
pub struct FileIntentStore {
    path: PathBuf,
}

impl FileIntentStore {
    /// Use (creating on first append if absent) the log at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Self {
        FileIntentStore { path: path.into() }
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl IntentStore for FileIntentStore {
    fn append(&mut self, record: &IntentRecord) -> Result<(), RuntimeError> {
        let io_err = |e: std::io::Error| {
            RuntimeError::new(format!(
                "intent log `{}`: append failed: {e}",
                self.path.display()
            ))
            .with_code(codes::INTENT_STORE_IO)
        };
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .map_err(io_err)?;
        let mut line = record.to_json().to_pretty();
        line.retain(|c| c != '\n');
        writeln!(f, "{line}").map_err(io_err)?;
        f.sync_data().map_err(io_err)?;
        Ok(())
    }

    fn load(&self) -> Result<Vec<IntentRecord>, RuntimeError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(RuntimeError::new(format!(
                    "intent log `{}`: unreadable: {e}",
                    self.path.display()
                ))
                .with_code(codes::INTENT_LOG_CORRUPT))
            }
        };
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            let parsed = lyra_diag::json::parse(line)
                .ok()
                .as_ref()
                .and_then(IntentRecord::from_json);
            match parsed {
                Some(r) => records.push(r),
                // The crash can cut the *last* record short; anything
                // torn earlier means the log cannot be trusted.
                None if i + 1 == lines.len() => break,
                None => {
                    return Err(RuntimeError::new(format!(
                        "intent log `{}`: torn record at line {} (not the tail); \
                         the log cannot be trusted",
                        self.path.display(),
                        i + 1
                    ))
                    .with_code(codes::INTENT_LOG_CORRUPT))
                }
            }
        }
        Ok(records)
    }
}

// ---------------------------------------------------------------------------
// Controller crash injection
// ---------------------------------------------------------------------------

/// A named boundary of the rollout transaction where a [`CrashPlan`] can
/// kill the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// After the `Begin` record is journaled, before any message is sent.
    BeforePrepare,
    /// After every prepare was acknowledged, before the commit decision
    /// is journaled.
    AfterPrepare,
    /// After the commit decision is journaled, before the first commit
    /// message is sent.
    AfterCommitDecision,
    /// After every commit was acknowledged, before the rollout finalizes
    /// (retained prior epochs and tokens not yet dropped).
    BeforeFinalize,
    /// After a rollback decision is journaled, before the first rollback
    /// message is sent.
    AfterRollbackDecision,
}

impl CrashPoint {
    /// Every boundary, in transaction order — chaos sweeps iterate this.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::BeforePrepare,
        CrashPoint::AfterPrepare,
        CrashPoint::AfterCommitDecision,
        CrashPoint::BeforeFinalize,
        CrashPoint::AfterRollbackDecision,
    ];

    /// Stable name (what `lyrac --crash-at` accepts).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::BeforePrepare => "before-prepare",
            CrashPoint::AfterPrepare => "after-prepare",
            CrashPoint::AfterCommitDecision => "commit-decision",
            CrashPoint::BeforeFinalize => "before-finalize",
            CrashPoint::AfterRollbackDecision => "rollback-decision",
        }
    }

    /// Parse a [`CrashPoint::name`].
    pub fn parse(s: &str) -> Option<CrashPoint> {
        CrashPoint::ALL.iter().copied().find(|p| p.name() == s)
    }
}

/// [`LossyChannel`](crate::channel::LossyChannel)-style controller-crash
/// injection: kills the controller at a planned point inside
/// [`crate::Runtime::apply_rollout`]. The rollout aborts with `LYR0570`,
/// leaving the switches and the intent log exactly as the crash found
/// them; [`crate::Runtime::recover`] must then finish the transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    at: Option<CrashPoint>,
    after_sends: Option<u64>,
}

impl CrashPlan {
    /// Crash at the named transaction boundary.
    pub fn at(point: CrashPoint) -> Self {
        CrashPlan {
            at: Some(point),
            after_sends: None,
        }
    }

    /// Crash immediately after the `n`-th (1-based) message intent is
    /// journaled, before that message reaches the wire. Varying `n`
    /// sweeps every mid-phase point of the transaction.
    pub fn after_sends(n: u64) -> Self {
        CrashPlan {
            at: None,
            after_sends: Some(n.max(1)),
        }
    }
}

/// Controller-side journaling context for one rollout: the optional
/// intent store, the crash plan, and the running message-intent count.
pub(crate) struct Journal<'j> {
    store: Option<&'j mut dyn IntentStore>,
    crash: Option<CrashPlan>,
    sends: u64,
}

impl<'j> Journal<'j> {
    pub(crate) fn new(store: Option<&'j mut dyn IntentStore>, crash: Option<CrashPlan>) -> Self {
        Journal {
            store,
            crash,
            sends: 0,
        }
    }

    fn append(&mut self, rec: IntentRecord) -> Result<(), RuntimeError> {
        if let Some(store) = self.store.as_deref_mut() {
            store.append(&rec)?;
        }
        Ok(())
    }

    fn crash_error() -> RuntimeError {
        RuntimeError::new(
            "controller crashed (injected by crash plan); the intent log and switch-held \
             state are the only surviving record — run recovery"
                .to_string(),
        )
        .with_code(codes::CONTROLLER_CRASHED)
    }

    /// Journal-free crash check at a named boundary.
    fn boundary(&mut self, point: CrashPoint) -> Result<(), RuntimeError> {
        if self.crash.as_ref().and_then(|c| c.at) == Some(point) {
            return Err(Self::crash_error());
        }
        Ok(())
    }

    /// Journal the intent to send one message (write-ahead), then apply
    /// the crash plan's send counter.
    fn intent(&mut self, msg: &ControlMsg) -> Result<(), RuntimeError> {
        self.append(IntentRecord::Sent {
            epoch: msg.epoch,
            switch: msg.switch.clone(),
            token: msg.token,
            op: msg.op.name().to_string(),
        })?;
        self.sends += 1;
        if self.crash.as_ref().and_then(|c| c.after_sends) == Some(self.sends) {
            return Err(Self::crash_error());
        }
        Ok(())
    }
}

/// What one switch experienced during a rollout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchRollout {
    /// Switch name.
    pub switch: String,
    /// Wall-clock spent in the prepare phase (including retries).
    pub prepare: Duration,
    /// Wall-clock spent in the commit phase (including retries).
    pub commit: Duration,
    /// Retransmissions this switch needed across both phases.
    pub retries: u64,
    /// Logical entries the new epoch adds on this switch.
    pub entries_added: u64,
    /// Logical entries the new epoch removes from this switch.
    pub entries_removed: u64,
    /// Entries whose key survives but whose value changes — counted apart
    /// from adds/removes so a value-only update is neither invisible in
    /// the report nor dropped from the wire delta.
    pub entries_modified: u64,
}

impl SwitchRollout {
    fn to_json(&self) -> Value {
        let mut o = Object::new();
        o.push("switch", Value::String(self.switch.clone()));
        o.push("prepare_us", Value::Number(self.prepare.as_micros() as f64));
        o.push("commit_us", Value::Number(self.commit.as_micros() as f64));
        o.push("retries", Value::Number(self.retries as f64));
        o.push("entries_added", Value::Number(self.entries_added as f64));
        o.push(
            "entries_removed",
            Value::Number(self.entries_removed as f64),
        );
        o.push(
            "entries_modified",
            Value::Number(self.entries_modified as f64),
        );
        Value::Object(o)
    }
}

/// The outcome of one transactional rollout: exactly one of
/// [`RolloutReport::committed`] / [`RolloutReport::rolled_back`] is set
/// (both false only for a no-op), plus per-switch phase timings and
/// channel-level fault counters.
#[derive(Debug, Clone, Default)]
pub struct RolloutReport {
    /// The epoch this rollout tried to install (burned if rolled back).
    pub epoch: u64,
    /// Every switch flipped to the new epoch.
    pub committed: bool,
    /// The rollout failed and every switch is back on the prior epoch.
    pub rolled_back: bool,
    /// Switches reverted out-of-band because even the rollback message
    /// budget was exhausted (the last-resort path that preserves the
    /// all-or-nothing invariant).
    pub forced_rollbacks: u64,
    /// Transmission attempts across all messages and phases.
    pub messages_sent: u64,
    /// Retransmissions (attempts beyond the first per logical message).
    pub retries: u64,
    /// Attempts the channel dropped outright.
    pub dropped: u64,
    /// Attempts delivered whose acknowledgement was lost (the switch
    /// applied the message; the sender retried anyway).
    pub ack_lost: u64,
    /// Attempts delivered twice by the channel.
    pub duplicates: u64,
    /// Late (reordered) copies the channel replayed to switches.
    pub late_replays: u64,
    /// Estimated wire payload of every prepare message of this rollout
    /// (counted once per logical message; retransmissions do not
    /// multiply it). Delta-based prepares make this scale with what
    /// changed, not with total table state.
    pub prepare_bytes: u64,
    /// Switches prepared with a delta (add/remove/modify records against
    /// their serving state).
    pub delta_prepares: u64,
    /// Switches prepared with a full state snapshot — the fallback for
    /// fresh switches and for switches whose retained base the
    /// controller no longer trusts (e.g. after a drift repair).
    pub snapshot_prepares: u64,
    /// Instructions that changed host between the old and new placements.
    pub instr_churn: usize,
    /// Per-switch phase record.
    pub switches: Vec<SwitchRollout>,
    /// Structured diagnostics (LYR056x) describing any failure and the
    /// rollback, in occurrence order.
    pub diagnostics: Vec<Diagnostic>,
    /// End-to-end wall clock.
    pub elapsed: Duration,
}

impl RolloutReport {
    /// A rollout that had nothing to do (e.g. failing an already-failed
    /// switch): no messages, no epoch change.
    pub(crate) fn noop(epoch: u64) -> Self {
        RolloutReport {
            epoch,
            ..Default::default()
        }
    }

    /// Switches that gained at least one entry — what a failover re-sync
    /// reports as "re-synced onto".
    pub fn resynced(&self) -> Vec<String> {
        self.switches
            .iter()
            .filter(|s| s.entries_added > 0)
            .map(|s| s.switch.clone())
            .collect()
    }

    /// Serialize for session JSON / the CLI (`--emit-stats`).
    pub fn to_json(&self) -> Value {
        let mut channel = Object::new();
        channel.push("messages_sent", Value::Number(self.messages_sent as f64));
        channel.push("retries", Value::Number(self.retries as f64));
        channel.push("dropped", Value::Number(self.dropped as f64));
        channel.push("ack_lost", Value::Number(self.ack_lost as f64));
        channel.push("duplicates", Value::Number(self.duplicates as f64));
        channel.push("late_replays", Value::Number(self.late_replays as f64));
        let mut o = Object::new();
        o.push("epoch", Value::Number(self.epoch as f64));
        o.push("committed", Value::Bool(self.committed));
        o.push("rolled_back", Value::Bool(self.rolled_back));
        o.push(
            "forced_rollbacks",
            Value::Number(self.forced_rollbacks as f64),
        );
        o.push("instr_churn", Value::Number(self.instr_churn as f64));
        o.push("prepare_bytes", Value::Number(self.prepare_bytes as f64));
        o.push("delta_prepares", Value::Number(self.delta_prepares as f64));
        o.push(
            "snapshot_prepares",
            Value::Number(self.snapshot_prepares as f64),
        );
        o.push("channel", Value::Object(channel));
        o.push("elapsed_us", Value::Number(self.elapsed.as_micros() as f64));
        o.push(
            "switches",
            Value::Array(self.switches.iter().map(|s| s.to_json()).collect()),
        );
        o.push(
            "diagnostics",
            Value::Array(self.diagnostics.iter().map(|d| d.to_json()).collect()),
        );
        Value::Object(o)
    }
}

/// Apply a delivered control message to its switch's state machine. This
/// is the "switch agent": it rules only on what the message says and what
/// the switch already knows — it cannot see the sender's intent, which is
/// why the epoch guards below exist (stale late replays must lose).
pub(crate) fn deliver(states: &mut BTreeMap<String, SwitchState>, msg: &ControlMsg) {
    let Some(st) = states.get_mut(&msg.switch) else {
        return; // message to a switch that no longer exists: lost on the floor
    };
    if st.tokens.contains(&msg.token) {
        return; // duplicate or replay of an already-applied message
    }
    match &msg.op {
        ControlOp::Prepare { staged } => {
            // Stage only a *newer* epoch, and never clobber a staged epoch
            // with an older one — a late prepare from a rolled-back
            // attempt must not overwrite the current attempt's stage.
            let newer_than_active = msg.epoch > st.epoch;
            let not_stale = st.staged.as_ref().is_none_or(|(e, _)| msg.epoch >= *e);
            if newer_than_active && not_stale {
                st.staged = Some((msg.epoch, staged.clone()));
            }
        }
        ControlOp::PrepareDelta {
            base_epoch,
            ops,
            globals,
            batch_index,
            ..
        } => {
            let newer_than_active = msg.epoch > st.epoch;
            let not_stale = st.staged.as_ref().is_none_or(|(e, _)| msg.epoch >= *e);
            if *batch_index == 0 {
                // The first batch opens the staged epoch: an O(pages)
                // copy-on-write clone of the serving state with the new
                // epoch's globals swapped in. It obeys the same epoch
                // guards as a full-snapshot prepare, plus one more: the
                // switch must still be on the epoch the controller
                // computed the delta against, or applying the operations
                // would converge on the wrong state.
                if newer_than_active && not_stale && *base_epoch == st.epoch {
                    let mut dp = st.dp.clone();
                    dp.globals = globals.clone();
                    apply_entry_ops(&mut dp, ops);
                    st.staged = Some((msg.epoch, dp));
                }
            } else if let Some((e, dp)) = st.staged.as_mut() {
                // Later batches append to the already-open staged epoch.
                // A batch for any other epoch — a replay from a burned
                // attempt — is dropped; the idempotency token still gets
                // recorded below, exactly like a refused stale prepare.
                if *e == msg.epoch {
                    apply_entry_ops(dp, ops);
                }
            }
        }
        ControlOp::Commit => {
            if st.epoch != msg.epoch {
                if let Some((e, dp)) = st.staged.take() {
                    if e == msg.epoch {
                        let old = std::mem::replace(&mut st.dp, dp);
                        st.prior = Some((st.epoch, old));
                        st.epoch = msg.epoch;
                    } else {
                        st.staged = Some((e, dp)); // commit for a different epoch: ignore
                    }
                }
            }
        }
        ControlOp::Rollback => {
            if st.epoch == msg.epoch {
                if let Some((e, dp)) = st.prior.take() {
                    st.dp = dp;
                    st.epoch = e;
                }
            }
            if st.staged.as_ref().is_some_and(|(e, _)| *e == msg.epoch) {
                st.staged = None;
            }
        }
        ControlOp::Query | ControlOp::Probe => {
            // Read-only: the switch reports its epochs (query) or its
            // liveness (health probe) in the ack. Never mutates and
            // records no token, so a retried query/probe is not
            // suppressed by the guard.
            return;
        }
    }
    st.tokens.insert(msg.token);
}

/// Revert one switch out-of-band (console access): the last resort when
/// even rollback messages cannot get through.
pub(crate) fn force_rollback(st: &mut SwitchState, epoch: u64) {
    if st.epoch == epoch {
        if let Some((e, dp)) = st.prior.take() {
            st.dp = dp;
            st.epoch = e;
        }
    }
    st.staged = None;
}

/// Apply one batch of entry operations to a staged data-plane state.
fn apply_entry_ops(dp: &mut DataPlaneState, ops: &[EntryOp]) {
    for op in ops {
        match op {
            EntryOp::Set { table, key, value } => {
                dp.install(table, *key, *value);
            }
            EntryOp::Remove { table, key } => {
                dp.uninstall(table, *key);
            }
        }
    }
}

/// One switch's diff between its serving state and a staged next epoch:
/// the wire operations that turn the former into the latter, with adds,
/// removes and value-only modifications counted separately (a value
/// rewrite is neither an add nor a remove — conflating them under-counts
/// churn and, worse, drops the entry from a delta entirely).
#[derive(Debug, Clone, Default)]
struct SwitchDelta {
    ops: Vec<EntryOp>,
    added: u64,
    removed: u64,
    modified: u64,
}

/// Diff two per-switch data-plane states. Built on
/// [`ExternTable::for_each_delta`], so the cost is O(pages + changed
/// entries) when `next` was derived from `current` by copy-on-write
/// mutation — the common staged-epoch case — never worse than one sorted
/// merge.
fn entry_delta(current: &DataPlaneState, next: &DataPlaneState) -> SwitchDelta {
    let mut d = SwitchDelta::default();
    let empty = ExternTable::new();
    let tables: BTreeSet<&String> = current.externs.keys().chain(next.externs.keys()).collect();
    for table in tables {
        let base = current.externs.get(table).unwrap_or(&empty);
        let target = next.externs.get(table).unwrap_or(&empty);
        base.for_each_delta(target, |key, old, new| match (old, new) {
            (None, Some(value)) => {
                d.added += 1;
                d.ops.push(EntryOp::Set {
                    table: table.clone(),
                    key,
                    value,
                });
            }
            (Some(_), Some(value)) => {
                d.modified += 1;
                d.ops.push(EntryOp::Set {
                    table: table.clone(),
                    key,
                    value,
                });
            }
            (Some(_), None) => {
                d.removed += 1;
                d.ops.push(EntryOp::Remove {
                    table: table.clone(),
                    key,
                });
            }
            (None, None) => {}
        });
    }
    d
}

/// Entry operations per [`ControlOp::PrepareDelta`] batch. Bounds the
/// per-message payload so the lossy-channel fault model (drop, duplicate,
/// late replay — ruled per transmission) applies at a realistic message
/// granularity instead of one arbitrarily large frame per switch.
const DELTA_BATCH_OPS: usize = 4096;

/// Split one switch's delta into batched prepare operations. Batch 0
/// carries the staged epoch's complete globals map — globals are replaced
/// wholesale, not diffed; they are a handful of registers next to
/// million-entry tables. An empty delta still produces batch 0, so an
/// untouched switch opens the staged epoch and takes part in the commit.
fn delta_batches(
    base_epoch: u64,
    delta: &SwitchDelta,
    globals: &BTreeMap<String, Vec<u64>>,
) -> Vec<ControlOp> {
    let batches_total = delta.ops.len().div_ceil(DELTA_BATCH_OPS).max(1) as u32;
    let mut chunks = delta.ops.chunks(DELTA_BATCH_OPS);
    (0..batches_total)
        .map(|batch_index| ControlOp::PrepareDelta {
            base_epoch,
            ops: chunks.next().unwrap_or_default().to_vec(),
            globals: if batch_index == 0 {
                globals.clone()
            } else {
                BTreeMap::new()
            },
            batch_index,
            batches_total,
        })
        .collect()
}

/// Mint the idempotency token for message `seq` (1-based) of `epoch`:
/// `(epoch << 32) | seq`. Each half gets a full 32 bits; overflowing
/// either is a hard controller error (`LYR0590`) rather than a silent
/// collision with another epoch's tokens — the failure mode of the old
/// 20-bit split, where message 2²⁰+1 of epoch N wore the same token as
/// message 1 of epoch N+1 and was swallowed as a duplicate.
pub(crate) fn mint_token(epoch: u64, seq: u64) -> Result<u64, RuntimeError> {
    if epoch > u64::from(u32::MAX) || seq > u64::from(u32::MAX) {
        return Err(RuntimeError::new(format!(
            "idempotency token space exhausted: epoch {epoch} / message sequence {seq} \
             do not fit the (epoch << 32) | seq token split"
        ))
        .with_code(codes::TOKEN_OVERFLOW));
    }
    Ok((epoch << 32) | seq)
}

impl<'a> Runtime<'a> {
    /// Transactionally converge this deployment onto `new_output`
    /// (typically the result of
    /// [`crate::Compiler::recompile_for_faults`]): stage every surviving
    /// switch's next-epoch state (prepare), then flip them all (commit),
    /// rolling every switch back to the current epoch if either phase
    /// fails. On success the runtime serves `new_output` — including its
    /// placement and flow paths — with all logical entries re-planned onto
    /// the new shard layout; switches dropped by the new placement are
    /// flushed. Global registers restart at zero on the new epoch, as on a
    /// re-flashed device.
    ///
    /// Returns the [`RolloutReport`] for both outcomes; `Err` is reserved
    /// for rollouts that could not *start* (scope-health gate `LYR0564`,
    /// or prepare-side capacity validation `LYR0560` — nothing was sent,
    /// nothing changed).
    pub fn apply_rollout(
        &mut self,
        new_output: &'a CompileOutput,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
    ) -> Result<RolloutReport, RuntimeError> {
        self.rollout_inner(new_output, channel, config, None)
    }

    /// Like [`Runtime::apply_rollout`], but with a durable write-ahead
    /// intent log: every prepare/commit/rollback decision and idempotency
    /// token is journaled to `store` *before* the corresponding channel
    /// send. If the controller crashes mid-rollout (`LYR0570`, injected
    /// via [`RolloutConfig::crash`]) — or the store itself fails
    /// (`LYR0577`) — the switches and the journal are left exactly as the
    /// crash found them, and [`Runtime::recover`] drives the in-flight
    /// transaction to a deterministic all-commit or all-rollback outcome.
    pub fn apply_rollout_logged(
        &mut self,
        new_output: &'a CompileOutput,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
        store: &mut dyn IntentStore,
    ) -> Result<RolloutReport, RuntimeError> {
        self.rollout_inner(new_output, channel, config, Some(store))
    }

    fn rollout_inner(
        &mut self,
        new_output: &'a CompileOutput,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
        store: Option<&mut dyn IntentStore>,
    ) -> Result<RolloutReport, RuntimeError> {
        if let Some((alg, h)) = config.scope_health.iter().find(|(_, h)| !h.survivable()) {
            return Err(RuntimeError::new(format!(
                "rollout gated: the scope of `{alg}` is not survivable ({h:?}) — \
                 traffic could not traverse the new placement"
            ))
            .with_code(codes::ROLLOUT_GATED));
        }
        let entries = self.logical_entries();
        // Stage the complete next-epoch layout: fresh states under the new
        // placement for surviving switches, empty states (a flush) for
        // live switches the new placement dropped.
        let mut staged: BTreeMap<String, DataPlaneState> = BTreeMap::new();
        for sw in new_output.placement.switches.keys() {
            if self.faults.switch_failed(sw) {
                continue;
            }
            staged.insert(sw.clone(), SwitchState::fresh(new_output, 0).dp);
        }
        for sw in self.states.keys() {
            staged.entry(sw.clone()).or_default();
        }
        plan_entries(new_output, &self.faults, &mut staged, &entries).map_err(|e| {
            RuntimeError::new(format!("prepare validation failed: {}", e.message))
                .with_code(codes::ROLLOUT_PREPARE_FAILED)
        })?;
        // A switch the new placement adds gets a live (empty) state first,
        // at the current epoch, so it participates in the transaction.
        for sw in staged.keys() {
            if !self.states.contains_key(sw) {
                self.states
                    .insert(sw.clone(), SwitchState::fresh(new_output, self.epoch));
                // A fresh switch has no retained base to delta against;
                // its first prepare carries a full snapshot.
                self.needs_snapshot.insert(sw.clone());
            }
        }
        let churn =
            PlacementDiff::between(&self.output.placement, &new_output.placement).total_churn();
        let mut journal = Journal::new(store, config.crash.clone());
        let report = self.two_phase(staged, churn, channel, config, &mut journal)?;
        if report.committed {
            self.output = new_output;
        }
        Ok(report)
    }

    /// Fail `switch` and transactionally re-sync its lost entries onto
    /// surviving shards through `channel`. The reliable-channel wrapper is
    /// [`Runtime::fail_switch`]; this variant exists so chaos tests can
    /// exercise re-sync over a lossy channel.
    pub fn fail_switch_with_channel(
        &mut self,
        switch: &str,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
    ) -> Result<RolloutReport, RuntimeError> {
        self.known_switch(switch)?;
        if self.faults.switch_failed(switch) {
            return Ok(RolloutReport::noop(self.epoch));
        }
        // Capture the logical view *before* the switch dies — its shard
        // contributes the entries that must move.
        let entries = self.logical_entries();
        self.states.remove(switch);
        self.faults.add_switch(switch);
        self.resync_rollout(entries, channel, config)
    }

    /// Fail a switch at runtime: its shards are lost, paths through it
    /// refuse traffic, and every entry it held is re-synced onto surviving
    /// shards as a transaction (retry + rollback semantics come from the
    /// rollout engine). Returns the switches that received re-synced
    /// entries; failing an already-failed switch is a no-op.
    pub fn fail_switch(&mut self, switch: &str) -> Result<Vec<String>, RuntimeError> {
        let report = self.fail_switch_with_channel(
            switch,
            &mut ReliableChannel::new(),
            &RolloutConfig::default(),
        )?;
        self.require_converged(&report, &format!("re-sync after `{switch}` failed"))?;
        Ok(report.resynced())
    }

    /// Fail the link `a — b` and transactionally re-plan entry coverage
    /// for the paths that no longer carry traffic. See
    /// [`Runtime::fail_switch_with_channel`].
    pub fn fail_link_with_channel(
        &mut self,
        a: &str,
        b: &str,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
    ) -> Result<RolloutReport, RuntimeError> {
        self.known_switch(a)?;
        self.known_switch(b)?;
        if self.faults.link_failed(a, b) {
            return Ok(RolloutReport::noop(self.epoch));
        }
        let entries = self.logical_entries();
        self.faults.add_link(a, b);
        self.resync_rollout(entries, channel, config)
    }

    /// Fail a link at runtime (reliable channel); see
    /// [`Runtime::fail_switch`] for the transaction semantics.
    pub fn fail_link(&mut self, a: &str, b: &str) -> Result<Vec<String>, RuntimeError> {
        let report = self.fail_link_with_channel(
            a,
            b,
            &mut ReliableChannel::new(),
            &RolloutConfig::default(),
        )?;
        self.require_converged(&report, &format!("re-sync after link `{a}` — `{b}` failed"))?;
        Ok(report.resynced())
    }

    fn known_switch(&self, switch: &str) -> Result<(), RuntimeError> {
        let known = self.states.contains_key(switch)
            || self.output.placement.switches.contains_key(switch)
            || self
                .output
                .flow_paths
                .values()
                .flatten()
                .any(|p| p.iter().any(|s| s == switch));
        if known {
            Ok(())
        } else {
            // Same stable code the fault model uses when a `FaultSet` names
            // an element outside the topology — the self-healer calls the
            // `fail_*` entry points repeatedly and matches on this.
            Err(RuntimeError::new(format!("unknown switch `{switch}`"))
                .with_code(codes::SCOPE_UNKNOWN_SWITCH))
        }
    }

    /// The reliable-channel wrappers promise convergence; surface a
    /// rollback (impossible over [`ReliableChannel`], but the type system
    /// cannot know that) as an error rather than losing it.
    fn require_converged(&self, report: &RolloutReport, what: &str) -> Result<(), RuntimeError> {
        if report.rolled_back {
            return Err(RuntimeError::new(format!(
                "{what} rolled back; the prior epoch {} is still serving",
                self.epoch
            ))
            .with_code(codes::ROLLOUT_ROLLED_BACK));
        }
        Ok(())
    }

    /// Re-plan the logical entry set onto the current (post-fault)
    /// topology and roll the result out. The planner is seeded with the
    /// surviving shard contents, so entries still covered on all their
    /// paths stay put — only lost coverage moves.
    pub(crate) fn resync_rollout(
        &mut self,
        entries: Vec<(String, u64, u64)>,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
    ) -> Result<RolloutReport, RuntimeError> {
        // O(pages) copy-on-write clones: staging every switch copies page
        // directories, never entries. The planner then rebuilds state only
        // for switches whose entry coverage actually moved; every other
        // staged state keeps sharing pages with the serving one, so its
        // delta is empty and its prepare is a single open-epoch batch.
        let mut staged: BTreeMap<String, DataPlaneState> = self
            .states
            .iter()
            .map(|(sw, st)| (sw.clone(), st.dp.clone()))
            .collect();
        let touched =
            plan_entries(self.output, &self.faults, &mut staged, &entries).map_err(|e| {
                RuntimeError::new(format!("re-sync planning failed: {}", e.message))
                    .with_code(codes::ROLLOUT_PREPARE_FAILED)
            })?;
        // Untouched switches must still share every page with their
        // serving state — the re-plan must not rebuild them wholesale.
        debug_assert!(
            staged.iter().all(|(sw, dp)| {
                touched.contains(sw)
                    || self.states.get(sw).is_none_or(|st| {
                        dp.externs.len() == st.dp.externs.len()
                            && dp
                                .externs
                                .iter()
                                .zip(&st.dp.externs)
                                .all(|((an, at), (bn, bt))| an == bn && at.same_pages(bt))
                    })
            }),
            "re-sync rebuilt extern state for a switch the re-plan did not touch"
        );
        let mut journal = Journal::new(None, config.crash.clone());
        self.two_phase(staged, 0, channel, config, &mut journal)
    }

    /// The transaction core: prepare every target switch, then commit them
    /// all, rolling everything back on any exhausted message budget. A
    /// channel failure *is* a result here, reported through
    /// [`RolloutReport::rolled_back`]; `Err` means the *controller* died
    /// — an injected crash (`LYR0570`) or an intent-store fault
    /// (`LYR0577`) — leaving switches and journal mid-flight for
    /// [`Runtime::recover`].
    fn two_phase(
        &mut self,
        staged: BTreeMap<String, DataPlaneState>,
        instr_churn: usize,
        channel: &mut dyn ControlChannel,
        config: &RolloutConfig,
        journal: &mut Journal<'_>,
    ) -> Result<RolloutReport, RuntimeError> {
        let t0 = Instant::now();
        if let Some(obs) = &self.observer {
            obs.on_phase_start(Phase::Rollout);
        }
        // Allocate the next epoch. Rolled-back epochs are burned: the
        // counter never rewinds, so message epochs are unique per attempt.
        self.epoch_counter += 1;
        let epoch = self.epoch_counter;
        let mut rng = Rng::new(config.seed ^ epoch.rotate_left(17));
        let mut report = RolloutReport {
            epoch,
            instr_churn,
            ..Default::default()
        };
        let targets: Vec<String> = staged.keys().cloned().collect();
        // One structural diff per switch drives both the report counters
        // and the delta prepares — O(pages + changed entries) per switch,
        // because the staged states share pages with the serving ones.
        let empty_dp = DataPlaneState::default();
        let mut deltas: Vec<SwitchDelta> = Vec::with_capacity(targets.len());
        for sw in &targets {
            let current = self.states.get(sw).map(|st| &st.dp).unwrap_or(&empty_dp);
            let next = staged.get(sw).unwrap_or(&empty_dp);
            let d = entry_delta(current, next);
            report.switches.push(SwitchRollout {
                switch: sw.clone(),
                entries_added: d.added,
                entries_removed: d.removed,
                entries_modified: d.modified,
                ..Default::default()
            });
            deltas.push(d);
        }
        let mut token_seq = 0u64;

        journal.append(IntentRecord::Begin {
            epoch,
            prior_epoch: self.epoch,
            targets: targets.clone(),
        })?;
        journal.boundary(CrashPoint::BeforePrepare)?;

        let mut failure: Option<(lyra_diag::Code, String)> = None;
        // --- Phase 1: prepare -------------------------------------------
        // Delta by default: each switch receives only the batched entry
        // operations that turn its serving state into the staged epoch.
        // A switch whose retained base the controller cannot trust —
        // fresh under this placement, or repaired after drift — falls
        // back to a full-snapshot prepare.
        'prepare: for (i, sw) in targets.iter().enumerate() {
            // Targets come from `staged.keys()`; a miss would be an
            // engine bug, handled gracefully rather than by indexing.
            let Some(dp) = staged.get(sw) else {
                failure = Some((
                    codes::ROLLOUT_PREPARE_FAILED,
                    format!("switch `{sw}` has no staged state for epoch {epoch}"),
                ));
                break;
            };
            let snapshot = config.force_snapshot
                || self.needs_snapshot.contains(sw)
                || self.states.get(sw).is_none_or(|st| st.epoch != self.epoch);
            let batches: Vec<ControlOp> = if snapshot {
                report.snapshot_prepares += 1;
                vec![ControlOp::Prepare { staged: dp.clone() }]
            } else {
                report.delta_prepares += 1;
                delta_batches(self.epoch, &deltas[i], &dp.globals)
            };
            let t = Instant::now();
            let before = report.retries;
            for op in batches {
                token_seq += 1;
                let msg = ControlMsg {
                    switch: sw.clone(),
                    epoch,
                    token: mint_token(epoch, token_seq)?,
                    op,
                };
                report.prepare_bytes += msg.wire_bytes() as u64;
                journal.intent(&msg)?;
                // Batches are sent strictly in order, each acknowledged
                // before the next: batch 0 opens the staged epoch, later
                // ones append to it.
                let sent = send(
                    &mut self.states,
                    channel,
                    &msg,
                    config.max_attempts,
                    config,
                    &mut rng,
                    &mut report,
                );
                if !sent {
                    report.switches[i].prepare = t.elapsed();
                    report.switches[i].retries += report.retries - before;
                    failure = Some((
                        codes::ROLLOUT_PREPARE_FAILED,
                        format!(
                            "switch `{sw}` failed to prepare epoch {epoch}: control channel \
                             exhausted after {} attempts",
                            config.max_attempts
                        ),
                    ));
                    break 'prepare;
                }
            }
            report.switches[i].prepare = t.elapsed();
            report.switches[i].retries += report.retries - before;
        }
        // --- Phase 2: commit --------------------------------------------
        if failure.is_none() {
            journal.boundary(CrashPoint::AfterPrepare)?;
            journal.append(IntentRecord::Decision {
                epoch,
                commit: true,
            })?;
            journal.boundary(CrashPoint::AfterCommitDecision)?;
            for (i, sw) in targets.iter().enumerate() {
                token_seq += 1;
                let msg = ControlMsg {
                    switch: sw.clone(),
                    epoch,
                    token: mint_token(epoch, token_seq)?,
                    op: ControlOp::Commit,
                };
                journal.intent(&msg)?;
                let t = Instant::now();
                let before = report.retries;
                let sent = send(
                    &mut self.states,
                    channel,
                    &msg,
                    config.max_attempts,
                    config,
                    &mut rng,
                    &mut report,
                );
                report.switches[i].commit = t.elapsed();
                report.switches[i].retries += report.retries - before;
                if !sent {
                    failure = Some((
                        codes::ROLLOUT_COMMIT_TIMEOUT,
                        format!(
                            "switch `{sw}` did not acknowledge commit of epoch {epoch} \
                             within {} attempts",
                            config.max_attempts
                        ),
                    ));
                    break;
                }
            }
        }

        match failure {
            None => {
                journal.boundary(CrashPoint::BeforeFinalize)?;
                // Finalize: drop retained prior epochs and token logs; the
                // deployment now serves `epoch` everywhere.
                for st in self.states.values_mut() {
                    debug_assert_eq!(
                        st.epoch, epoch,
                        "a committed switch must be on the new epoch"
                    );
                    st.staged = None;
                    st.prior = None;
                    st.tokens.clear();
                }
                // Committed switches now hold exactly the state the
                // controller staged — deltas are trustworthy again.
                for sw in &targets {
                    self.needs_snapshot.remove(sw);
                }
                self.epoch = epoch;
                report.committed = true;
                journal.append(IntentRecord::End {
                    epoch,
                    committed: true,
                })?;
            }
            Some((code, message)) => {
                report
                    .diagnostics
                    .push(Diagnostic::error(code, message.clone()));
                journal.append(IntentRecord::Decision {
                    epoch,
                    commit: false,
                })?;
                journal.boundary(CrashPoint::AfterRollbackDecision)?;
                // Roll every target back — including switches that already
                // committed (they retained the prior epoch for exactly
                // this). Rollback messages get a 4× budget; if even that
                // is exhausted, revert out-of-band rather than leave a
                // mixed deployment.
                for sw in &targets {
                    token_seq += 1;
                    let msg = ControlMsg {
                        switch: sw.clone(),
                        epoch,
                        token: mint_token(epoch, token_seq)?,
                        op: ControlOp::Rollback,
                    };
                    journal.intent(&msg)?;
                    let sent = send(
                        &mut self.states,
                        channel,
                        &msg,
                        config.max_attempts.saturating_mul(4),
                        config,
                        &mut rng,
                        &mut report,
                    );
                    if !sent {
                        if let Some(st) = self.states.get_mut(sw) {
                            force_rollback(st, epoch);
                        }
                        report.forced_rollbacks += 1;
                        report.diagnostics.push(Diagnostic::warning(
                            codes::ROLLOUT_CHANNEL_EXHAUSTED,
                            format!(
                                "rollback of `{sw}` exhausted the control channel \
                                 ({} attempts); reverted out-of-band",
                                config.max_attempts.saturating_mul(4)
                            ),
                        ));
                    }
                }
                for st in self.states.values_mut() {
                    debug_assert_eq!(
                        st.epoch, self.epoch,
                        "rollback must restore the prior epoch"
                    );
                    st.staged = None;
                    st.prior = None;
                    st.tokens.clear();
                }
                report.rolled_back = true;
                report.diagnostics.push(
                    Diagnostic::warning(
                        codes::ROLLOUT_ROLLED_BACK,
                        format!(
                            "rollout to epoch {epoch} rolled back; epoch {} is serving \
                             on every switch",
                            self.epoch
                        ),
                    )
                    .with_note("the burned epoch is never reused; retry allocates a fresh one"),
                );
                journal.append(IntentRecord::End {
                    epoch,
                    committed: false,
                })?;
            }
        }
        // Either way the deployment converged; the controller's shadow of
        // switch-held state (what `audit_switches` diffs against) is
        // refreshed from the finalized states.
        self.refresh_expected();
        report.elapsed = t0.elapsed();
        if let Some(obs) = &self.observer {
            obs.on_phase_end(Phase::Rollout, report.elapsed);
            obs.on_rollout(&report);
        }
        Ok(report)
    }
}

/// Transmit one logical message with bounded retry, exponential backoff
/// and jitter, applying every delivery (including duplicates and drained
/// late replays) to the switch state machines. Returns whether an
/// acknowledgement was obtained within the budget.
pub(crate) fn send(
    states: &mut BTreeMap<String, SwitchState>,
    channel: &mut dyn ControlChannel,
    msg: &ControlMsg,
    attempts: u32,
    config: &RolloutConfig,
    rng: &mut Rng,
    report: &mut RolloutReport,
) -> bool {
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            report.retries += 1;
            std::thread::sleep(backoff(config, attempt, rng));
        }
        // Reordered copies of earlier messages may arrive at any time;
        // deliver the due ones first. Their acks go nowhere.
        for late in channel.drain_late() {
            report.late_replays += 1;
            deliver(states, &late);
        }
        report.messages_sent += 1;
        match channel.transmit(msg) {
            Delivery::Delivered => {
                deliver(states, msg);
                return true;
            }
            Delivery::Duplicated => {
                report.duplicates += 1;
                deliver(states, msg);
                deliver(states, msg); // the duplicate: a token-guarded no-op
                return true;
            }
            Delivery::AckLost => {
                // The switch applied it; the sender cannot know. The retry
                // will be acknowledged as a duplicate by the token guard.
                report.ack_lost += 1;
                deliver(states, msg);
            }
            Delivery::Dropped => {
                report.dropped += 1;
            }
        }
    }
    false
}

/// Exponential backoff for retry `attempt` (≥ 1), with seeded jitter of up
/// to +50% so racing rollouts do not retry in lockstep.
fn backoff(config: &RolloutConfig, attempt: u32, rng: &mut Rng) -> Duration {
    let factor = 1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX);
    let base = config
        .base_backoff
        .saturating_mul(factor)
        .min(config.max_backoff);
    base.mul_f64(1.0 + 0.5 * rng.next_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::LossyChannel;
    use crate::{CompileRequest, Compiler, SolveProfile};
    use lyra_ir::PacketState;
    use lyra_topo::{figure1_network, FaultSet};

    const LB: &str = r#"
        pipeline[LB]{loadbalancer};
        algorithm loadbalancer {
            extern dict<bit[32] h, bit[32] ip>[1024] conn_table;
            if (flow_h in conn_table) {
                ipv4.dstAddr = conn_table[flow_h];
            } else {
                copy_to_cpu();
            }
        }
    "#;
    const LB_SCOPES: &str =
        "loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]";

    fn lb_request() -> CompileRequest<'static> {
        CompileRequest::new(LB, LB_SCOPES, figure1_network())
            .with_solve_profile(SolveProfile::fast())
    }

    #[test]
    fn reliable_rollout_commits_and_flips_the_output() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 42, 0xabcd).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();

        let config = RolloutConfig::default().with_scope_health(r.scope_health.clone());
        let report = rt
            .apply_rollout(&r.output, &mut ReliableChannel::new(), &config)
            .unwrap();
        assert!(report.committed && !report.rolled_back, "{report:?}");
        assert_eq!(report.forced_rollbacks, 0);
        assert!(rt.epoch() > epoch_before);
        assert!(rt.epochs_coherent());
        assert!(std::ptr::eq(rt.output(), &r.output), "output must flip");

        // The logical entry survived the re-plan onto the new placement.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 42);
        let (end, _) = rt.inject(&["Agg4", "ToR3"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0xabcd);
    }

    #[test]
    fn dead_commit_channel_rolls_back_to_the_old_epoch() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 7, 0x0a00).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch_before = rt.epoch();
        let logical_before = rt.logical_entries();

        // Kill the first target (alphabetically Agg4) right after its
        // prepare lands: the commit starves and the rollout must revert —
        // via forced out-of-band rollback for the dead switch. A tiny
        // retry budget keeps the test fast.
        let mut chan = LossyChannel::new(3).with_switch_death("Agg4", 1);
        let config = RolloutConfig {
            max_attempts: 3,
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(50),
            ..Default::default()
        };
        let report = rt.apply_rollout(&r.output, &mut chan, &config).unwrap();
        assert!(report.rolled_back && !report.committed, "{report:?}");
        assert!(
            report.forced_rollbacks >= 1,
            "the dead switch cannot ack a rollback: {report:?}"
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Some(codes::ROLLOUT_ROLLED_BACK)),
            "{:?}",
            report.diagnostics
        );
        // Fully back on the old epoch: same epoch, same logical entries,
        // coherent switches, old output still serving.
        assert_eq!(rt.epoch(), epoch_before);
        assert!(rt.epochs_coherent());
        assert_eq!(rt.logical_entries(), logical_before);
        assert!(std::ptr::eq(rt.output(), &prior));
        // The burned epoch is never reused.
        let report2 = rt
            .apply_rollout(
                &r.output,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(report2.committed);
        assert!(report2.epoch > report.epoch);
    }

    #[test]
    fn unsurvivable_scope_health_gates_the_rollout() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        let mut health = BTreeMap::new();
        health.insert("loadbalancer".to_string(), ScopeHealth::Partitioned);
        let err = rt
            .apply_rollout(
                &prior,
                &mut ReliableChannel::new(),
                &RolloutConfig::default().with_scope_health(health),
            )
            .unwrap_err();
        assert_eq!(err.code, Some(codes::ROLLOUT_GATED));
        assert!(rt.epochs_coherent());
    }

    #[test]
    fn ack_loss_retries_are_idempotent() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let faults = FaultSet::new().with_switch("Agg3");
        let r = compiler
            .recompile_for_faults(&req, &prior, &faults)
            .unwrap();

        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 9, 0x0b00).unwrap();
        rt.fail_switch("Agg3").unwrap();

        // Every message loses its first ack, so every logical message is
        // applied + retried + token-acknowledged. Duplicates galore.
        let mut chan = LossyChannel::new(5).with_ack_loss_p(0.6).with_dup_p(0.3);
        let config = RolloutConfig {
            base_backoff: Duration::from_micros(5),
            max_backoff: Duration::from_micros(50),
            ..Default::default()
        };
        let report = rt.apply_rollout(&r.output, &mut chan, &config).unwrap();
        assert!(report.committed, "{report:?}");
        assert!(
            report.retries > 0,
            "ack loss must force retries: {report:?}"
        );
        assert!(rt.epochs_coherent());
        // Exactly one copy of the entry semantics: the key still resolves.
        let mut pkt = PacketState::new();
        pkt.set("flow_h", 9);
        let (end, _) = rt.inject(&["Agg4", "ToR4"], pkt).unwrap();
        assert_eq!(end.get("ipv4.dstAddr"), 0x0b00);
    }

    #[test]
    fn report_json_names_the_channel_counters() {
        let report = RolloutReport {
            epoch: 3,
            committed: true,
            messages_sent: 12,
            retries: 2,
            dropped: 1,
            ack_lost: 1,
            ..Default::default()
        };
        let json = report.to_json().to_pretty();
        for key in [
            "\"epoch\"",
            "\"committed\"",
            "\"rolled_back\"",
            "\"messages_sent\"",
            "\"retries\"",
            "\"late_replays\"",
            "\"switches\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn fail_switch_is_total_unknown_name_carries_a_coded_error() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        let err = rt.fail_switch("Banana").unwrap_err();
        assert_eq!(err.code, Some(lyra_diag::codes::SCOPE_UNKNOWN_SWITCH));
        assert!(err.message.contains("Banana"), "unhelpful message: {err}");
        // A bad name must not poison any state: the runtime still works.
        assert_eq!(rt.epoch(), 0);
        rt.install("conn_table", 7, 8).unwrap();
        let err = rt.fail_link("Agg3", "Durian").unwrap_err();
        assert_eq!(err.code, Some(lyra_diag::codes::SCOPE_UNKNOWN_SWITCH));
    }

    #[test]
    fn fail_switch_is_idempotent_repeat_is_a_noop() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 42, 0xabcd).unwrap();
        rt.fail_switch("Agg3").unwrap();
        let epoch = rt.epoch();
        // Failing it again: no new epoch, no re-sync traffic, Ok(empty).
        let again = rt.fail_switch("Agg3").unwrap();
        assert!(again.is_empty(), "noop re-fail re-synced {again:?}");
        assert_eq!(rt.epoch(), epoch, "a noop must not burn an epoch");
        let report = rt
            .fail_switch_with_channel(
                "Agg3",
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert_eq!(report.messages_sent, 0, "noop report sent messages");
        assert!(!report.committed && !report.rolled_back);
    }

    #[test]
    fn token_split_is_collision_free_and_errors_at_the_32_bit_boundary() {
        // Both halves get the full 32 bits.
        let max = u64::from(u32::MAX);
        assert_eq!(mint_token(0, 1).unwrap(), 1);
        assert_eq!(mint_token(max, max).unwrap(), u64::MAX);
        // The old 20-bit split's collision: message 2^20 + 1 of epoch 0
        // wore the same token as message 1 of epoch 1. Not any more.
        let high_seq = mint_token(0, (1 << 20) + 1).unwrap();
        let next_epoch = mint_token(1, 1).unwrap();
        assert_ne!(
            high_seq, next_epoch,
            "tokens must never collide across epochs"
        );
        // Overflowing either half is a hard coded error, never a wrap.
        for (epoch, seq) in [(max + 1, 1), (1, max + 1)] {
            let err = mint_token(epoch, seq).unwrap_err();
            assert_eq!(err.code, Some(codes::TOKEN_OVERFLOW), "{err}");
        }
    }

    #[test]
    fn entry_delta_sees_value_only_updates() {
        let mut current = DataPlaneState::new();
        current.install("t", 1, 10);
        current.install("t", 2, 20);
        current.install("t", 3, 30);
        let mut next = current.clone();
        next.install("t", 2, 99); // value-only rewrite: same key set
        next.install("t", 4, 40); // add
        next.uninstall("t", 3); // remove
        let d = entry_delta(&current, &next);
        assert_eq!((d.added, d.removed, d.modified), (1, 1, 1), "{d:?}");
        // The regression: a key-set diff would drop the `2 -> 99` rewrite
        // from the wire entirely. It must be an explicit Set op.
        assert!(
            d.ops.iter().any(|op| matches!(
                op,
                EntryOp::Set { table, key: 2, value: 99 } if table == "t"
            )),
            "value-only update missing from delta ops: {:?}",
            d.ops
        );
        // Untouched key 1 generates no op at all.
        assert_eq!(d.ops.len(), 3, "{:?}", d.ops);
    }

    #[test]
    fn value_only_divergence_converges_under_delta_prepares() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        for k in 0..16 {
            rt.install("conn_table", k, 0x1000 + k).unwrap();
        }
        // Rewrite one replica's value behind the controller's back. The
        // key set is now identical on every holder but the *values*
        // disagree — exactly the difference the old key-only diff could
        // not see, which under delta prepares would leave the replicas
        // divergent forever.
        let (victim, key) = rt
            .states
            .iter()
            .find_map(|(sw, st)| {
                st.dp
                    .externs
                    .get("conn_table")
                    .and_then(|t| t.iter().next())
                    .map(|(k, _)| (sw.clone(), k))
            })
            .expect("some switch must hold entries");
        rt.inject_drift(
            &victim,
            &crate::DriftOp::Corrupt {
                table: "conn_table".into(),
                key,
                value: 0xdead,
            },
        )
        .unwrap();
        let report = rt
            .apply_rollout(
                &prior,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(report.committed, "{report:?}");
        assert!(report.delta_prepares > 0, "{report:?}");
        let modified: u64 = report.switches.iter().map(|s| s.entries_modified).sum();
        assert!(
            modified >= 1,
            "value-only rewrite invisible to the rollout: {report:?}"
        );
        // Every holder of the key agrees again: the value rewrite made it
        // onto the wire as a Set op instead of being dropped.
        let values: BTreeSet<u64> = rt
            .states
            .values()
            .filter_map(|st| st.dp.externs.get("conn_table").and_then(|t| t.get(key)))
            .collect();
        assert_eq!(
            values.len(),
            1,
            "replicas still disagree on conn_table[{key}]: {values:?}"
        );
    }

    #[test]
    fn delta_prepares_beat_snapshots_on_wire_bytes() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let run = |force_snapshot: bool| {
            let mut rt = Runtime::new(&prior);
            for k in 0..300 {
                rt.install("conn_table", k, k + 1).unwrap();
            }
            let config = RolloutConfig::default().with_force_snapshot(force_snapshot);
            rt.apply_rollout(&prior, &mut ReliableChannel::new(), &config)
                .unwrap()
        };
        let delta = run(false);
        let snap = run(true);
        assert!(delta.committed && snap.committed);
        assert_eq!(delta.snapshot_prepares, 0, "{delta:?}");
        assert!(delta.delta_prepares > 0, "{delta:?}");
        assert_eq!(snap.delta_prepares, 0, "{snap:?}");
        // Identical placement, unchanged entries: the delta path sends
        // only batch-0 frames while the snapshot path re-ships all 300
        // entries. The gap must be at least the 10x the paper's
        // incremental-update claim needs.
        assert!(
            snap.prepare_bytes >= 10 * delta.prepare_bytes,
            "delta {} bytes vs snapshot {} bytes",
            delta.prepare_bytes,
            snap.prepare_bytes
        );
    }

    #[test]
    fn delta_prepare_refuses_wrong_base_and_wrong_epoch_batches() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut states = BTreeMap::new();
        let mut st = SwitchState::fresh(&prior, 5);
        st.dp.install("conn_table", 1, 10);
        states.insert("SW".to_string(), st);
        let delta_msg = |epoch, base_epoch, batch_index, token, ops: Vec<EntryOp>| ControlMsg {
            switch: "SW".into(),
            epoch,
            token,
            op: ControlOp::PrepareDelta {
                base_epoch,
                ops,
                globals: BTreeMap::new(),
                batch_index,
                batches_total: 2,
            },
        };
        // Batch 0 against the wrong base epoch: refused — the switch is
        // not on the state the controller diffed against.
        deliver(&mut states, &delta_msg(6, 4, 0, 1, vec![]));
        assert!(states["SW"].staged.is_none(), "wrong-base delta staged");
        // Correct base: opens the staged epoch from the serving state.
        deliver(&mut states, &delta_msg(6, 5, 0, 2, vec![]));
        assert_eq!(states["SW"].staged.as_ref().map(|(e, _)| *e), Some(6));
        // A later batch wearing a different epoch (late replay of a
        // burned attempt) must not leak into the open stage.
        let foreign = EntryOp::Set {
            table: "conn_table".into(),
            key: 7,
            value: 77,
        };
        deliver(&mut states, &delta_msg(9, 5, 1, 3, vec![foreign.clone()]));
        let staged = states["SW"].staged.as_ref().unwrap();
        assert!(
            !staged.1.externs["conn_table"].contains_key(7),
            "foreign-epoch batch applied"
        );
        // The matching epoch's batch 1 does apply.
        deliver(&mut states, &delta_msg(6, 5, 1, 4, vec![foreign]));
        let staged = states["SW"].staged.as_ref().unwrap();
        assert_eq!(staged.1.externs["conn_table"].get(7), Some(77));
        // The serving state never moved: prepares stage, they do not flip.
        assert_eq!(states["SW"].epoch, 5);
        assert_eq!(states["SW"].dp.externs["conn_table"].get(1), Some(10));
    }

    #[test]
    fn audit_repaired_switches_fall_back_to_snapshot_prepares() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        for k in 0..8 {
            rt.install("conn_table", k, k + 1).unwrap();
        }
        let (victim, key) = rt
            .states
            .iter()
            .find_map(|(sw, st)| {
                st.dp
                    .externs
                    .get("conn_table")
                    .and_then(|t| t.iter().next())
                    .map(|(k, _)| (sw.clone(), k))
            })
            .expect("some switch must hold entries");
        rt.inject_drift(
            &victim,
            &crate::DriftOp::Remove {
                table: "conn_table".into(),
                key,
            },
        )
        .unwrap();
        let audit = rt.audit_switches();
        assert!(audit.drifted_switches.contains(&victim));
        // The repaired switch's page structure no longer matches what a
        // COW-derived delta assumes, so its next prepare is a snapshot;
        // untouched switches still take the delta path.
        let report = rt
            .apply_rollout(
                &prior,
                &mut ReliableChannel::new(),
                &RolloutConfig::default(),
            )
            .unwrap();
        assert!(report.committed, "{report:?}");
        assert!(report.snapshot_prepares >= 1, "{report:?}");
        assert!(
            report.snapshot_prepares + report.delta_prepares >= 2,
            "{report:?}"
        );
    }

    #[test]
    fn fail_link_is_idempotent_and_covered_by_switch_failure() {
        let compiler = Compiler::new();
        let req = lb_request();
        let prior = compiler.compile(&req).unwrap();
        let mut rt = Runtime::new(&prior);
        rt.install("conn_table", 1, 2).unwrap();
        rt.fail_link("Agg3", "ToR3").unwrap();
        let epoch = rt.epoch();
        // Same link, either endpoint order: noop.
        assert!(rt.fail_link("ToR3", "Agg3").unwrap().is_empty());
        assert_eq!(rt.epoch(), epoch);
        // A link whose endpoint switch already failed is also a noop —
        // the switch failure subsumes it.
        rt.fail_switch("Agg4").unwrap();
        let epoch = rt.epoch();
        assert!(rt.fail_link("Agg4", "ToR4").unwrap().is_empty());
        assert_eq!(rt.epoch(), epoch);
    }
}
