//! Cross-compile synthesis cache.
//!
//! Synthesis (encode + solve + extract) dominates compile time (§7.2), yet
//! repeated compiles in one process — benchmark sweeps, the control-plane
//! [`crate::Runtime`] recompiling after program edits, test suites — often
//! re-solve an identical problem: same IR, same chip models, same scope
//! set. [`SynthCache`] memoizes successful [`lyra_synth::SynthResult`]s
//! behind an FNV-1a content hash of everything the solver sees, so a repeat
//! compile reuses the solved placement (and the encoded model that code
//! generation needs) without spending any solver effort.
//!
//! The cache is keyed on *content*, not identity: the canonical `Debug`
//! rendering of the IR, each resolved scope (algorithm, deploy mode, and
//! the name/ASIC of every candidate switch and path hop), the encoding
//! options, and the backend. Phase hints from incremental compiles are
//! deliberately **not** part of the key — hints steer which solution the
//! search finds first but never change satisfiability, so an incremental
//! recompile of an unchanged program is a legitimate (and common) hit.
//!
//! Share one cache across compiles with [`crate::Compiler::with_synth_cache`];
//! it is `Send + Sync` and cheap to share via [`Arc`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lyra_ir::IrProgram;
use lyra_synth::{Backend, EncodeOptions, SynthResult};
use lyra_topo::{ResolvedScope, Topology};

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over byte chunks.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
        // Length-prefix-free separator: NUL cannot appear in the text
        // renderings we hash, so adjacent fields can't alias.
        self.write(&[0]);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash of one synthesis problem: everything that determines the
/// encoded model and therefore the validity of a cached result. Two calls
/// with the same key would produce interchangeable [`SynthResult`]s.
pub fn synth_key(
    ir: &IrProgram,
    topo: &Topology,
    scopes: &[ResolvedScope],
    opts: &EncodeOptions,
    backend: &Backend,
) -> u64 {
    let mut h = Fnv::new();
    // The IR's Debug rendering is canonical: all collections are Vec or
    // BTreeMap, so iteration order is deterministic.
    h.write_str(&format!("{ir:?}"));
    h.write_str(&format!("{opts:?}"));
    h.write_str(&format!("{backend:?}"));
    for scope in scopes {
        h.write_str(&scope.algorithm);
        h.write_str(&format!("{:?}", scope.deploy));
        // Switch *ids* appear in the encoded model and the extracted
        // placement, so the key must pin both the ids and what they denote
        // (name + ASIC budgets) for a cached result to be reusable.
        for &s in &scope.switches {
            let sw = topo.switch(s);
            h.write_str(&format!("{}={}:{}", s.0, sw.name, sw.asic));
        }
        for path in &scope.paths {
            for &s in path {
                h.write_str(&format!("{}", s.0));
            }
            h.write_str("|");
        }
    }
    h.finish()
}

/// A concurrency-safe memo table from [`synth_key`] to synthesis results,
/// with hit/miss counters. Results are stored as [`Arc`]s so a hit shares
/// the (potentially large) encoded model instead of cloning it.
///
/// ```
/// use std::sync::Arc;
/// use lyra::{Compiler, CompileRequest, SynthCache};
/// use lyra_topo::figure1_network;
///
/// let cache = Arc::new(SynthCache::new());
/// let compiler = Compiler::new().with_synth_cache(cache.clone());
/// let req = CompileRequest::new(
///     "pipeline[P]{a}; algorithm a { x = 1; }",
///     "a: [ ToR1 | PER-SW | - ]",
///     figure1_network(),
/// );
/// let first = compiler.compile(&req).unwrap();
/// let second = compiler.compile(&req).unwrap();
/// assert_eq!(first.stats.synth_cache_hits, 0);
/// assert_eq!(second.stats.synth_cache_hits, 1);
/// assert_eq!(first.placement, second.placement);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SynthCache {
    entries: Mutex<HashMap<u64, Arc<SynthResult>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SynthCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a synthesis result by key, counting a hit or a miss.
    pub fn lookup(&self, key: u64) -> Option<Arc<SynthResult>> {
        let found = self.entries.lock().unwrap().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a synthesis result under a key (last writer wins; entries are
    /// interchangeable by construction of [`synth_key`]).
    pub fn insert(&self, key: u64, result: Arc<SynthResult>) {
        self.entries.lock().unwrap().insert(key, result);
    }

    /// Cached problems currently stored.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Total lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_ir::frontend;
    use lyra_lang::parse_scopes;
    use lyra_topo::{figure1_network, resolve_scope};

    fn setup(src: &str, scopes: &str) -> (IrProgram, Topology, Vec<ResolvedScope>) {
        let ir = frontend(src).unwrap();
        let topo = figure1_network();
        let resolved = parse_scopes(scopes)
            .unwrap()
            .iter()
            .map(|s| resolve_scope(&topo, s).unwrap())
            .collect();
        (ir, topo, resolved)
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let (ir, topo, scopes) = setup(
            "pipeline[P]{a}; algorithm a { x = 1; }",
            "a: [ ToR1 | PER-SW | - ]",
        );
        let opts = EncodeOptions::default();
        let k1 = synth_key(&ir, &topo, &scopes, &opts, &Backend::Native);
        let k2 = synth_key(&ir, &topo, &scopes, &opts, &Backend::Native);
        assert_eq!(k1, k2, "same inputs, same key");

        let (ir2, _, _) = setup(
            "pipeline[P]{a}; algorithm a { x = 2; }",
            "a: [ ToR1 | PER-SW | - ]",
        );
        assert_ne!(
            synth_key(&ir2, &topo, &scopes, &opts, &Backend::Native),
            k1,
            "program change changes key"
        );

        let (_, _, scopes2) = setup(
            "pipeline[P]{a}; algorithm a { x = 1; }",
            "a: [ ToR2 | PER-SW | - ]",
        );
        assert_ne!(
            synth_key(&ir, &topo, &scopes2, &opts, &Backend::Native),
            k1,
            "scope change changes key"
        );

        let opts2 = EncodeOptions {
            allow_recirculation: true,
            ..Default::default()
        };
        assert_ne!(
            synth_key(&ir, &topo, &scopes, &opts2, &Backend::Native),
            k1,
            "encoding options change key"
        );
    }

    #[test]
    fn counters_track_lookups() {
        let cache = SynthCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(42).map(|_| ()), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
    }
}
