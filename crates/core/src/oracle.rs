//! Cross-backend semantic oracle (differential checking of emitted code).
//!
//! The compiler's translators are the least-verified link in the chain: a
//! placement can be solver-correct while the emitted P4₁₄/P4₁₆/NPL silently
//! diverges from the program's meaning. This module closes that gap by
//! *executing the emitted artifacts*: each generated program is parsed back
//! into an executable model ([`lyra_codegen::oracle`]) and run against
//! seeded packets, then compared with the IR reference interpreter
//! ([`lyra_ir::interp`]) running the exact instruction subset the switch
//! hosts.
//!
//! For every case the oracle compares three observable surfaces:
//!
//! 1. final values of every field the switch writes (header fields and
//!    algorithm-prefixed metadata, under canonical `md.<alg>_<var>` names);
//! 2. final register-array contents;
//! 3. the multiset of canonical effects (`drop`, `set_egress_port`, …).
//!
//! Divergences are minimized (init fields zeroed, table entries dropped,
//! while the divergence persists) and reported as `LYR0601` diagnostics;
//! artifacts the oracle cannot parse are `LYR0603`; control-stub problems
//! (leftover TODOs, missing rules, capacity mismatches) are `LYR0605`.
//! `lyrac --oracle N` drives [`check_output`] after every compile.

use std::collections::{BTreeMap, BTreeSet};

use lyra_codegen::emit::{deployed_instrs, sanitize};
use lyra_codegen::oracle as cgo;
use lyra_codegen::Artifact;
use lyra_diag::{codes, Diagnostic};
use lyra_ir::{execute, DataPlaneState, Effect, InstrId, IrAlgorithm, IrOp, Operand, PacketState};
use lyra_synth::SwitchPlan;

use crate::CompileOutput;

/// Oracle run configuration.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Differential cases per artifact.
    pub cases: u64,
    /// RNG seed (same seed → same cases, byte for byte).
    pub seed: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            cases: 64,
            seed: 0xa11ce,
        }
    }
}

/// Outcome of one case on one side (reference or emitted), projected onto
/// the observable surface so sides compare with `==`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleCase {
    /// Observable canonical field name → final value.
    pub vars: BTreeMap<String, u64>,
    /// Register name → contents (trailing zeros trimmed).
    pub globals: BTreeMap<String, Vec<u64>>,
    /// Canonical effects, sorted (order across backends is not specified).
    pub effects: Vec<(String, Vec<u64>)>,
}

/// One generated differential input, in canonical (backend-independent)
/// form: the same `CaseInput` drives the IR reference and every backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CaseInput {
    /// Canonical field name → initial value (read-before-write fields).
    pub init: BTreeMap<String, u64>,
    /// Extern name → entries (key → value).
    pub entries: BTreeMap<String, BTreeMap<u64, u64>>,
}

impl CaseInput {
    /// Compact one-line rendering for diagnostics.
    fn describe(&self) -> String {
        let init: Vec<String> = self
            .init
            .iter()
            .filter(|(_, v)| **v != 0)
            .map(|(k, v)| format!("{k}={v:#x}"))
            .collect();
        let entries: Vec<String> = self
            .entries
            .iter()
            .flat_map(|(t, m)| m.iter().map(move |(k, v)| format!("{t}[{k:#x}]={v:#x}")))
            .collect();
        format!(
            "init {{{}}} entries {{{}}}",
            init.join(", "),
            entries.join(", ")
        )
    }
}

/// Report of a full oracle pass over a [`CompileOutput`].
#[derive(Debug, Default)]
pub struct OracleReport {
    /// Cases executed per artifact.
    pub cases_per_artifact: u64,
    /// Artifacts checked.
    pub artifacts_checked: usize,
    /// Divergence / parse / control diagnostics (empty when clean).
    pub diagnostics: Vec<Diagnostic>,
}

impl OracleReport {
    /// True when no artifact diverged and every stub checked out.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// xorshift64* — the repository's seeded-test RNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Mask to `width` bits (0 or ≥64 = untouched) — IR interpreter semantics.
fn mask(v: u64, w: u32) -> u64 {
    if w == 0 || w >= 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

/// Canonical name of an IR storage base in algorithm `alg`: header fields
/// stay verbatim, locals get the emitted metadata spelling.
fn canon_name(alg: &str, base: &str) -> String {
    if base.contains('.') {
        base.to_string()
    } else {
        format!("md.{alg}_{}", sanitize(base))
    }
}

/// The value-reading operands of an instruction (not the destination).
fn read_operands(op: &IrOp) -> Vec<&Operand> {
    match op {
        IrOp::Assign(a) | IrOp::Unary { a, .. } | IrOp::Slice { a, .. } => vec![a],
        IrOp::Binary { a, b, .. } => vec![a, b],
        IrOp::Call { args, .. } | IrOp::Action { args, .. } => args.iter().collect(),
        IrOp::TableMember { key, .. } | IrOp::TableLookup { key, .. } => vec![key],
        IrOp::GlobalRead { index, .. } => vec![index],
        IrOp::GlobalWrite { index, value, .. } => vec![index, value],
    }
}

/// Everything the oracle needs to know about one switch's deployment.
struct SwitchCtx<'a> {
    /// Algorithms and their deployed instruction subsets, in the order the
    /// emitters materialize them (alphabetical by algorithm).
    algs: Vec<(&'a IrAlgorithm, Vec<InstrId>)>,
    /// Canonical name → (algorithm index, base, width) of every
    /// read-before-write field: the case's free inputs.
    inputs: BTreeMap<String, (usize, String, u32)>,
    /// Canonical name → (algorithm index, base) of every observable (a
    /// written destination or a free input).
    observables: BTreeMap<String, (usize, String)>,
    /// Extern name → emitted table names backed by it.
    extern_tables: BTreeMap<String, Vec<String>>,
    /// Declared global register lengths. The reference data plane must be
    /// sized exactly like the emitted registers so out-of-range indices
    /// wrap identically on both sides.
    global_lens: BTreeMap<String, usize>,
}

impl SwitchCtx<'_> {
    /// A data-plane state with every declared register sized.
    fn fresh_dp(&self) -> DataPlaneState {
        let mut dp = DataPlaneState::new();
        for (g, &len) in &self.global_lens {
            dp.global(g, len);
        }
        dp
    }
}

fn switch_ctx<'a>(out: &'a CompileOutput, plan: &'a SwitchPlan) -> SwitchCtx<'a> {
    let algs = deployed_instrs(&out.ir, plan);
    // Instructions with emitted storage for their result: everything inside
    // a synthesized action body or hoisted into the parser. Deployed
    // instructions outside this set (predicate plumbing) are realized as
    // inlined match conditions — their IR values never materialize in the
    // artifact, so they must not be compared as observables.
    let mut materialized: BTreeMap<&str, BTreeSet<lyra_ir::InstrId>> = BTreeMap::new();
    for t in &plan.tables {
        let set = materialized.entry(t.algorithm.as_str()).or_default();
        for a in &t.actions {
            set.extend(a.instrs.iter().copied());
        }
    }
    for (alg_name, hoisted) in &plan.parser_sets {
        materialized
            .entry(alg_name.as_str())
            .or_default()
            .extend(hoisted.iter().copied());
    }
    let mut inputs = BTreeMap::new();
    let mut observables = BTreeMap::new();
    for (ai, (alg, instrs)) in algs.iter().enumerate() {
        let mat = materialized.get(alg.name.as_str());
        let mut written: BTreeSet<&str> = BTreeSet::new();
        for &id in instrs {
            let instr = alg.instr(id);
            let mut reads: Vec<lyra_ir::ValueId> = Vec::new();
            if let Some(p) = instr.pred {
                reads.push(p);
            }
            for o in read_operands(&instr.op) {
                if let Operand::Value(v) = o {
                    reads.push(*v);
                }
            }
            for v in reads {
                let info = alg.value(v);
                if !written.contains(info.base.as_str()) {
                    inputs.entry(canon_name(&alg.name, &info.base)).or_insert((
                        ai,
                        info.base.clone(),
                        info.width,
                    ));
                }
            }
            if let Some(d) = instr.dst {
                let info = alg.value(d);
                written.insert(info.base.as_str());
                if mat.is_some_and(|m| m.contains(&id)) {
                    observables
                        .entry(canon_name(&alg.name, &info.base))
                        .or_insert((ai, info.base.clone()));
                }
            }
        }
    }
    for (name, (ai, base, _)) in &inputs {
        observables
            .entry(name.clone())
            .or_insert((*ai, base.clone()));
    }
    let mut extern_tables: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for t in &plan.tables {
        if let Some(e) = t.extern_name() {
            extern_tables
                .entry(e.to_string())
                .or_default()
                .push(t.name.clone());
        }
    }
    let global_lens = out
        .ir
        .globals
        .iter()
        .map(|(g, &(_, len))| (g.clone(), len as usize))
        .collect();
    SwitchCtx {
        algs,
        inputs,
        observables,
        extern_tables,
        global_lens,
    }
}

/// Run the IR reference for `input` on this switch: each algorithm gets its
/// own local namespace (matching the emitted per-algorithm metadata
/// prefixes) while header fields and the data-plane state are shared.
fn reference_case(ctx: &SwitchCtx, input: &CaseInput) -> OracleCase {
    let mut dp = ctx.fresh_dp();
    for (ext, entries) in &input.entries {
        for (&k, &v) in entries {
            dp.install(ext, k, v);
        }
    }
    let mut headers: BTreeMap<String, u64> = BTreeMap::new();
    let mut effects: Vec<Effect> = Vec::new();
    let mut vars: BTreeMap<String, u64> = BTreeMap::new();
    for (ai, (alg, instrs)) in ctx.algs.iter().enumerate() {
        let mut pkt = PacketState::new();
        for (h, v) in &headers {
            pkt.set(h.clone(), *v);
        }
        for (name, (ia, base, _)) in &ctx.inputs {
            if *ia == ai || base.contains('.') {
                if let Some(v) = input.init.get(name) {
                    pkt.set(base.clone(), *v);
                }
            }
        }
        effects.extend(execute(alg, instrs, &mut pkt, &mut dp));
        for (base, v) in &pkt.values {
            if base.contains('.') {
                headers.insert(base.clone(), *v);
            }
        }
        for (name, (ia, base)) in &ctx.observables {
            if *ia == ai && !base.contains('.') {
                vars.insert(name.clone(), pkt.get(base));
            }
        }
    }
    for (name, (_, base)) in &ctx.observables {
        if base.contains('.') {
            vars.insert(name.clone(), headers.get(base).copied().unwrap_or(0));
        }
    }
    let mut fx: Vec<(String, Vec<u64>)> = effects
        .into_iter()
        .filter_map(|Effect::Action { name, args }| cgo::canonical_effect(&name, args))
        .collect();
    fx.sort();
    OracleCase {
        vars,
        globals: trim_globals(dp.globals),
        effects: fx,
    }
}

/// Drop trailing zeros and empty arrays so IR-side sparse registers and
/// model-side fully-sized registers compare equal.
fn trim_globals(globals: BTreeMap<String, Vec<u64>>) -> BTreeMap<String, Vec<u64>> {
    globals
        .into_iter()
        .filter_map(|(g, mut a)| {
            while a.last() == Some(&0) {
                a.pop();
            }
            if a.is_empty() {
                None
            } else {
                Some((g, a))
            }
        })
        .collect()
}

/// Run the parsed artifact model for `input` and project the outcome.
fn emitted_case(
    ctx: &SwitchCtx,
    model: &cgo::ArtifactModel,
    rules: &[cgo::rules::TableRule],
    input: &CaseInput,
) -> Result<OracleCase, String> {
    let mut oi = cgo::OracleInput {
        init: input.init.clone(),
        ..Default::default()
    };
    for (ext, entries) in &input.entries {
        if let Some(tables) = ctx.extern_tables.get(ext) {
            for t in tables {
                oi.table_entries.insert(t.clone(), entries.clone());
            }
        }
    }
    let outcome = cgo::run(model, rules, &oi)?;
    let mut vars = BTreeMap::new();
    for name in ctx.observables.keys() {
        vars.insert(name.clone(), outcome.vars.get(name).copied().unwrap_or(0));
    }
    let mut fx = outcome.effects;
    fx.sort();
    Ok(OracleCase {
        vars,
        globals: trim_globals(outcome.globals),
        effects: fx,
    })
}

/// Generate the seeded input for one case: random values for the free
/// inputs, noise table entries, plus hit-biased entries keyed on the values
/// the packet actually presents to each table (found by stepping the IR
/// reference).
fn gen_case_input(ctx: &SwitchCtx, seed: u64) -> CaseInput {
    let mut rng = Rng::new(seed);
    let mut input = CaseInput::default();
    for (name, (_, _, width)) in &ctx.inputs {
        // Small values keep comparisons and shifts interesting; full-width
        // values exercise masking. Mix both.
        let raw = if rng.next() & 1 == 0 {
            rng.next() & 0xff
        } else {
            rng.next()
        };
        input.init.insert(name.clone(), mask(raw, *width));
    }
    for ext in ctx.extern_tables.keys() {
        let m = input.entries.entry(ext.clone()).or_default();
        for _ in 0..(rng.next() % 3) {
            m.insert(rng.next() & 0xff, rng.next() & 0xffff_ffff);
        }
    }
    // Hit-biasing dry run: step the reference one instruction at a time and
    // capture the key value each table op would look up right now.
    let mut dp = ctx.fresh_dp();
    for (ext, entries) in &input.entries {
        for (&k, &v) in entries {
            dp.install(ext, k, v);
        }
    }
    let mut observed: Vec<(String, u64)> = Vec::new();
    let mut headers: BTreeMap<String, u64> = BTreeMap::new();
    for (ai, (alg, instrs)) in ctx.algs.iter().enumerate() {
        let mut pkt = PacketState::new();
        for (h, v) in &headers {
            pkt.set(h.clone(), *v);
        }
        for (name, (ia, base, _)) in &ctx.inputs {
            if *ia == ai || base.contains('.') {
                if let Some(v) = input.init.get(name) {
                    pkt.set(base.clone(), *v);
                }
            }
        }
        for &id in instrs {
            let instr = alg.instr(id);
            if let IrOp::TableMember { table, key } | IrOp::TableLookup { table, key } = &instr.op {
                let k = match key {
                    Operand::Const(c) => *c,
                    Operand::Value(v) => pkt.get(&alg.value(*v).base),
                };
                observed.push((table.clone(), k));
            }
            execute(alg, &[id], &mut pkt, &mut dp);
        }
        for (base, v) in &pkt.values {
            if base.contains('.') {
                headers.insert(base.clone(), *v);
            }
        }
    }
    for (ext, key) in observed {
        if rng.next() & 1 == 0 {
            input
                .entries
                .entry(ext)
                .or_default()
                .insert(key, rng.next() & 0xffff_ffff);
        }
    }
    input
}

/// Does `input` still produce a divergence?
fn diverges(
    ctx: &SwitchCtx,
    model: &cgo::ArtifactModel,
    rules: &[cgo::rules::TableRule],
    input: &CaseInput,
) -> bool {
    match emitted_case(ctx, model, rules, input) {
        Ok(e) => reference_case(ctx, input) != e,
        Err(_) => true,
    }
}

/// Shrink a diverging input: zero init fields and drop table entries while
/// the divergence persists.
fn minimize(
    ctx: &SwitchCtx,
    model: &cgo::ArtifactModel,
    rules: &[cgo::rules::TableRule],
    input: &CaseInput,
) -> CaseInput {
    let mut cur = input.clone();
    for _ in 0..4 {
        let mut changed = false;
        let keys: Vec<String> = cur
            .init
            .iter()
            .filter(|(_, v)| **v != 0)
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            let mut t = cur.clone();
            t.init.insert(k.clone(), 0);
            if diverges(ctx, model, rules, &t) {
                cur = t;
                changed = true;
            }
        }
        let entry_keys: Vec<(String, u64)> = cur
            .entries
            .iter()
            .flat_map(|(t, m)| m.keys().map(move |&k| (t.clone(), k)))
            .collect();
        for (t, k) in entry_keys {
            let mut trial = cur.clone();
            if let Some(m) = trial.entries.get_mut(&t) {
                m.remove(&k);
            }
            if diverges(ctx, model, rules, &trial) {
                cur = trial;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cur
}

/// First difference between two case outcomes, as text.
fn first_difference(reference: &OracleCase, emitted: &OracleCase) -> String {
    for (name, rv) in &reference.vars {
        let ev = emitted.vars.get(name).copied().unwrap_or(0);
        if *rv != ev {
            return format!("`{name}`: reference {rv:#x}, emitted {ev:#x}");
        }
    }
    for (g, ra) in &reference.globals {
        let ea = emitted.globals.get(g).cloned().unwrap_or_default();
        if *ra != ea {
            return format!("register `{g}`: reference {ra:?}, emitted {ea:?}");
        }
    }
    for (g, ea) in &emitted.globals {
        if !reference.globals.contains_key(g) {
            return format!("register `{g}`: reference [], emitted {ea:?}");
        }
    }
    if reference.effects != emitted.effects {
        return format!(
            "effects: reference {:?}, emitted {:?}",
            reference.effects, emitted.effects
        );
    }
    "outcomes differ".to_string()
}

/// Parse one artifact into its executable model.
pub fn parse_artifact(a: &Artifact) -> Result<cgo::ArtifactModel, String> {
    match a.lang {
        lyra_chips::TargetLang::P414 => cgo::p414::parse(&a.code),
        lyra_chips::TargetLang::P416 => cgo::p416::parse(&a.code),
        lyra_chips::TargetLang::Npl => cgo::npl::parse(&a.code),
    }
}

/// Check one artifact's control stub against its plan. Returns `LYR0605`
/// diagnostics for every problem found.
fn check_control(a: &Artifact, plan: &SwitchPlan, cm: &cgo::ControlModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ctl = |msg: String| {
        Diagnostic::error(
            codes::ORACLE_CONTROL,
            format!("{} ({}): {msg}", a.switch, a.asic),
        )
    };
    if cm.has_todo {
        out.push(ctl("control stub contains a TODO placeholder".into()));
    }
    if cm.epoch != 0 {
        out.push(ctl(format!(
            "control stub advertises PLACEMENT_EPOCH = {}, expected 0 at generation",
            cm.epoch
        )));
    }
    for (ext, &entries) in &plan.extern_entries {
        match cm.capacities.get(ext) {
            None => out.push(ctl(format!("no `{ext}_CAPACITY` in control stub"))),
            Some(&c) if c != entries => out.push(ctl(format!(
                "`{ext}_CAPACITY` is {c}, placement hosts {entries} entries"
            ))),
            _ => {}
        }
        for op in [
            "entry_set",
            "entry_get",
            "entry_delete",
            "prepare",
            "commit",
            "rollback",
        ] {
            let f = format!("{ext}_{op}");
            if !cm.functions.contains(&f) {
                out.push(ctl(format!("control stub lacks `{f}()`")));
            }
        }
    }
    if !cm.functions.contains("lyra_init") {
        out.push(ctl("control stub lacks `lyra_init(driver)`".into()));
    }
    for t in &plan.tables {
        if !cm.rules.iter().any(|r| r.table == t.name) {
            out.push(ctl(format!(
                "no LYRA_TABLE_RULES entry for table `{}`",
                t.name
            )));
        }
    }
    out
}

/// Run one deterministic case against one artifact; returns the projected
/// (reference, emitted) outcomes. Canonical names and effects are
/// backend-independent, so outcomes from different backends compiled from
/// the same program are directly comparable (pairwise differential
/// testing).
pub fn run_case(
    out: &CompileOutput,
    artifact: &Artifact,
    seed: u64,
) -> Result<(OracleCase, OracleCase, CaseInput), String> {
    let plan = out
        .placement
        .switches
        .get(&artifact.switch)
        .ok_or_else(|| format!("no plan for switch `{}`", artifact.switch))?;
    let mut model = parse_artifact(artifact)?;
    merge_ir_widths(out, plan, &mut model);
    let cm = cgo::parse_control(&artifact.control_plane)?;
    let ctx = switch_ctx(out, plan);
    let input = gen_case_input(&ctx, seed);
    let reference = reference_case(&ctx, &input);
    let emitted = emitted_case(&ctx, &model, &cm.rules, &input)?;
    Ok((reference, emitted, input))
}

/// Fill widths the artifact does not declare (header fields everywhere;
/// every field in NPL, whose bus only covers locals) from the IR, so the
/// model masks writes exactly like the reference interpreter.
fn merge_ir_widths(out: &CompileOutput, plan: &SwitchPlan, model: &mut cgo::ArtifactModel) {
    for (alg, instrs) in deployed_instrs(&out.ir, plan) {
        for &id in &instrs {
            let instr = alg.instr(id);
            if let Some(d) = instr.dst {
                let info = alg.value(d);
                if info.width > 0 {
                    model
                        .widths
                        .entry(canon_name(&alg.name, &info.base))
                        .or_insert(info.width);
                }
            }
        }
    }
}

/// Run the full oracle over a compile: every artifact, `cfg.cases` seeded
/// differential cases each, plus control-stub checks. Returns all
/// diagnostics; an empty report means the emitted code is semantically
/// faithful on every tested input.
pub fn check_output(out: &CompileOutput, cfg: &OracleConfig) -> OracleReport {
    let mut report = OracleReport {
        cases_per_artifact: cfg.cases,
        ..Default::default()
    };
    for a in &out.artifacts {
        let Some(plan) = out.placement.switches.get(&a.switch) else {
            continue;
        };
        report.artifacts_checked += 1;
        let mut model = match parse_artifact(a) {
            Ok(m) => m,
            Err(e) => {
                report.diagnostics.push(Diagnostic::error(
                    codes::ORACLE_PARSE,
                    format!(
                        "{} ({}): cannot parse emitted {:?}: {e}",
                        a.switch, a.asic, a.lang
                    ),
                ));
                continue;
            }
        };
        merge_ir_widths(out, plan, &mut model);
        let cm = match cgo::parse_control(&a.control_plane) {
            Ok(cm) => cm,
            Err(e) => {
                report.diagnostics.push(Diagnostic::error(
                    codes::ORACLE_PARSE,
                    format!("{} ({}): cannot parse control stub: {e}", a.switch, a.asic),
                ));
                continue;
            }
        };
        report.diagnostics.extend(check_control(a, plan, &cm));
        let ctx = switch_ctx(out, plan);
        for case in 0..cfg.cases {
            let seed = cfg
                .seed
                .wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let input = gen_case_input(&ctx, seed);
            let emitted = match emitted_case(&ctx, &model, &cm.rules, &input) {
                Ok(e) => e,
                Err(e) => {
                    report.diagnostics.push(Diagnostic::error(
                        codes::ORACLE_DIVERGENCE,
                        format!(
                            "{} ({}): emitted model failed on case {case}: {e}",
                            a.switch, a.asic
                        ),
                    ));
                    break;
                }
            };
            let reference = reference_case(&ctx, &input);
            if reference != emitted {
                let min = minimize(&ctx, &model, &cm.rules, &input);
                let (mr, me) = (
                    reference_case(&ctx, &min),
                    emitted_case(&ctx, &model, &cm.rules, &min).unwrap_or_default(),
                );
                report.diagnostics.push(
                    Diagnostic::error(
                        codes::ORACLE_DIVERGENCE,
                        format!(
                            "{} ({}): emitted {:?} diverges from the IR reference on case \
                             {case} — {}",
                            a.switch,
                            a.asic,
                            a.lang,
                            first_difference(&mr, &me)
                        ),
                    )
                    .with_note(format!("minimized counterexample: {}", min.describe())),
                );
                break; // one counterexample per artifact is enough
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileRequest, Compiler};
    use lyra_topo::figure1_network;

    fn compile(program: &str, scopes: &str) -> CompileOutput {
        Compiler::new()
            .compile(&CompileRequest::new(program, scopes, figure1_network()))
            .unwrap()
    }

    #[test]
    fn clean_on_simple_program() {
        let out = compile(
            r#"
            pipeline[P]{a};
            algorithm a {
                bit[8] x;
                x = ipv4.ttl + 1;
                if (x > 10) { drop(); }
            }
            "#,
            "a: [ ToR1 | PER-SW | - ]",
        );
        let report = check_output(&out, &OracleConfig { cases: 32, seed: 7 });
        assert!(report.is_clean(), "diagnostics: {:#?}", report.diagnostics);
        assert_eq!(report.artifacts_checked, 1);
    }

    #[test]
    fn clean_on_table_program_all_langs() {
        let program = r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t;
                bit[32] h;
                h = crc32_hash(ipv4.srcAddr, ipv4.dstAddr);
                if (h in t) { ipv4.dstAddr = t[h]; }
            }
        "#;
        // ToR1 = Tofino (P4₁₄); Agg1 (figure 1) spans other ASICs via
        // PER-SW below; cover all three langs through distinct switches.
        let out = compile(program, "a: [ ToR1,ToR3,Agg1 | PER-SW | - ]");
        let langs: BTreeSet<_> = out
            .artifacts
            .iter()
            .map(|a| format!("{:?}", a.lang))
            .collect();
        assert!(langs.len() >= 2, "want multiple langs, got {langs:?}");
        let report = check_output(&out, &OracleConfig { cases: 24, seed: 3 });
        assert!(report.is_clean(), "diagnostics: {:#?}", report.diagnostics);
    }

    #[test]
    fn reports_minimized_divergence_on_tampered_artifact() {
        let mut out = compile(
            "pipeline[P]{a}; algorithm a { bit[8] x; x = ipv4.ttl + 1; }",
            "a: [ ToR1 | PER-SW | - ]",
        );
        // Sabotage the emitted arithmetic: + 1 becomes + 2.
        out.artifacts[0].code = out.artifacts[0].code.replace(", 1);", ", 2);");
        let report = check_output(&out, &OracleConfig { cases: 16, seed: 1 });
        assert!(!report.is_clean());
        let d = &report.diagnostics[0];
        assert_eq!(d.code, Some(codes::ORACLE_DIVERGENCE));
        assert!(d.message.contains("diverges"), "{}", d.message);
    }

    #[test]
    fn flags_control_stub_todo() {
        let mut out = compile(
            "pipeline[P]{a}; algorithm a { x = 1; }",
            "a: [ ToR1 | PER-SW | - ]",
        );
        out.artifacts[0]
            .control_plane
            .push_str("\n# TODO: driver call\n");
        let report = check_output(&out, &OracleConfig { cases: 1, seed: 1 });
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Some(codes::ORACLE_CONTROL)));
    }
}
