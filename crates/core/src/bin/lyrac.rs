//! `lyrac` — the Lyra compiler command line.
//!
//! ```text
//! lyrac --program prog.lyra --scopes scopes.txt --topology topo.txt \
//!       [--out DIR] [--backend z3|native] [--objective min-switches] \
//!       [--no-parser-hoisting]
//! ```
//!
//! Reads a Lyra program, an algorithm scope specification (§3.3 syntax),
//! and a topology description; writes one chip-specific program plus a
//! Python control-plane stub per target switch under `--out` (default
//! `lyra-out/`), and prints a placement summary.

use std::path::PathBuf;
use std::process::ExitCode;

use lyra::{Backend, CompileRequest, Compiler, Objective};
use lyra_chips::TargetLang;
use lyra_topo::parse_topology;

struct Args {
    program: PathBuf,
    scopes: PathBuf,
    topology: PathBuf,
    out: PathBuf,
    backend: Backend,
    objective: Objective,
    parser_hoisting: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: lyrac --program FILE --scopes FILE --topology FILE\n\
         \x20            [--out DIR] [--backend z3|native]\n\
         \x20            [--objective feasible|min-switches|max-use=SWITCH]\n\
         \x20            [--no-parser-hoisting]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut program = None;
    let mut scopes = None;
    let mut topology = None;
    let mut out = PathBuf::from("lyra-out");
    let mut backend = Backend::default();
    let mut objective = Objective::Feasible;
    let mut parser_hoisting = true;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--program" => program = Some(PathBuf::from(value(&mut it))),
            "--scopes" => scopes = Some(PathBuf::from(value(&mut it))),
            "--topology" => topology = Some(PathBuf::from(value(&mut it))),
            "--out" => out = PathBuf::from(value(&mut it)),
            "--backend" => {
                backend = match value(&mut it).as_str() {
                    "native" => Backend::Native,
                    #[cfg(feature = "z3-backend")]
                    "z3" => Backend::Z3,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        usage()
                    }
                }
            }
            "--objective" => {
                let v = value(&mut it);
                objective = if v == "feasible" {
                    Objective::Feasible
                } else if v == "min-switches" {
                    Objective::MinSwitches
                } else if let Some(sw) = v.strip_prefix("max-use=") {
                    Objective::MaxUseOf(sw.to_string())
                } else {
                    eprintln!("unknown objective `{v}`");
                    usage()
                };
            }
            "--no-parser-hoisting" => parser_hoisting = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    let (Some(program), Some(scopes), Some(topology)) = (program, scopes, topology) else {
        usage()
    };
    Args { program, scopes, topology, out, backend, objective, parser_hoisting }
}

fn main() -> ExitCode {
    let args = parse_args();
    let read = |p: &PathBuf| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let run = || -> Result<(), String> {
        let program = read(&args.program)?;
        let scopes = read(&args.scopes)?;
        let topo_src = read(&args.topology)?;
        let topology = parse_topology(&topo_src).map_err(|e| e.to_string())?;

        let out = Compiler::new()
            .backend(args.backend.clone())
            .objective(args.objective.clone())
            .parser_hoisting(args.parser_hoisting)
            .compile(&CompileRequest { program: &program, scopes: &scopes, topology })
            .map_err(|e| e.to_string())?;

        for w in &out.warnings {
            eprintln!("warning: {w}");
        }
        std::fs::create_dir_all(&args.out)
            .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
        for a in &out.artifacts {
            let ext = match a.lang {
                TargetLang::P414 | TargetLang::P416 => "p4",
                TargetLang::Npl => "npl",
            };
            let code_path = args.out.join(format!("{}.{ext}", a.switch));
            let ctl_path = args.out.join(format!("{}_control.py", a.switch));
            std::fs::write(&code_path, &a.code)
                .map_err(|e| format!("cannot write {}: {e}", code_path.display()))?;
            std::fs::write(&ctl_path, &a.control_plane)
                .map_err(|e| format!("cannot write {}: {e}", ctl_path.display()))?;
        }
        println!(
            "compiled {} algorithm(s) onto {} switch(es) in {:?}",
            out.ir.algorithms.len(),
            out.placement.used_switches(),
            out.stats.total
        );
        for (switch, plan) in &out.placement.switches {
            if plan.instrs.is_empty() {
                continue;
            }
            let tables: Vec<String> = plan
                .extern_entries
                .iter()
                .map(|(t, n)| format!("{t}({n})"))
                .collect();
            println!(
                "  {switch}: {} tables, {} actions{}",
                plan.usage.tables,
                plan.usage.actions,
                if tables.is_empty() {
                    String::new()
                } else {
                    format!(", extern entries: {}", tables.join(" "))
                }
            );
        }
        for (switch, summary) in out.validate_all().map_err(|e| e.to_string())? {
            let _ = (switch, summary); // validation enforced; details in files
        }
        println!("artifacts written to {}", args.out.display());
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lyrac: {e}");
            ExitCode::FAILURE
        }
    }
}
