//! `lyrac` — the Lyra compiler command line.
//!
//! ```text
//! lyrac --program prog.lyra --scopes scopes.txt --topology topo.txt \
//!       [--out DIR] [--objective min-switches] [--no-parser-hoisting] \
//!       [--solver sequential|portfolio|portfolio:N] \
//!       [--diag-format human|json] [--emit-stats FILE]
//! ```
//!
//! Reads a Lyra program, an algorithm scope specification (§3.3 syntax),
//! and a topology description; writes one chip-specific program plus a
//! Python control-plane stub per target switch under `--out` (default
//! `lyra-out/`), and prints a placement summary.
//!
//! Diagnostics render rustc-style with source snippets by default;
//! `--diag-format json` emits one JSON object on stdout with the failing
//! phase and every diagnostic (code, message, spans, notes) for editor and
//! CI integration. `--emit-stats FILE` writes the compile session record
//! (phase timings, solver search statistics, per-switch resource
//! utilization) as JSON.
//!
//! `--rollout-fail ELEMS` drives a transactional rollout end to end:
//! compile, simulate the deployment, fail the named elements
//! (`Agg3,ToR3-Agg4` = switch Agg3 plus the ToR3—Agg4 link), recompile for
//! the survivors, and apply the new placement as a two-phase update over a
//! seeded lossy control channel (`--rollout-drop-p`, `--rollout-seed`).
//! The rollout report (per-switch phase timings, retries, rollbacks)
//! prints to stdout and lands under `"rollout"` in `--emit-stats` JSON.

use std::path::PathBuf;
use std::process::ExitCode;

use lyra::{
    replay_compiled, replay_interpreted, replay_under_recovery, replay_under_rollout, AuditReport,
    Backend, CompileError, CompileRequest, Compiler, CrashPlan, CrashPoint, DriftOp,
    FileIntentStore, IntentStore, LossyChannel, MemIntentStore, Objective, RecoveryReport,
    ReplayConfig, ReplayReport, RolloutConfig, RolloutReport, Runtime, SolveProfile,
    SolverStrategy,
};
use lyra::{run_selfheal, ChaosSchedule, HealthConfig, SelfHealConfig, SelfHealOutcome, Target};
use lyra_chips::TargetLang;
use lyra_diag::json::{Object, Value};
use lyra_topo::{parse_topology, FaultSet};

#[derive(Clone, Copy, PartialEq, Eq)]
enum DiagFormat {
    Human,
    Json,
}

struct Args {
    program: PathBuf,
    scopes: PathBuf,
    topology: PathBuf,
    out: PathBuf,
    backend: Backend,
    objective: Objective,
    parser_hoisting: bool,
    solve_profile: Option<SolveProfile>,
    strategy: Option<SolverStrategy>,
    diag_format: DiagFormat,
    emit_stats: Option<PathBuf>,
    deadline_ms: Option<u64>,
    decision_budget: Option<u64>,
    rollout_fail: Option<String>,
    rollout_drop_p: f64,
    rollout_seed: u64,
    crash_at: Option<CrashPlan>,
    recover: bool,
    intent_log: Option<PathBuf>,
    audit: bool,
    audit_drift: u64,
    replay: Option<u64>,
    replay_workers: usize,
    replay_seed: u64,
    oracle: bool,
    oracle_cases: u64,
    oracle_seed: u64,
    monitor: bool,
    monitor_ticks: u64,
    monitor_seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: lyrac --program FILE --scopes FILE --topology FILE\n\
         \x20            [--out DIR] [--backend native]\n\
         \x20            [--objective feasible|min-switches|max-use=SWITCH]\n\
         \x20            [--no-parser-hoisting]\n\
         \x20            [--solve-profile fast|thorough|deadline:MS]\n\
         \x20            [--solver sequential|portfolio|portfolio:N]\n\
         \x20            [--deadline-ms N] [--decision-budget N]\n\
         \x20            [--diag-format human|json] [--emit-stats FILE]\n\
         \x20            [--rollout-fail ELEMS] [--rollout-drop-p P]\n\
         \x20            [--rollout-seed N]\n\
         \x20            [--crash-at POINT|sends:N] [--recover]\n\
         \x20            [--intent-log FILE]\n\
         \x20            [--audit] [--audit-drift N]\n\
         \x20            [--replay PACKETS] [--replay-workers N]\n\
         \x20            [--replay-seed N]\n\
         \x20            [--oracle] [--oracle-cases N] [--oracle-seed N]\n\
         \x20            [--monitor] [--monitor-ticks N] [--monitor-seed N]\n\
         \n\
         \x20 --monitor runs the closed self-healing loop against the\n\
         \x20 compiled deployment: a seeded chaos schedule kills (and later\n\
         \x20 revives) a placement switch while the health monitor probes\n\
         \x20 every switch and link on a virtual clock, confirms the\n\
         \x20 failure (phi-accrual suspicion, LYR0580-LYR0583), and the\n\
         \x20 self-healer recompiles, rolls out, audits, and restores\n\
         \x20 automatically (LYR0584-LYR0587). --monitor-ticks bounds the\n\
         \x20 virtual clock (default 64); --monitor-seed fixes the run.\n\
         \x20 With --replay PACKETS, traffic flows through every\n\
         \x20 remediation rollout and the final serving check.\n\
         \n\
         \x20 --oracle re-parses every emitted artifact and executes seeded\n\
         \x20 packets through it, comparing against the IR reference\n\
         \x20 interpreter; a divergence prints a minimized counterexample\n\
         \x20 (LYR06xx) and fails the build.\n\
         \n\
         \x20 --solve-profile picks a solver preset: `fast` (one sequential\n\
         \x20 search, accelerations on), `thorough` (monolithic portfolio\n\
         \x20 race, accelerations off — the reference configuration), or\n\
         \x20 `deadline:MS` (balanced default bounded by a wall-clock\n\
         \x20 deadline). --solver / --deadline-ms / --decision-budget\n\
         \x20 override individual fields of the chosen profile.\n\
         \n\
         \x20 --deadline-ms / --decision-budget bound the solve phase; on\n\
         \x20 expiry the degradation ladder still produces deployable code\n\
         \x20 and a LYR0550 warning names the fallback rung used.\n\
         \n\
         \x20 --rollout-fail simulates failing the named elements (comma-\n\
         \x20 separated; `A-B` is the link A—B), recompiles for the\n\
         \x20 survivors, and applies the new placement as a transactional\n\
         \x20 two-phase rollout over a seeded lossy control channel\n\
         \x20 (message-drop probability --rollout-drop-p, default 0).\n\
         \n\
         \x20 --replay pushes PACKETS seeded packets through the deployment\n\
         \x20 on the compiled batched engine and the reference interpreter\n\
         \x20 and prints both throughputs. Combined with --rollout-fail, the\n\
         \x20 traffic runs *while* the two-phase rollout flips epochs, and\n\
         \x20 the replay reports packet loss and mixed-epoch exposure.\n\
         \n\
         \x20 --crash-at kills the controller mid-rollout (requires\n\
         \x20 --rollout-fail) at a transaction boundary (before-prepare,\n\
         \x20 after-prepare, commit-decision, before-finalize,\n\
         \x20 rollback-decision) or after the Nth journaled message intent\n\
         \x20 (`sends:N`). Every decision and token is journaled write-ahead\n\
         \x20 (--intent-log FILE for a durable log; in-memory otherwise).\n\
         \x20 --recover then restarts the controller: it replays the intent\n\
         \x20 log, queries every switch, and drives the in-flight rollout to\n\
         \x20 all-commit or all-rollback (LYR0571/LYR0572). With --replay,\n\
         \x20 traffic flows through the crashed fleet during recovery.\n\
         \n\
         \x20 --audit runs the anti-entropy reconciliation: switch-held\n\
         \x20 state is diffed against the controller's expected state by\n\
         \x20 per-table content digest, drift is classified\n\
         \x20 (missing/extra/stale/stale-epoch, LYR0575) and repaired\n\
         \x20 minimally (LYR0576). --audit-drift N first corrupts N seeded\n\
         \x20 entries behind the controller's back to prove detection."
    );
    std::process::exit(2);
}

/// Parse `--solver` values: `sequential`, `portfolio` (auto-sized), or
/// `portfolio:N` for an explicit worker count.
fn parse_solver(v: &str) -> Option<SolverStrategy> {
    match v {
        "sequential" => Some(SolverStrategy::Sequential),
        "portfolio" => Some(SolverStrategy::Portfolio { workers: 0 }),
        _ => {
            let n = v.strip_prefix("portfolio:")?.parse().ok()?;
            Some(SolverStrategy::Portfolio { workers: n })
        }
    }
}

/// Parse `--solve-profile` values: `fast`, `thorough`, or `deadline:MS`.
fn parse_profile(v: &str) -> Option<SolveProfile> {
    match v {
        "fast" => Some(SolveProfile::fast()),
        "thorough" => Some(SolveProfile::thorough()),
        _ => {
            let ms: u64 = v.strip_prefix("deadline:")?.parse().ok()?;
            Some(SolveProfile::deadline(std::time::Duration::from_millis(ms)))
        }
    }
}

fn parse_args() -> Args {
    let mut program = None;
    let mut scopes = None;
    let mut topology = None;
    let mut out = PathBuf::from("lyra-out");
    let mut backend = Backend::default();
    let mut objective = Objective::Feasible;
    let mut parser_hoisting = true;
    let mut solve_profile = None;
    let mut strategy = None;
    let mut diag_format = DiagFormat::Human;
    let mut emit_stats = None;
    let mut deadline_ms = None;
    let mut decision_budget = None;
    let mut rollout_fail = None;
    let mut rollout_drop_p = 0.0;
    let mut rollout_seed = 0xC0FFEE;
    let mut crash_at = None;
    let mut recover = false;
    let mut intent_log = None;
    let mut audit = false;
    let mut audit_drift = 0u64;
    let mut replay = None;
    let mut replay_workers = 0usize;
    let mut replay_seed = ReplayConfig::default().seed;
    let mut oracle = false;
    let mut oracle_cases = lyra::OracleConfig::default().cases;
    let mut oracle_seed = lyra::OracleConfig::default().seed;
    let mut monitor = false;
    let mut monitor_ticks = 64u64;
    let mut monitor_seed = lyra::HealthConfig::default().seed;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| -> String {
            it.next().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--program" => program = Some(PathBuf::from(value(&mut it))),
            "--scopes" => scopes = Some(PathBuf::from(value(&mut it))),
            "--topology" => topology = Some(PathBuf::from(value(&mut it))),
            "--out" => out = PathBuf::from(value(&mut it)),
            "--backend" => {
                backend = match value(&mut it).as_str() {
                    "native" => Backend::Native,
                    other => {
                        eprintln!("unknown backend `{other}`");
                        usage()
                    }
                }
            }
            "--objective" => {
                let v = value(&mut it);
                objective = if v == "feasible" {
                    Objective::Feasible
                } else if v == "min-switches" {
                    Objective::MinSwitches
                } else if let Some(sw) = v.strip_prefix("max-use=") {
                    Objective::MaxUseOf(sw.to_string())
                } else {
                    eprintln!("unknown objective `{v}`");
                    usage()
                };
            }
            "--no-parser-hoisting" => parser_hoisting = false,
            "--solver" => {
                let v = value(&mut it);
                strategy = match parse_solver(&v) {
                    Some(s) => Some(s),
                    None => {
                        eprintln!("unknown solver strategy `{v}`");
                        usage()
                    }
                }
            }
            "--solve-profile" => {
                let v = value(&mut it);
                solve_profile = match parse_profile(&v) {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("unknown solve profile `{v}`");
                        usage()
                    }
                }
            }
            "--diag-format" => {
                diag_format = match value(&mut it).as_str() {
                    "human" => DiagFormat::Human,
                    "json" => DiagFormat::Json,
                    other => {
                        eprintln!("unknown diagnostic format `{other}`");
                        usage()
                    }
                }
            }
            "--emit-stats" => emit_stats = Some(PathBuf::from(value(&mut it))),
            "--deadline-ms" => {
                let v = value(&mut it);
                deadline_ms = match v.parse::<u64>() {
                    Ok(ms) => Some(ms),
                    Err(_) => {
                        eprintln!("invalid --deadline-ms value `{v}`");
                        usage()
                    }
                }
            }
            "--decision-budget" => {
                let v = value(&mut it);
                decision_budget = match v.parse::<u64>() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("invalid --decision-budget value `{v}`");
                        usage()
                    }
                }
            }
            "--rollout-fail" => rollout_fail = Some(value(&mut it)),
            "--rollout-drop-p" => {
                let v = value(&mut it);
                rollout_drop_p = match v.parse::<f64>() {
                    Ok(p) if (0.0..1.0).contains(&p) => p,
                    _ => {
                        eprintln!("invalid --rollout-drop-p value `{v}` (need 0 <= p < 1)");
                        usage()
                    }
                }
            }
            "--rollout-seed" => {
                let v = value(&mut it);
                rollout_seed = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("invalid --rollout-seed value `{v}`");
                        usage()
                    }
                }
            }
            "--crash-at" => {
                let v = value(&mut it);
                crash_at = if let Some(n) = v.strip_prefix("sends:") {
                    match n.parse::<u64>() {
                        Ok(n) if n > 0 => Some(CrashPlan::after_sends(n)),
                        _ => {
                            eprintln!("invalid --crash-at value `{v}` (need sends:N, N >= 1)");
                            usage()
                        }
                    }
                } else {
                    match CrashPoint::parse(&v) {
                        Some(p) => Some(CrashPlan::at(p)),
                        None => {
                            eprintln!(
                                "unknown crash point `{v}` (expected one of: {}, or sends:N)",
                                CrashPoint::ALL
                                    .iter()
                                    .map(|p| p.name())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            );
                            usage()
                        }
                    }
                }
            }
            "--recover" => recover = true,
            "--intent-log" => intent_log = Some(PathBuf::from(value(&mut it))),
            "--audit" => audit = true,
            "--audit-drift" => {
                let v = value(&mut it);
                audit_drift = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("invalid --audit-drift value `{v}`");
                        usage()
                    }
                };
                audit = true;
            }
            "--replay" => {
                let v = value(&mut it);
                replay = match v.parse::<u64>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("invalid --replay value `{v}`");
                        usage()
                    }
                }
            }
            "--replay-workers" => {
                let v = value(&mut it);
                replay_workers = match v.parse::<usize>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("invalid --replay-workers value `{v}`");
                        usage()
                    }
                }
            }
            "--replay-seed" => {
                let v = value(&mut it);
                replay_seed = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("invalid --replay-seed value `{v}`");
                        usage()
                    }
                }
            }
            "--oracle" => oracle = true,
            "--oracle-cases" => {
                let v = value(&mut it);
                oracle_cases = match v.parse::<u64>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("invalid --oracle-cases value `{v}`");
                        usage()
                    }
                };
                oracle = true;
            }
            "--oracle-seed" => {
                let v = value(&mut it);
                oracle_seed = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("invalid --oracle-seed value `{v}`");
                        usage()
                    }
                };
                oracle = true;
            }
            "--monitor" => monitor = true,
            "--monitor-ticks" => {
                let v = value(&mut it);
                monitor_ticks = match v.parse::<u64>() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("invalid --monitor-ticks value `{v}` (need N >= 1)");
                        usage()
                    }
                }
            }
            "--monitor-seed" => {
                let v = value(&mut it);
                monitor_seed = match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("invalid --monitor-seed value `{v}`");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    let (Some(program), Some(scopes), Some(topology)) = (program, scopes, topology) else {
        usage()
    };
    Args {
        program,
        scopes,
        topology,
        out,
        backend,
        objective,
        parser_hoisting,
        solve_profile,
        strategy,
        diag_format,
        emit_stats,
        deadline_ms,
        decision_budget,
        rollout_fail,
        rollout_drop_p,
        rollout_seed,
        crash_at,
        recover,
        intent_log,
        audit,
        audit_drift,
        replay,
        replay_workers,
        replay_seed,
        oracle,
        oracle_cases,
        oracle_seed,
        monitor,
        monitor_ticks,
        monitor_seed,
    }
}

/// An I/O or input failure outside the compile pipeline proper.
fn tool_error(args: &Args, message: String) -> ExitCode {
    match args.diag_format {
        DiagFormat::Human => eprintln!("lyrac: {message}"),
        DiagFormat::Json => {
            let mut o = Object::new();
            o.push("phase", Value::String("driver".into()));
            let mut d = Object::new();
            d.push("severity", Value::String("error".into()));
            d.push("message", Value::String(message));
            o.push("diagnostics", Value::Array(vec![Value::Object(d)]));
            println!("{}", Value::Object(o).to_pretty());
        }
    }
    ExitCode::FAILURE
}

fn report_compile_error(args: &Args, req: &CompileRequest, err: &CompileError) -> ExitCode {
    match args.diag_format {
        DiagFormat::Human => {
            eprint!("{}", err.render(&req.source_map()));
            let n = err.diagnostics().len();
            eprintln!(
                "lyrac: {} failed with {n} error{}",
                err.phase_name(),
                if n == 1 { "" } else { "s" }
            );
        }
        DiagFormat::Json => println!("{}", err.to_json().to_pretty()),
    }
    ExitCode::FAILURE
}

/// Simulate failing the elements in `spec` against the compiled
/// deployment, recompile onto the survivors, and apply the new placement
/// as a transactional two-phase rollout over a seeded lossy channel.
fn replay_config(args: &Args) -> ReplayConfig {
    let mut cfg = ReplayConfig::default().with_seed(args.replay_seed);
    if let Some(packets) = args.replay {
        cfg = cfg.with_packets(packets);
    }
    if args.replay_workers > 0 {
        cfg = cfg.with_workers(args.replay_workers);
    }
    cfg
}

/// Print a replay report in the human CLI format.
fn print_replay(label: &str, report: &ReplayReport) {
    println!(
        "replay[{label}]: {} packet(s) on {} worker(s) in {:?} — {:.0} pps",
        report.delivered, report.workers, report.elapsed, report.pps
    );
    if report.refused_epoch_mismatch > 0 || report.mixed_epoch_exposure > 0 {
        println!(
            "  loss: {} refused (mixed-epoch path), {} mixed-epoch exposure(s)",
            report.refused_epoch_mismatch, report.mixed_epoch_exposure
        );
    }
    println!("  effects: {}, digest {:#x}", report.effects, report.digest);
}

/// Replay traffic through a quiescent deployment: the compiled batched
/// engine against the reference interpreter, identical seeded packets.
fn drive_replay(args: &Args, out: &lyra::CompileOutput) -> Result<(), String> {
    let mut rt = Runtime::new(out);
    for table in out.ir.externs.keys() {
        for k in 0..4u64 {
            if rt.install(table, k, 0x0a00_0000 + k).is_err() {
                break;
            }
        }
    }
    let cfg = replay_config(args);
    let interp = replay_interpreted(&rt, &cfg);
    let compiled = replay_compiled(&rt, &cfg);
    print_replay("interpreter", &interp);
    print_replay("compiled", &compiled);
    if interp.pps > 0.0 {
        println!("  speedup: {:.1}x", compiled.pps / interp.pps);
    }
    if compiled.mixed_epoch_exposure > 0 {
        return Err(format!(
            "{} packet(s) executed under two epochs on a quiescent plane",
            compiled.mixed_epoch_exposure
        ));
    }
    Ok(())
}

/// Print a recovery report in the human CLI format.
fn print_recovery(report: &RecoveryReport) {
    let outcome = if !report.in_flight {
        "nothing in flight".to_string()
    } else if report.committed {
        format!("epoch {} COMMITTED", report.epoch)
    } else {
        format!(
            "epoch {} rolled back (serving epoch {})",
            report.epoch, report.prior_epoch
        )
    };
    println!("recovery: {outcome} in {:?}", report.elapsed);
    println!(
        "  journal: {} record(s) replayed, {} token(s) reused, {} fresh",
        report.replayed_records, report.reused_tokens, report.fresh_tokens
    );
    println!(
        "  switches: {} queried, {} query failure(s), {} forced rollback(s)",
        report.queried, report.query_failures, report.forced_rollbacks
    );
    for d in &report.diagnostics {
        match d.code {
            Some(c) => println!("  [{c}] {}", d.message),
            None => println!("  {}", d.message),
        }
    }
}

/// Print an anti-entropy audit report in the human CLI format.
fn print_audit(report: &AuditReport) {
    println!(
        "audit: {} switch(es), {} digest(s) compared, {} — {:?}",
        report.switches_audited,
        report.digests_compared,
        if report.clean() {
            "clean".to_string()
        } else {
            format!(
                "{} drifted entr{} repaired ({} repair(s))",
                report.findings.len(),
                if report.findings.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                report.repaired
            )
        },
        report.elapsed
    );
    for (kind, n) in report.counts() {
        println!("  drift[{kind}]: {n}");
    }
    for d in &report.diagnostics {
        match d.code {
            Some(c) => println!("  [{c}] {}", d.message),
            None => println!("  {}", d.message),
        }
    }
}

/// Corrupt `n` seeded entries behind the controller's back so `--audit`
/// has drift to prove detection on. Deterministic in `seed`.
fn seed_drift(rt: &mut Runtime, out: &lyra::CompileOutput, n: u64, seed: u64) -> u64 {
    let switches: Vec<String> = out
        .placement
        .switches
        .keys()
        .filter(|sw| rt.switch_epoch(sw).is_some())
        .cloned()
        .collect();
    let tables: Vec<String> = out.ir.externs.keys().cloned().collect();
    if switches.is_empty() || tables.is_empty() {
        return 0;
    }
    let mut injected = 0;
    for i in 0..n {
        let sw = &switches[(seed.wrapping_add(i) % switches.len() as u64) as usize];
        let table = &tables[(i % tables.len() as u64) as usize];
        let op = if i % 3 == 2 && rt.epoch() > 0 {
            DriftOp::RegressEpoch
        } else {
            DriftOp::Insert {
                table: table.clone(),
                key: 0x000d_41f7_0000 + seed.wrapping_add(i) % 0xFFFF,
                value: 0xbad0 + i,
            }
        };
        if rt.inject_drift(sw, &op).is_ok() {
            injected += 1;
        }
    }
    injected
}

/// Run the anti-entropy audit (optionally after seeding drift) and fail
/// if a second pass still finds divergence.
fn run_audit(args: &Args, rt: &mut Runtime, out: &lyra::CompileOutput) -> Result<(), String> {
    if args.audit_drift > 0 {
        let injected = seed_drift(rt, out, args.audit_drift, args.rollout_seed);
        println!("audit: injected {injected} seeded drift op(s) behind the controller");
    }
    let report = rt.audit_switches();
    print_audit(&report);
    if args.audit_drift > 0 && report.clean() {
        return Err("audit found no drift despite seeded corruption".to_string());
    }
    let second = rt.audit_switches();
    if !second.clean() {
        return Err(format!(
            "audit repairs did not converge: {} finding(s) on the second pass",
            second.findings.len()
        ));
    }
    Ok(())
}

fn drive_rollout(
    args: &Args,
    compiler: &Compiler,
    req: &CompileRequest,
    out: &lyra::CompileOutput,
    spec: &str,
) -> Result<Option<RolloutReport>, String> {
    let mut faults = FaultSet::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match item.split_once('-') {
            Some((a, b)) => faults.add_link(a.trim(), b.trim()),
            None => faults.add_switch(item),
        }
    }
    let r = compiler
        .recompile_for_faults(req, out, &faults)
        .map_err(|e| format!("failover recompilation failed: {e}"))?;
    let mut rt = Runtime::new(out);
    // Seed a few synthetic entries per extern table so the rollout has
    // live state to carry across the epoch flip.
    for table in out.ir.externs.keys() {
        for k in 0..4u64 {
            if rt.install(table, k, 0x0a00_0000 + k).is_err() {
                break;
            }
        }
    }
    for sw in faults.failed_switches() {
        rt.fail_switch(sw)
            .map_err(|e| format!("fail_switch({sw}): {e}"))?;
    }
    for (a, b) in faults.failed_links() {
        rt.fail_link(a, b)
            .map_err(|e| format!("fail_link({a},{b}): {e}"))?;
    }
    let mut chan = LossyChannel::new(args.rollout_seed)
        .with_drop_p(args.rollout_drop_p)
        .with_ack_loss_p(args.rollout_drop_p / 2.0);
    let config = RolloutConfig::default()
        .with_seed(args.rollout_seed)
        .with_scope_health(r.scope_health.clone());
    let mut store: Box<dyn IntentStore> = match &args.intent_log {
        Some(path) => Box::new(FileIntentStore::open(path.clone())),
        None => Box::new(MemIntentStore::new()),
    };

    if let Some(plan) = &args.crash_at {
        // Crash injection: journal write-ahead, kill the controller at
        // the requested point, then (with --recover) restart it against
        // the same channel — the network outlives the controller.
        let crash_cfg = config.clone().with_crash(plan.clone());
        let err = match rt.apply_rollout_logged(&r.output, &mut chan, &crash_cfg, store.as_mut()) {
            Ok(report) => {
                // The transaction finished before the crash point was
                // reached (e.g. sends:N past the last message).
                print_rollout(&report);
                return Ok(Some(report));
            }
            Err(e) => e,
        };
        println!(
            "rollout: controller CRASHED mid-flight ([{}] {})",
            err.code.map(|c| c.0).unwrap_or("-"),
            err.message
        );
        if !args.recover {
            return Err(
                "controller crashed mid-rollout and --recover was not given; \
                 the deployment is mid-transaction"
                    .to_string(),
            );
        }
        let recovery = if args.replay.is_some() {
            // Traffic keeps flowing through the crashed fleet while the
            // restarted controller converges it.
            let outcome = replay_under_recovery(
                &mut rt,
                &r.output,
                store.as_mut(),
                &mut chan,
                &config,
                &replay_config(args),
            )
            .map_err(|e| format!("recovery failed: {e}"))?;
            print_replay("under-recovery", &outcome.replay);
            if outcome.replay.mixed_epoch_exposure > 0 {
                return Err(format!(
                    "{} packet(s) executed under two epochs during recovery",
                    outcome.replay.mixed_epoch_exposure
                ));
            }
            outcome.recovery
        } else {
            rt.recover(&r.output, store.as_mut(), &mut chan, &config)
                .map_err(|e| format!("recovery failed: {e}"))?
        };
        print_recovery(&recovery);
        if !rt.epochs_coherent() {
            return Err("recovery left the deployment epoch-incoherent".to_string());
        }
        if args.audit {
            let serving = rt.output();
            run_audit(args, &mut rt, serving)?;
        }
        return Ok(None);
    }

    let report = if args.replay.is_some() {
        // Flip the epochs *under* live traffic: workers replay seeded
        // packets through the compiled plane while the two-phase protocol
        // runs, and the replay reports loss and mixed-epoch exposure.
        let outcome =
            replay_under_rollout(&mut rt, &r.output, &mut chan, &config, &replay_config(args))
                .map_err(|e| format!("rollout could not start: {e}"))?;
        print_replay("under-rollout", &outcome.replay);
        if outcome.replay.mixed_epoch_exposure > 0 {
            return Err(format!(
                "{} packet(s) executed under two epochs during the rollout",
                outcome.replay.mixed_epoch_exposure
            ));
        }
        outcome.rollout
    } else if args.intent_log.is_some() {
        rt.apply_rollout_logged(&r.output, &mut chan, &config, store.as_mut())
            .map_err(|e| format!("rollout could not start: {e}"))?
    } else {
        rt.apply_rollout(&r.output, &mut chan, &config)
            .map_err(|e| format!("rollout could not start: {e}"))?
    };
    if args.audit {
        let serving = rt.output();
        run_audit(args, &mut rt, serving)?;
    }
    Ok(Some(report))
}

/// Print a rollout report in the human CLI format.
fn print_rollout(report: &RolloutReport) {
    let outcome = if report.committed {
        "committed"
    } else if report.rolled_back {
        "ROLLED BACK"
    } else {
        "no-op"
    };
    println!(
        "rollout: epoch {} {outcome} in {:?}",
        report.epoch, report.elapsed
    );
    println!(
        "  channel: {} attempt(s), {} retr{}, {} dropped, {} ack-lost, {} duplicated, \
         {} late replay(s)",
        report.messages_sent,
        report.retries,
        if report.retries == 1 { "y" } else { "ies" },
        report.dropped,
        report.ack_lost,
        report.duplicates,
        report.late_replays,
    );
    println!(
        "  churn: {} instruction move(s), {} forced rollback(s)",
        report.instr_churn, report.forced_rollbacks
    );
    for s in &report.switches {
        println!(
            "  {}: prepare {:?} (+{}/-{} entries), commit {:?}, {} retr{}",
            s.switch,
            s.prepare,
            s.entries_added,
            s.entries_removed,
            s.commit,
            s.retries,
            if s.retries == 1 { "y" } else { "ies" },
        );
    }
    for d in &report.diagnostics {
        match d.code {
            Some(c) => println!("  [{c}] {}", d.message),
            None => println!("  {}", d.message),
        }
    }
}

/// Drive the closed self-healing loop (`--monitor`) against the compiled
/// deployment: build a seeded chaos schedule that kills one placement
/// switch early and revives it at half time, then let the monitor and
/// healer detect, remediate, and restore on the virtual clock.
fn drive_monitor(
    args: &Args,
    compiler: &Compiler,
    req: &CompileRequest<'_>,
    out: &lyra::CompileOutput,
) -> Result<SelfHealOutcome, String> {
    // Seeded victim choice across the placement (deterministic per seed).
    let switches: Vec<&String> = out.placement.switches.keys().collect();
    if switches.is_empty() {
        return Err("--monitor needs a placement with at least one switch".into());
    }
    let victim = switches[(args.monitor_seed as usize) % switches.len()].clone();
    let kill_at = (args.monitor_ticks / 8).max(2);
    let mut schedule = ChaosSchedule::new().kill(kill_at, Target::switch(victim.clone()));
    if args.monitor_ticks >= 48 {
        // Long enough runs also demo restore-on-recovery: the victim
        // revives at half time and must ride out the probation window.
        schedule = schedule.restore(args.monitor_ticks / 2, Target::switch(victim.clone()));
    }
    let entries: Vec<(String, u64, u64)> = out
        .ir
        .externs
        .keys()
        .flat_map(|table| (0..4u64).map(move |k| (table.clone(), k, 0x0a00_0000 + k)))
        .collect();
    let cfg = SelfHealConfig {
        health: HealthConfig::default().with_seed(args.monitor_seed),
        rollout: RolloutConfig::default(),
        ticks: args.monitor_ticks,
        traffic_packets: args.replay.unwrap_or(0),
        workers: if args.replay_workers == 0 {
            2
        } else {
            args.replay_workers
        },
    };
    println!(
        "self-heal monitor: {} tick(s), seed {:#x}, chaos victim `{victim}` (kill@{kill_at})",
        args.monitor_ticks, args.monitor_seed
    );
    run_selfheal(compiler, req, &entries, &schedule, &cfg).map_err(|e| e.to_string())
}

/// Print a human summary of a self-heal run.
fn print_selfheal(outcome: &SelfHealOutcome) {
    let h = &outcome.health;
    println!(
        "  probes: {} sent ({} ok, {} degraded, {} lost), {} transition(s)",
        h.probes_sent, h.probes_ok, h.probes_degraded, h.probes_lost, h.transitions
    );
    for r in &outcome.remediations {
        let mttr = match r.mttr_ticks() {
            Some(t) => format!("mttr {t} tick(s)"),
            None => "no mttr".to_string(),
        };
        println!(
            "  round {}: failed [{}] restored [{}] — {} ({mttr}, audit {}, churn {})",
            r.round,
            r.failed.join(", "),
            r.restored.join(", "),
            if r.committed {
                "committed"
            } else if r.rolled_back {
                "rolled back"
            } else {
                "failed"
            },
            if r.audit_clean { "clean" } else { "DIRTY" },
            r.instr_churn,
        );
    }
    for t in &h.targets {
        if t.state != lyra::HealthState::Healthy {
            println!(
                "  verdict: {} is {} (phi {:.1}, flap penalty {:.2})",
                t.target.wire(),
                t.state.name(),
                t.phi,
                t.flap_penalty
            );
        }
    }
    if outcome.traffic_delivered > 0 || outcome.mixed_epoch_exposure > 0 {
        println!(
            "  traffic: {} delivered, {} refused, {} mixed-epoch, {} worker panic(s)",
            outcome.traffic_delivered,
            outcome.traffic_refused,
            outcome.mixed_epoch_exposure,
            outcome.worker_panics
        );
    }
    println!(
        "  converged: {} (final audit {}, {} recompile(s), {} restore(s), {} deferral(s))",
        outcome.converged,
        if outcome.final_audit_clean {
            "clean"
        } else {
            "DIRTY"
        },
        outcome.recompiles,
        outcome.restores,
        outcome.rate_limited_deferrals,
    );
}

fn main() -> ExitCode {
    let args = parse_args();
    let read = |p: &PathBuf| -> Result<String, String> {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    let inputs = (|| -> Result<(String, String, lyra_topo::Topology), String> {
        let program = read(&args.program)?;
        let scopes = read(&args.scopes)?;
        let topo_src = read(&args.topology)?;
        let topology = parse_topology(&topo_src).map_err(|e| e.to_string())?;
        Ok((program, scopes, topology))
    })();
    let (program, scopes, topology) = match inputs {
        Ok(t) => t,
        Err(e) => return tool_error(&args, e),
    };

    // Start from the chosen preset (balanced default when none), then let
    // the individual legacy flags override single fields.
    let mut profile = args.solve_profile.clone().unwrap_or_default();
    if let Some(s) = args.strategy {
        profile.strategy = s;
    }
    if let Some(ms) = args.deadline_ms {
        profile.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(n) = args.decision_budget {
        profile.decision_budget = Some(n);
    }
    let req = CompileRequest::new(&program, &scopes, topology).with_solve_profile(profile.clone());
    let compiler = Compiler::new()
        .with_backend(args.backend.clone())
        .with_objective(args.objective.clone())
        .with_parser_hoisting(args.parser_hoisting);
    let out = match compiler.compile(&req) {
        Ok(out) => out,
        Err(e) => return report_compile_error(&args, &req, &e),
    };

    let sources = req.source_map();
    for w in &out.warnings {
        match args.diag_format {
            DiagFormat::Human => eprint!("{}", sources.render(w)),
            DiagFormat::Json => println!("{}", w.to_json().to_pretty()),
        }
    }
    let rollout_report = match &args.rollout_fail {
        Some(spec) => match drive_rollout(&args, &compiler, &req, &out, spec) {
            // A crash+recover run converges without a rollout report to
            // print (the recovery report was printed instead).
            Ok(report) => {
                if let Some(report) = &report {
                    print_rollout(report);
                }
                report
            }
            Err(e) => return tool_error(&args, e),
        },
        None => None,
    };
    if args.replay.is_some() && args.rollout_fail.is_none() && !args.monitor {
        if let Err(e) = drive_replay(&args, &out) {
            return tool_error(&args, e);
        }
    }
    let selfheal_outcome = if args.monitor {
        match drive_monitor(&args, &compiler, &req, &out) {
            Ok(outcome) => {
                print_selfheal(&outcome);
                if !outcome.converged || outcome.mixed_epoch_exposure > 0 {
                    return tool_error(
                        &args,
                        format!(
                            "self-heal loop did not converge cleanly \
                             (converged: {}, mixed-epoch: {})",
                            outcome.converged, outcome.mixed_epoch_exposure
                        ),
                    );
                }
                Some(outcome)
            }
            Err(e) => return tool_error(&args, e),
        }
    } else {
        None
    };
    if args.audit && args.rollout_fail.is_none() {
        // Standalone anti-entropy audit of the fresh deployment (with
        // --audit-drift, seeded corruption proves detection first).
        let mut rt = Runtime::new(&out);
        for table in out.ir.externs.keys() {
            for k in 0..4u64 {
                if rt.install(table, k, 0x0a00_0000 + k).is_err() {
                    break;
                }
            }
        }
        if let Err(e) = run_audit(&args, &mut rt, &out) {
            return tool_error(&args, e);
        }
    }
    if let Some(path) = &args.emit_stats {
        let mut session = out.session();
        if let Some(report) = rollout_report {
            session = session.with_rollout(report);
        }
        if let Some(outcome) = selfheal_outcome {
            session = session.with_selfheal(outcome);
        }
        let json = session.to_json().to_pretty();
        if let Err(e) = std::fs::write(path, json) {
            return tool_error(&args, format!("cannot write {}: {e}", path.display()));
        }
    }
    let run = || -> Result<(), String> {
        std::fs::create_dir_all(&args.out)
            .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
        for a in &out.artifacts {
            let ext = match a.lang {
                TargetLang::P414 | TargetLang::P416 => "p4",
                TargetLang::Npl => "npl",
            };
            let code_path = args.out.join(format!("{}.{ext}", a.switch));
            let ctl_path = args.out.join(format!("{}_control.py", a.switch));
            std::fs::write(&code_path, &a.code)
                .map_err(|e| format!("cannot write {}: {e}", code_path.display()))?;
            std::fs::write(&ctl_path, &a.control_plane)
                .map_err(|e| format!("cannot write {}: {e}", ctl_path.display()))?;
        }
        out.validate_all().map_err(|e| e.to_string())?;
        if args.oracle {
            let cfg = lyra::OracleConfig {
                cases: args.oracle_cases,
                seed: args.oracle_seed,
            };
            let report = lyra::check_output(&out, &cfg);
            println!(
                "oracle: {} case(s) x {} artifact(s), seed {:#x} — {}",
                report.cases_per_artifact,
                report.artifacts_checked,
                args.oracle_seed,
                if report.is_clean() {
                    "clean"
                } else {
                    "DIVERGED"
                }
            );
            for d in &report.diagnostics {
                match d.code {
                    Some(c) => println!("  [{c}] {}", d.message),
                    None => println!("  {}", d.message),
                }
                for n in &d.notes {
                    println!("    note: {n}");
                }
            }
            if !report.is_clean() {
                return Err(format!(
                    "oracle found {} divergence(s); artifacts in {} are unsound",
                    report.diagnostics.len(),
                    args.out.display()
                ));
            }
        }
        println!(
            "compiled {} algorithm(s) onto {} switch(es) in {:?}",
            out.ir.algorithms.len(),
            out.placement.used_switches(),
            out.stats.total
        );
        println!(
            "  solver [{}]: {} decisions, {} conflicts, {} clauses deleted in {} reduction(s), \
             {} worker(s) spawned ({} cancelled)",
            profile.strategy,
            out.solver.decisions,
            out.solver.conflicts,
            out.solver.clauses_deleted,
            out.solver.reductions,
            out.solver.workers_spawned,
            out.solver.workers_cancelled,
        );
        println!(
            "  synth cache: {} hit(s), {} miss(es)",
            out.stats.synth_cache_hits, out.stats.synth_cache_misses
        );
        println!(
            "  warm start: {} hit(s), {} miss(es)",
            out.stats.warm_hits, out.stats.warm_misses
        );
        if let Some(rung) = out.degraded {
            println!("  placement degraded: {rung} rung (LYR0550)");
        }
        for u in &out.utilization {
            println!(
                "  {}: {}/{} tables, {}/{} stages, {}/{} SRAM blocks, {} extern entries",
                u.switch,
                u.tables.0,
                u.tables.1,
                u.stages.0,
                u.stages.1,
                u.sram_blocks.0,
                u.sram_blocks.1,
                u.extern_entries
            );
        }
        println!("artifacts written to {}", args.out.display());
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => tool_error(&args, e),
    }
}
