//! Property tests for the language front: randomly generated ASTs must
//! survive a pretty-print → parse round trip with their structure intact,
//! and the lexer must tokenize anything the printer emits.

use lyra_lang::{parse_program, pretty::print_program, *};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| {
        // Avoid keywords.
        let keywords = [
            "bit", "if", "else", "in", "func", "algorithm", "pipeline", "extern", "global",
            "dict", "list", "fields", "packet", "extract", "select", "default",
        ];
        if keywords.contains(&s.as_str()) {
            format!("{s}_v")
        } else {
            s
        }
    })
}

fn gen_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..100_000).prop_map(Expr::Num),
        ident().prop_map(|n| Expr::Path(vec![n])),
        (ident(), ident()).prop_map(|(a, b)| Expr::Path(vec![a, b])),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..10).prop_map(|(l, r, op)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                    BinOp::Shl,
                    BinOp::Shr,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::LAnd,
                ];
                Expr::Bin { op: ops[op % ops.len()], lhs: Box::new(l), rhs: Box::new(r) }
            }),
            inner.clone().prop_map(|e| Expr::Un { op: UnOp::BitNot, expr: Box::new(e) }),
        ]
    })
}

fn gen_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (ident(), gen_expr(depth)).prop_map(|(n, e)| Stmt::Assign {
        lhs: LValue::Path(vec![n]),
        rhs: e,
        span: Span::default(),
    });
    if depth == 0 {
        assign.boxed()
    } else {
        let nested = (gen_expr(1), prop::collection::vec(gen_stmt(depth - 1), 1..3), any::<bool>())
            .prop_map(|(cond, body, has_else)| Stmt::If {
                cond,
                else_body: if has_else { Some(body.clone()) } else { None },
                then_body: body,
                span: Span::default(),
            });
        prop_oneof![assign, nested].boxed()
    }
}

fn gen_program() -> impl Strategy<Value = Program> {
    (ident(), prop::collection::vec(gen_stmt(2), 1..6)).prop_map(|(name, body)| {
        let alg = Algorithm { name: name.clone(), body, span: Span::default() };
        Program {
            headers: vec![],
            packets: vec![],
            parser_nodes: vec![],
            pipelines: vec![Pipeline {
                name: "P".into(),
                algorithms: vec![name],
                span: Span::default(),
            }],
            algorithms: vec![alg],
            functions: vec![],
        }
    })
}

/// Structural equality ignoring spans: compare via re-printing.
fn shape(p: &Program) -> String {
    print_program(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn print_parse_roundtrip(prog in gen_program()) {
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program does not parse: {e}\n{printed}"));
        prop_assert_eq!(shape(&prog), shape(&reparsed), "round trip changed structure");
    }

    #[test]
    fn expr_to_src_reparses(e in gen_expr(3)) {
        // Any expression's source form must parse back to the same source
        // form when wrapped in an assignment.
        let src = format!("pipeline[P]{{a}}; algorithm a {{ x = {}; }}", e.to_src());
        let prog = parse_program(&src)
            .unwrap_or_else(|err| panic!("expr source does not parse: {err}\n{src}"));
        if let Stmt::Assign { rhs, .. } = &prog.algorithms[0].body[0] {
            prop_assert_eq!(rhs.to_src(), e.to_src());
        } else {
            prop_assert!(false, "expected assignment");
        }
    }

    #[test]
    fn lexer_never_panics(s in "\\PC{0,120}") {
        // Arbitrary printable input: the lexer either tokenizes or returns a
        // located error; it must not panic.
        let _ = lyra_lang::lexer::lex(&s);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,120}") {
        let _ = parse_program(&s);
    }
}
