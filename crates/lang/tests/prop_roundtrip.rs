//! Property tests for the language front: randomly generated ASTs must
//! survive a pretty-print → parse round trip with their structure intact,
//! and the lexer must tokenize anything the printer emits.
//!
//! Randomness comes from a seeded xorshift generator (the workspace builds
//! offline with no external crates), so every run explores the identical
//! case set and failures reproduce from the printed case index.

use lyra_lang::{parse_program, pretty::print_program, *};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

const KEYWORDS: &[&str] = &[
    "bit",
    "if",
    "else",
    "in",
    "func",
    "algorithm",
    "pipeline",
    "extern",
    "global",
    "dict",
    "list",
    "fields",
    "packet",
    "extract",
    "select",
    "default",
];

fn ident(rng: &mut Rng) -> String {
    let len = rng.range(1, 8) as usize;
    let mut s = String::new();
    s.push((b'a' + rng.below(26) as u8) as char);
    for _ in 1..len {
        let c = match rng.below(3) {
            0 => (b'a' + rng.below(26) as u8) as char,
            1 => (b'0' + rng.below(10) as u8) as char,
            _ => '_',
        };
        s.push(c);
    }
    if KEYWORDS.contains(&s.as_str()) {
        format!("{s}_v")
    } else {
        s
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    let pick = if depth == 0 {
        rng.below(3)
    } else {
        rng.below(5)
    };
    match pick {
        0 => Expr::Num(rng.below(100_000)),
        1 => Expr::Path(vec![ident(rng)]),
        2 => Expr::Path(vec![ident(rng), ident(rng)]),
        3 => {
            let ops = [
                BinOp::Add,
                BinOp::Sub,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::Shr,
                BinOp::Eq,
                BinOp::Lt,
                BinOp::LAnd,
            ];
            Expr::Bin {
                op: ops[rng.below(ops.len() as u64) as usize],
                lhs: Box::new(gen_expr(rng, depth - 1)),
                rhs: Box::new(gen_expr(rng, depth - 1)),
            }
        }
        _ => Expr::Un {
            op: UnOp::BitNot,
            expr: Box::new(gen_expr(rng, depth - 1)),
        },
    }
}

fn gen_stmt(rng: &mut Rng, depth: u32) -> Stmt {
    if depth == 0 || rng.below(3) < 2 {
        Stmt::Assign {
            lhs: LValue::Path(vec![ident(rng)]),
            rhs: gen_expr(rng, 2),
            span: Span::default(),
        }
    } else {
        let body: Vec<Stmt> = (0..rng.range(1, 2))
            .map(|_| gen_stmt(rng, depth - 1))
            .collect();
        Stmt::If {
            cond: gen_expr(rng, 1),
            else_body: if rng.bool() { Some(body.clone()) } else { None },
            then_body: body,
            span: Span::default(),
        }
    }
}

fn gen_program(rng: &mut Rng) -> Program {
    let name = ident(rng);
    let body: Vec<Stmt> = (0..rng.range(1, 5)).map(|_| gen_stmt(rng, 2)).collect();
    let alg = Algorithm {
        name: name.clone(),
        body,
        span: Span::default(),
    };
    Program {
        headers: vec![],
        packets: vec![],
        parser_nodes: vec![],
        pipelines: vec![Pipeline {
            name: "P".into(),
            algorithms: vec![name],
            span: Span::default(),
        }],
        algorithms: vec![alg],
        functions: vec![],
    }
}

/// Structural equality ignoring spans: compare via re-printing.
fn shape(p: &Program) -> String {
    print_program(p)
}

#[test]
fn print_parse_roundtrip() {
    let mut rng = Rng::new(0x5eed_1001);
    for case in 0..200 {
        let prog = gen_program(&mut rng);
        let printed = print_program(&prog);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printed program does not parse: {e}\n{printed}")
        });
        assert_eq!(
            shape(&prog),
            shape(&reparsed),
            "case {case}: round trip changed structure"
        );
    }
}

#[test]
fn expr_to_src_reparses() {
    let mut rng = Rng::new(0x5eed_1002);
    for case in 0..200 {
        // Any expression's source form must parse back to the same source
        // form when wrapped in an assignment.
        let e = gen_expr(&mut rng, 3);
        let src = format!("pipeline[P]{{a}}; algorithm a {{ x = {}; }}", e.to_src());
        let prog = parse_program(&src)
            .unwrap_or_else(|err| panic!("case {case}: expr source does not parse: {err}\n{src}"));
        if let Stmt::Assign { rhs, .. } = &prog.algorithms[0].body[0] {
            assert_eq!(rhs.to_src(), e.to_src(), "case {case}");
        } else {
            panic!("case {case}: expected assignment");
        }
    }
}

/// Arbitrary printable input drawn from a pool biased toward the language's
/// own punctuation: the lexer and parser either succeed or return a located
/// error; they must not panic.
fn random_source(rng: &mut Rng) -> String {
    const POOL: &[u8] = b"abcxyz019_.;,:[]{}()<>=+-*/&|^!~ \t\n\"'#@$%?";
    let len = rng.below(121) as usize;
    (0..len)
        .map(|_| POOL[rng.below(POOL.len() as u64) as usize] as char)
        .collect()
}

#[test]
fn lexer_never_panics() {
    let mut rng = Rng::new(0x5eed_1003);
    for _ in 0..400 {
        let s = random_source(&mut rng);
        let _ = lyra_lang::lexer::lex(&s);
    }
}

#[test]
fn parser_never_panics() {
    let mut rng = Rng::new(0x5eed_1004);
    for _ in 0..400 {
        let s = random_source(&mut rng);
        let _ = parse_program(&s);
    }
}
