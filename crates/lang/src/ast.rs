//! Abstract syntax tree for Lyra programs (grammar of Figure 6, extended
//! with every construct the paper's examples use).

use crate::Span;

/// A complete Lyra program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// `header_type` declarations.
    pub headers: Vec<HeaderType>,
    /// `packet` declarations.
    pub packets: Vec<PacketDecl>,
    /// `parser_node` declarations.
    pub parser_nodes: Vec<ParserNode>,
    /// `pipeline[NAME]{a -> b};` one-big-pipeline declarations.
    pub pipelines: Vec<Pipeline>,
    /// `algorithm` declarations.
    pub algorithms: Vec<Algorithm>,
    /// `func` declarations.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find an algorithm by name.
    pub fn algorithm(&self, name: &str) -> Option<&Algorithm> {
        self.algorithms.iter().find(|a| a.name == name)
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a header type by name.
    pub fn header(&self, name: &str) -> Option<&HeaderType> {
        self.headers.iter().find(|h| h.name == name)
    }
}

/// A bit-vector type `bit[w]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitTy {
    /// Width in bits.
    pub width: u32,
}

/// A named, typed field (header field, function parameter, table column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypedField {
    /// The field's bit type.
    pub ty: BitTy,
    /// Field name.
    pub name: String,
}

/// A `header_type name { fields { ... } }` declaration.
///
/// The `fields { ... }` wrapper is optional in our parser since Figure 4
/// writes fields directly inside the braces.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderType {
    /// Header type name (e.g. `int_probe_hdr_t`).
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<TypedField>,
    /// Source span of the whole declaration.
    pub span: Span,
}

impl HeaderType {
    /// Total width of the header in bits.
    pub fn width_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.ty.width).sum()
    }
}

/// A `packet name { fields { ... } }` declaration — the metadata bundle that
/// travels with a packet through the one-big-pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketDecl {
    /// Packet name.
    pub name: String,
    /// Metadata fields.
    pub fields: Vec<TypedField>,
    /// Source span.
    pub span: Span,
}

/// A parser state: extract a header, then select the next state on a field.
#[derive(Debug, Clone, PartialEq)]
pub struct ParserNode {
    /// State name (e.g. `parse_ipv4`).
    pub name: String,
    /// Header instance extracted in this state, if any.
    pub extracts: Vec<String>,
    /// Field the transition selects on, if any (dotted path).
    pub select: Option<Vec<String>>,
    /// `(value, next-state)` transitions.
    pub transitions: Vec<(u64, String)>,
    /// Fallback state (`default: name;`).
    pub default: Option<String>,
    /// `set_metadata(dst, src)` operations performed while parsing (used by
    /// the §6 optimization that hoists metadata writes into the parser).
    pub sets: Vec<(Vec<String>, Expr)>,
    /// Source span.
    pub span: Span,
}

/// A one-big-pipeline: an ordered chain of algorithm names.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Pipeline name (e.g. `INT`).
    pub name: String,
    /// Algorithm names in chain order.
    pub algorithms: Vec<String>,
    /// Source span.
    pub span: Span,
}

/// An `algorithm name { ... }` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Algorithm {
    /// Algorithm name.
    pub name: String,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A `func name(params) { ... }` declaration. Parameters are by-reference:
/// assignments to a parameter are visible to the caller after inlining
/// (Figure 8 relies on this).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<TypedField>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// The kind of an `extern` table variable (§3.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternKind {
    /// `extern list<bit[32] ip>[1024] name;` — membership set.
    List {
        /// The single element column.
        elem: TypedField,
    },
    /// `extern dict<keys..., values...>[N] name;` — exact-match table from a
    /// (possibly tuple) key to a (possibly tuple) value.
    Dict {
        /// Key columns.
        keys: Vec<TypedField>,
        /// Value columns.
        values: Vec<TypedField>,
    },
}

/// How an extern table matches its key (Appendix D: different ASICs offer
/// different match capabilities, and Lyra converts between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchKind {
    /// Exact match (hash/SRAM-resident).
    #[default]
    Exact,
    /// Longest-prefix match (TCAM-resident).
    Lpm,
    /// Ternary (mask) match (TCAM-resident).
    Ternary,
    /// Range match (TCAM-resident; expanded to ternary rules on chips
    /// without native range support).
    Range,
}

impl MatchKind {
    /// True for match kinds stored in TCAM rather than SRAM.
    pub fn uses_tcam(self) -> bool {
        !matches!(self, MatchKind::Exact)
    }

    /// Source / P4 keyword for this match kind.
    pub fn keyword(self) -> &'static str {
        match self {
            MatchKind::Exact => "exact",
            MatchKind::Lpm => "lpm",
            MatchKind::Ternary => "ternary",
            MatchKind::Range => "range",
        }
    }
}

/// An `extern` declaration: a control-plane-managed table (§3.4, §5.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternVar {
    /// Table name.
    pub name: String,
    /// List or dict shape.
    pub kind: ExternKind,
    /// Match kind of the key columns.
    pub match_kind: MatchKind,
    /// Number of entries.
    pub size: u64,
}

impl ExternVar {
    /// Total match key width in bits.
    pub fn key_width(&self) -> u32 {
        match &self.kind {
            ExternKind::List { elem } => elem.ty.width,
            ExternKind::Dict { keys, .. } => keys.iter().map(|k| k.ty.width).sum(),
        }
    }

    /// Total value width in bits (0 for lists).
    pub fn value_width(&self) -> u32 {
        match &self.kind {
            ExternKind::List { .. } => 0,
            ExternKind::Dict { values, .. } => values.iter().map(|v| v.ty.width).sum(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `bit[8] x;` or `bit[8] x = e;`
    VarDecl {
        /// Declared type.
        ty: BitTy,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `global bit[32][1024] counter;` — a stateful register array (§3.4).
    GlobalDecl {
        /// Element type.
        ty: BitTy,
        /// Number of elements (1 for scalars).
        len: u64,
        /// Variable name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// `extern dict<...>[N] t;` — control-plane table (§3.4).
    ExternDecl {
        /// The declaration.
        var: ExternVar,
        /// Source span.
        span: Span,
    },
    /// `lhs = e;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Right-hand side.
        rhs: Expr,
        /// Source span.
        span: Span,
    },
    /// `if (c) { ... } else { ... }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Optional else-branch.
        else_body: Option<Vec<Stmt>>,
        /// Source span.
        span: Span,
    },
    /// A bare call statement `f(a, b);` — user function or builtin.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::VarDecl { span, .. }
            | Stmt::GlobalDecl { span, .. }
            | Stmt::ExternDecl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Call { span, .. } => *span,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A (possibly dotted) path: `x` or `ipv4.dstAddr`.
    Path(Vec<String>),
    /// An indexed global: `counter[idx]`.
    Index {
        /// Array name.
        base: String,
        /// Index expression.
        index: Box<Expr>,
    },
}

impl LValue {
    /// Render as source text.
    pub fn to_src(&self) -> String {
        match self {
            LValue::Path(p) => p.join("."),
            LValue::Index { base, index } => format!("{base}[{}]", index.to_src()),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

impl BinOp {
    /// True for comparison operators producing 1-bit results.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }

    /// Source text of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical not `!`.
    Not,
    /// Bitwise complement `~`.
    BitNot,
    /// Arithmetic negation `-`.
    Neg,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u64),
    /// A (possibly dotted) path: `x` or `ipv4.src_ip`.
    Path(Vec<String>),
    /// Table/global indexing: `conn_table[hash]`.
    Index {
        /// Table or global array name.
        base: String,
        /// Index / key expression.
        index: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function / builtin call used as a value: `crc32_hash(a, b)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Membership test: `key in table` (§3, Figure 4 line 40).
    InTable {
        /// Key expression.
        key: Box<Expr>,
        /// Extern table name.
        table: String,
    },
    /// Bit slice `x[hi:lo]` (usable on paths).
    Slice {
        /// Sliced path.
        base: Vec<String>,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
}

impl Expr {
    /// Render as source text (round-trips through the parser).
    pub fn to_src(&self) -> String {
        match self {
            Expr::Num(n) => {
                if *n > 255 {
                    format!("0x{n:x}")
                } else {
                    n.to_string()
                }
            }
            Expr::Path(p) => p.join("."),
            Expr::Index { base, index } => format!("{base}[{}]", index.to_src()),
            Expr::Bin { op, lhs, rhs } => {
                format!("({} {} {})", lhs.to_src(), op.symbol(), rhs.to_src())
            }
            Expr::Un { op, expr } => {
                let s = match op {
                    UnOp::Not => "!",
                    UnOp::BitNot => "~",
                    UnOp::Neg => "-",
                };
                format!("{s}({})", expr.to_src())
            }
            Expr::Call { name, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_src()).collect();
                format!("{name}({})", args.join(", "))
            }
            Expr::InTable { key, table } => format!("({} in {table})", key.to_src()),
            Expr::Slice { base, hi, lo } => format!("{}[{hi}:{lo}]", base.join(".")),
        }
    }

    /// Collect every path referenced by this expression (reads).
    pub fn referenced_paths(&self, out: &mut Vec<Vec<String>>) {
        match self {
            Expr::Num(_) => {}
            Expr::Path(p) => out.push(p.clone()),
            Expr::Index { base, index } => {
                out.push(vec![base.clone()]);
                index.referenced_paths(out);
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.referenced_paths(out);
                rhs.referenced_paths(out);
            }
            Expr::Un { expr, .. } => expr.referenced_paths(out),
            Expr::Call { args, .. } => {
                for a in args {
                    a.referenced_paths(out);
                }
            }
            Expr::InTable { key, table } => {
                out.push(vec![table.clone()]);
                key.referenced_paths(out);
            }
            Expr::Slice { base, .. } => out.push(base.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_width() {
        let h = HeaderType {
            name: "h".into(),
            fields: vec![
                TypedField {
                    ty: BitTy { width: 8 },
                    name: "a".into(),
                },
                TypedField {
                    ty: BitTy { width: 24 },
                    name: "b".into(),
                },
            ],
            span: Span::default(),
        };
        assert_eq!(h.width_bits(), 32);
    }

    #[test]
    fn extern_widths() {
        let e = ExternVar {
            name: "route".into(),
            match_kind: MatchKind::Exact,
            kind: ExternKind::Dict {
                keys: vec![
                    TypedField {
                        ty: BitTy { width: 32 },
                        name: "src".into(),
                    },
                    TypedField {
                        ty: BitTy { width: 32 },
                        name: "dst".into(),
                    },
                ],
                values: vec![TypedField {
                    ty: BitTy { width: 8 },
                    name: "p".into(),
                }],
            },
            size: 1024,
        };
        assert_eq!(e.key_width(), 64);
        assert_eq!(e.value_width(), 8);
    }

    #[test]
    fn expr_to_src() {
        let e = Expr::Bin {
            op: BinOp::Shl,
            lhs: Box::new(Expr::Path(vec!["v8_a".into()])),
            rhs: Box::new(Expr::Num(8)),
        };
        assert_eq!(e.to_src(), "(v8_a << 8)");
    }

    #[test]
    fn referenced_paths_collects() {
        let e = Expr::Bin {
            op: BinOp::And,
            lhs: Box::new(Expr::Path(vec!["ipv4".into(), "src".into()])),
            rhs: Box::new(Expr::InTable {
                key: Box::new(Expr::Path(vec!["h".into()])),
                table: "t".into(),
            }),
        };
        let mut out = Vec::new();
        e.referenced_paths(&mut out);
        assert_eq!(out.len(), 3);
    }
}
