//! Hand-rolled lexer for the Lyra language.
//!
//! Produces a flat token stream with byte spans. Handles `//` line comments,
//! `/* */` block comments, decimal and hexadecimal numbers, identifiers,
//! keywords, all multi-character operators used by the grammar (`->`, `<<`,
//! `>>`, `==`, `!=`, `<=`, `>=`, `&&`, `||`), and the section markers
//! (`>HEADER:`, `>PIPELINES:`, `>FUNCTIONS:`) which the parser treats as
//! skippable separators.

use crate::Span;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (value, and whether it was written in hex).
    Num(u64),
    /// Section marker such as `>HEADER:` (name without `>`/`:`).
    Section(String),
    /// Punctuation / operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // single-symbol tokens; names mirror their glyphs
pub enum Punct {
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Dot,
    Assign,
    /// `->`
    Arrow,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    AndAnd,
    OrOr,
    Question,
}

/// A token together with its span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Errors produced by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Problem description.
    pub message: String,
    /// Offending location.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.span.lo, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src` completely.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let n = bytes.len();
    let mut out = Vec::new();

    macro_rules! push {
        ($tok:expr, $lo:expr, $hi:expr) => {
            out.push(SpannedTok {
                tok: $tok,
                span: Span::new($lo as u32, $hi as u32),
            })
        };
    }

    while i < n {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if bytes[i + 1] == b'/' {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            span: Span::new(start as u32, n as u32),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Section markers: `>NAME:` at the start of a construct. Only treat
        // `>` followed immediately by an uppercase identifier and `:` as a
        // section; otherwise `>` is the greater-than operator.
        if c == '>' {
            let mut j = i + 1;
            while j < n && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > i + 1 && j < n && bytes[j] == b':' {
                let name = &src[i + 1..j];
                if name.chars().all(|ch| ch.is_ascii_uppercase() || ch == '_') {
                    push!(Tok::Section(name.to_string()), i, j + 1);
                    i = j + 1;
                    continue;
                }
            }
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            push!(Tok::Ident(src[start..i].to_string()), start, i);
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < n && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                let ds = i;
                while i < n && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                if i == ds {
                    return Err(LexError {
                        message: "hex literal with no digits".into(),
                        span: Span::new(start as u32, i as u32),
                    });
                }
                let v = u64::from_str_radix(&src[ds..i], 16).map_err(|e| LexError {
                    message: format!("bad hex literal: {e}"),
                    span: Span::new(start as u32, i as u32),
                })?;
                push!(Tok::Num(v), start, i);
            } else {
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let v: u64 = src[start..i].parse().map_err(|e| LexError {
                    message: format!("bad integer literal: {e}"),
                    span: Span::new(start as u32, i as u32),
                })?;
                push!(Tok::Num(v), start, i);
            }
            continue;
        }
        // Operators and punctuation. Work on byte pairs — slicing the
        // string directly would panic on multi-byte UTF-8 input.
        let two: &[u8] = if i + 1 < n { &bytes[i..i + 2] } else { b"" };
        let (p, len) = match two {
            b"->" => (Punct::Arrow, 2),
            b"<<" => (Punct::Shl, 2),
            b">>" => (Punct::Shr, 2),
            b"==" => (Punct::EqEq, 2),
            b"!=" => (Punct::NotEq, 2),
            b"<=" => (Punct::Le, 2),
            b">=" => (Punct::Ge, 2),
            b"&&" => (Punct::AndAnd, 2),
            b"||" => (Punct::OrOr, 2),
            _ => {
                let p = match c {
                    '{' => Punct::LBrace,
                    '}' => Punct::RBrace,
                    '(' => Punct::LParen,
                    ')' => Punct::RParen,
                    '[' => Punct::LBracket,
                    ']' => Punct::RBracket,
                    ';' => Punct::Semi,
                    ',' => Punct::Comma,
                    ':' => Punct::Colon,
                    '.' => Punct::Dot,
                    '=' => Punct::Assign,
                    '<' => Punct::Lt,
                    '>' => Punct::Gt,
                    '+' => Punct::Plus,
                    '-' => Punct::Minus,
                    '*' => Punct::Star,
                    '/' => Punct::Slash,
                    '%' => Punct::Percent,
                    '&' => Punct::Amp,
                    '|' => Punct::Pipe,
                    '^' => Punct::Caret,
                    '~' => Punct::Tilde,
                    '!' => Punct::Bang,
                    '?' => Punct::Question,
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character {other:?}"),
                            span: Span::new(i as u32, i as u32 + 1),
                        })
                    }
                };
                (p, 1)
            }
        };
        push!(Tok::Punct(p), i, i + len);
        i += len;
    }
    push!(Tok::Eof, n, n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_idents_and_numbers() {
        let ts = toks("foo 42 0x1f _bar");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("foo".into()),
                Tok::Num(42),
                Tok::Num(0x1f),
                Tok::Ident("_bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_sections() {
        let ts = toks(">HEADER:\nheader_type x");
        assert_eq!(ts[0], Tok::Section("HEADER".into()));
        assert_eq!(ts[1], Tok::Ident("header_type".into()));
    }

    #[test]
    fn gt_is_not_section() {
        let ts = toks("a > b");
        assert_eq!(ts[1], Tok::Punct(Punct::Gt));
    }

    #[test]
    fn lexes_multichar_operators() {
        let ts = toks("a -> b << c >= d != e && f");
        assert!(ts.contains(&Tok::Punct(Punct::Arrow)));
        assert!(ts.contains(&Tok::Punct(Punct::Shl)));
        assert!(ts.contains(&Tok::Punct(Punct::Ge)));
        assert!(ts.contains(&Tok::Punct(Punct::NotEq)));
        assert!(ts.contains(&Tok::Punct(Punct::AndAnd)));
    }

    #[test]
    fn skips_comments() {
        let ts = toks("a // comment\nb /* block\n comment */ c");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("a /* oops").is_err());
    }

    #[test]
    fn bad_hex_errors() {
        assert!(lex("0x").is_err());
    }

    #[test]
    fn spans_are_correct() {
        let ts = lex("ab cd").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(3, 5));
    }
}
