//! Semantic checker (§4.1): validates a parsed program before it enters the
//! compiler front-end.
//!
//! Hard errors: duplicate declarations, pipelines referencing unknown
//! algorithms, calls to unknown functions, wrong arity on user functions and
//! builtins, `in` tests against undeclared externs, indexing non-tables,
//! malformed bit slices, and zero-width variables.
//!
//! Like the paper's programs, Lyra code may reference packet metadata fields
//! implicitly (e.g. `int_enable` in Figure 4); those surface as *warnings*
//! with an inferred width, not errors.

use std::collections::{HashMap, HashSet};

use lyra_diag::{codes, Code, Diagnostic};

use crate::ast::*;

/// Signature of a predefined library function call (§3.2: "Lyra also offers
/// many predefined library-function calls that commonly exist in the
/// state-of-the-art chip-specific languages").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinSig {
    /// Minimum argument count.
    pub min_args: usize,
    /// Maximum argument count.
    pub max_args: usize,
    /// Result width in bits; `None` for void (statement-only) builtins.
    pub result_width: Option<u32>,
    /// True if the builtin reads or writes switch state that only exists in
    /// the egress pipeline (e.g. queueing information — §8 "Multi-pipeline
    /// support").
    pub egress_only: bool,
}

/// The predefined library-function table shared by the checker, the type
/// inferencer, and both code generators.
pub fn builtins() -> &'static HashMap<&'static str, BuiltinSig> {
    use std::sync::OnceLock;
    static TABLE: OnceLock<HashMap<&'static str, BuiltinSig>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut m = HashMap::new();
        let mut b = |name, min, max, w: Option<u32>, egress| {
            m.insert(
                name,
                BuiltinSig {
                    min_args: min,
                    max_args: max,
                    result_width: w,
                    egress_only: egress,
                },
            );
        };
        b("crc32_hash", 1, 16, Some(32), false);
        b("crc16_hash", 1, 16, Some(16), false);
        b("identity_hash", 1, 16, Some(32), false);
        b("get_queue_len", 0, 0, Some(24), true);
        b("get_queue_time", 0, 0, Some(32), true);
        b("get_ingress_timestamp", 0, 0, Some(32), false);
        b("get_egress_timestamp", 0, 0, Some(32), true);
        b("get_switch_id", 0, 0, Some(32), false);
        b("get_ingress_port", 0, 0, Some(9), false);
        b("get_egress_port", 0, 0, Some(9), false);
        b("add_header", 1, 1, None, false);
        b("remove_header", 1, 1, None, false);
        b("copy_to_cpu", 0, 1, None, false);
        b("mirror", 0, 1, None, false);
        b("drop", 0, 0, None, false);
        b("forward", 1, 1, None, false);
        b("set_egress_port", 1, 1, None, false);
        b("recirculate", 0, 1, None, false);
        b("resubmit", 0, 1, None, false);
        b("count", 1, 2, None, false);
        b("min", 2, 2, Some(32), false);
        b("max", 2, 2, Some(32), false);
        b("register_read", 2, 2, Some(32), false);
        b("register_write", 2, 3, None, false);
        m
    })
}

/// Checker failure: one or more hard errors, each a structured
/// [`Diagnostic`] with a stable `LYR01xx` code and the offending span.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckError {
    /// All hard errors found.
    pub errors: Vec<Diagnostic>,
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.errors {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.errors
            .first()
            .map(|d| d as &(dyn std::error::Error + 'static))
    }
}

/// Result of a successful check: symbol information plus soft warnings.
#[derive(Debug, Clone, Default)]
pub struct CheckInfo {
    /// Soft warnings (`LYR015x`), e.g. names referenced without declaration
    /// and treated as packet metadata.
    pub warnings: Vec<Diagnostic>,
    /// Every extern table declared anywhere in the program, by name.
    pub externs: HashMap<String, ExternVar>,
    /// Every global register array declared anywhere, name → (width, len).
    pub globals: HashMap<String, (u32, u64)>,
}

/// Check a program. Returns symbol info and warnings, or the list of hard
/// errors.
pub fn check_program(prog: &Program) -> Result<CheckInfo, CheckError> {
    let mut cx = Ctx {
        prog,
        errors: Vec::new(),
        info: CheckInfo::default(),
        header_instances: HashMap::new(),
    };
    cx.collect_headers();
    cx.check_duplicates();
    cx.check_pipelines();
    cx.collect_tables();
    for a in &prog.algorithms {
        cx.check_body(&a.body, &mut scope_with_headers(&cx));
    }
    for f in &prog.functions {
        let mut scope = scope_with_headers(&cx);
        for p in &f.params {
            scope.insert(p.name.clone());
        }
        cx.check_body(&f.body, &mut scope);
    }
    if cx.errors.is_empty() {
        Ok(cx.info)
    } else {
        Err(CheckError { errors: cx.errors })
    }
}

fn scope_with_headers(cx: &Ctx) -> HashSet<String> {
    let mut s: HashSet<String> = cx.header_instances.keys().cloned().collect();
    for p in &cx.prog.packets {
        for f in &p.fields {
            s.insert(f.name.clone());
        }
        s.insert(p.name.clone());
    }
    s
}

struct Ctx<'p> {
    prog: &'p Program,
    errors: Vec<Diagnostic>,
    info: CheckInfo,
    /// Header instance name → field set. Instance name is the header type
    /// name with a trailing `_t` stripped (the paper writes `int_probe_hdr_t`
    /// as the type of instance `int_probe_hdr`), and the type name itself is
    /// also accepted.
    header_instances: HashMap<String, HashMap<String, u32>>,
}

impl<'p> Ctx<'p> {
    fn error(&mut self, code: Code, span: crate::Span, message: impl Into<String>) {
        self.errors
            .push(Diagnostic::error(code, message).with_anonymous_span(span));
    }

    fn warn(&mut self, code: Code, span: crate::Span, message: impl Into<String>) {
        self.info
            .warnings
            .push(Diagnostic::warning(code, message).with_anonymous_span(span));
    }

    fn collect_headers(&mut self) {
        for h in &self.prog.headers {
            let fields: HashMap<String, u32> = h
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.width))
                .collect();
            self.header_instances.insert(h.name.clone(), fields.clone());
            if let Some(stripped) = h.name.strip_suffix("_t") {
                self.header_instances.insert(stripped.to_string(), fields);
            }
        }
    }

    fn check_duplicates(&mut self) {
        let mut seen = HashSet::new();
        for h in &self.prog.headers {
            if !seen.insert(format!("header:{}", h.name)) {
                self.error(
                    codes::DUPLICATE_DEF,
                    h.span,
                    format!("duplicate header_type `{}`", h.name),
                );
            }
        }
        let mut seen = HashSet::new();
        for a in &self.prog.algorithms {
            if !seen.insert(a.name.clone()) {
                self.error(
                    codes::DUPLICATE_DEF,
                    a.span,
                    format!("duplicate algorithm `{}`", a.name),
                );
            }
        }
        let mut seen = HashSet::new();
        for f in &self.prog.functions {
            if !seen.insert(f.name.clone()) {
                self.error(
                    codes::DUPLICATE_DEF,
                    f.span,
                    format!("duplicate function `{}`", f.name),
                );
            }
            if builtins().contains_key(f.name.as_str()) {
                self.error(
                    codes::SHADOWS_BUILTIN,
                    f.span,
                    format!(
                        "function `{}` shadows a predefined library function",
                        f.name
                    ),
                );
            }
        }
        let mut seen = HashSet::new();
        for p in &self.prog.pipelines {
            if !seen.insert(p.name.clone()) {
                self.error(
                    codes::DUPLICATE_DEF,
                    p.span,
                    format!("duplicate pipeline `{}`", p.name),
                );
            }
        }
    }

    fn check_pipelines(&mut self) {
        let algs: HashSet<&str> = self
            .prog
            .algorithms
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        for p in &self.prog.pipelines {
            for a in &p.algorithms {
                if !algs.contains(a.as_str()) {
                    self.error(
                        codes::UNKNOWN_ALGORITHM,
                        p.span,
                        format!("pipeline `{}` references unknown algorithm `{a}`", p.name),
                    );
                }
            }
        }
        // Every algorithm should belong to some pipeline (warning only).
        let piped: HashSet<&str> = self
            .prog
            .pipelines
            .iter()
            .flat_map(|p| p.algorithms.iter().map(String::as_str))
            .collect();
        for a in &self.prog.algorithms {
            if !piped.contains(a.name.as_str()) {
                self.warn(
                    codes::UNUSED_ALGORITHM,
                    a.span,
                    format!("algorithm `{}` is not part of any pipeline", a.name),
                );
            }
        }
    }

    fn collect_tables(&mut self) {
        let walk = |body: &[Stmt], cx: &mut Self| {
            fn rec(body: &[Stmt], cx: &mut Ctx) {
                for s in body {
                    match s {
                        Stmt::ExternDecl { var, span } => {
                            if cx.info.externs.contains_key(&var.name) {
                                cx.error(
                                    codes::DUPLICATE_DEF,
                                    *span,
                                    format!("duplicate extern `{}`", var.name),
                                );
                            } else {
                                cx.info.externs.insert(var.name.clone(), var.clone());
                            }
                            if var.size == 0 {
                                cx.error(
                                    codes::ZERO_WIDTH,
                                    *span,
                                    format!("extern `{}` has zero entries", var.name),
                                );
                            }
                        }
                        Stmt::GlobalDecl {
                            ty,
                            len,
                            name,
                            span,
                        } => {
                            if ty.width == 0 {
                                cx.error(
                                    codes::ZERO_WIDTH,
                                    *span,
                                    format!("global `{name}` has zero width"),
                                );
                            }
                            if cx.info.globals.contains_key(name) {
                                cx.error(
                                    codes::DUPLICATE_DEF,
                                    *span,
                                    format!("duplicate global `{name}`"),
                                );
                            } else {
                                cx.info.globals.insert(name.clone(), (ty.width, *len));
                            }
                        }
                        Stmt::If {
                            then_body,
                            else_body,
                            ..
                        } => {
                            rec(then_body, cx);
                            if let Some(eb) = else_body {
                                rec(eb, cx);
                            }
                        }
                        _ => {}
                    }
                }
            }
            rec(body, cx);
        };
        let algorithms = self.prog.algorithms.clone();
        let functions = self.prog.functions.clone();
        for a in &algorithms {
            walk(&a.body, self);
        }
        for f in &functions {
            walk(&f.body, self);
        }
    }

    fn check_body(&mut self, body: &[Stmt], scope: &mut HashSet<String>) {
        for s in body {
            match s {
                Stmt::VarDecl {
                    ty,
                    name,
                    init,
                    span,
                } => {
                    if ty.width == 0 {
                        self.error(
                            codes::ZERO_WIDTH,
                            *span,
                            format!("variable `{name}` has zero width"),
                        );
                    }
                    if let Some(e) = init {
                        self.check_expr(e, scope, *span);
                    }
                    scope.insert(name.clone());
                }
                Stmt::GlobalDecl { name, .. } => {
                    scope.insert(name.clone());
                }
                Stmt::ExternDecl { var, .. } => {
                    scope.insert(var.name.clone());
                }
                Stmt::Assign { lhs, rhs, span } => {
                    self.check_expr(rhs, scope, *span);
                    match lhs {
                        LValue::Path(p) => {
                            self.check_path_is_known(p, scope, *span, true);
                            scope.insert(p[0].clone());
                        }
                        LValue::Index { base, index } => {
                            self.check_expr(index, scope, *span);
                            if !self.info.globals.contains_key(base)
                                && !self.info.externs.contains_key(base)
                            {
                                self.error(
                                    codes::BAD_INDEX,
                                    *span,
                                    format!("indexed assignment to unknown table/global `{base}`"),
                                );
                            }
                        }
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                } => {
                    self.check_expr(cond, scope, *span);
                    let mut t = scope.clone();
                    self.check_body(then_body, &mut t);
                    if let Some(eb) = else_body {
                        let mut e = scope.clone();
                        self.check_body(eb, &mut e);
                        // Names assigned in both branches are defined after.
                        for n in t.intersection(&e) {
                            scope.insert(n.clone());
                        }
                    }
                }
                Stmt::Call { name, args, span } => {
                    self.check_call(name, args, scope, *span);
                    // By-reference parameters: a bare-path argument becomes
                    // defined after the call (Figure 8's int_info pattern).
                    for a in args {
                        if let Expr::Path(p) = a {
                            if p.len() == 1 {
                                scope.insert(p[0].clone());
                            }
                        }
                    }
                }
            }
        }
    }

    fn check_call(
        &mut self,
        name: &str,
        args: &[Expr],
        scope: &mut HashSet<String>,
        span: crate::Span,
    ) {
        if let Some(sig) = builtins().get(name) {
            if args.len() < sig.min_args || args.len() > sig.max_args {
                self.error(
                    codes::ARITY_MISMATCH,
                    span,
                    format!(
                        "builtin `{name}` takes {}..={} arguments, got {}",
                        sig.min_args,
                        sig.max_args,
                        args.len()
                    ),
                );
            }
        } else if let Some(f) = self.prog.function(name) {
            if f.params.len() != args.len() {
                self.error(
                    codes::ARITY_MISMATCH,
                    span,
                    format!(
                        "function `{name}` takes {} arguments, got {}",
                        f.params.len(),
                        args.len()
                    ),
                );
            }
        } else {
            self.error(
                codes::UNKNOWN_FUNCTION,
                span,
                format!("call to unknown function `{name}`"),
            );
        }
        for a in args {
            // Bare single-name arguments may be out-params; don't require
            // them to exist yet.
            if !matches!(a, Expr::Path(p) if p.len() == 1) {
                self.check_expr(a, scope, span);
            }
        }
    }

    fn check_path_is_known(
        &mut self,
        p: &[String],
        scope: &HashSet<String>,
        span: crate::Span,
        is_write: bool,
    ) {
        if p.len() >= 2 {
            // Header or metadata field access.
            if let Some(fields) = self.header_instances.get(&p[0]) {
                if !fields.contains_key(&p[1]) {
                    self.error(
                        codes::UNKNOWN_FIELD,
                        span,
                        format!("header `{}` has no field `{}`", p[0], p[1]),
                    );
                }
                return;
            }
            // Unknown first segment: treat as implicit metadata bundle.
            if !scope.contains(&p[0]) {
                self.warn(
                    codes::IMPLICIT_METADATA,
                    span,
                    format!("`{}` treated as implicit packet metadata", p.join(".")),
                );
            }
            return;
        }
        let name = &p[0];
        if scope.contains(name)
            || self.info.externs.contains_key(name)
            || self.info.globals.contains_key(name)
        {
            return;
        }
        if is_write {
            // Writing introduces an implicit metadata variable.
            return;
        }
        self.warn(
            codes::IMPLICIT_METADATA,
            span,
            format!("`{name}` treated as implicit packet metadata"),
        );
    }

    fn check_expr(&mut self, e: &Expr, scope: &HashSet<String>, span: crate::Span) {
        match e {
            Expr::Num(_) => {}
            Expr::Path(p) => self.check_path_is_known(p, scope, span, false),
            Expr::Index { base, index } => {
                if !self.info.externs.contains_key(base) && !self.info.globals.contains_key(base) {
                    self.error(
                        codes::BAD_INDEX,
                        span,
                        format!("indexing unknown table/global `{base}`"),
                    );
                }
                self.check_expr(index, scope, span);
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.check_expr(lhs, scope, span);
                self.check_expr(rhs, scope, span);
            }
            Expr::Un { expr, .. } => self.check_expr(expr, scope, span),
            Expr::Call { name, args } => {
                if let Some(sig) = builtins().get(name.as_str()) {
                    if sig.result_width.is_none() {
                        self.error(
                            codes::VOID_AS_VALUE,
                            span,
                            format!("builtin `{name}` has no result; cannot be used as a value"),
                        );
                    }
                    if args.len() < sig.min_args || args.len() > sig.max_args {
                        self.error(
                            codes::ARITY_MISMATCH,
                            span,
                            format!(
                                "builtin `{name}` takes {}..={} arguments, got {}",
                                sig.min_args,
                                sig.max_args,
                                args.len()
                            ),
                        );
                    }
                } else if self.prog.function(name).is_none() {
                    self.error(
                        codes::UNKNOWN_FUNCTION,
                        span,
                        format!("call to unknown function `{name}`"),
                    );
                }
                for a in args {
                    self.check_expr(a, scope, span);
                }
            }
            Expr::InTable { key, table } => {
                if !self.info.externs.contains_key(table) {
                    self.error(
                        codes::UNKNOWN_EXTERN,
                        span,
                        format!("`in` test against undeclared extern `{table}`"),
                    );
                }
                self.check_expr(key, scope, span);
            }
            Expr::Slice { base, hi, lo } => {
                if hi < lo {
                    self.error(
                        codes::BAD_SLICE,
                        span,
                        format!("bit slice `{}[{hi}:{lo}]` has hi < lo", base.join(".")),
                    );
                }
                self.check_path_is_known(base, scope, span, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    fn check(src: &str) -> Result<CheckInfo, CheckError> {
        check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_valid_program() {
        let info = check(
            r#"
            pipeline[P]{a};
            algorithm a {
                extern dict<bit[32] k, bit[32] v>[64] t;
                bit[32] h;
                h = crc32_hash(ipv4_src);
                if (h in t) { out = t[h]; }
            }
        "#,
        )
        .unwrap();
        assert_eq!(info.externs.len(), 1);
    }

    #[test]
    fn rejects_unknown_algorithm_in_pipeline() {
        let err = check("pipeline[P]{missing};").unwrap_err();
        assert!(err.errors[0].message.contains("unknown algorithm"));
    }

    #[test]
    fn rejects_duplicate_algorithms() {
        let err =
            check("pipeline[P]{a}; algorithm a { x = 1; } algorithm a { y = 1; }").unwrap_err();
        assert!(err.errors[0].message.contains("duplicate algorithm"));
    }

    #[test]
    fn rejects_unknown_function_call() {
        let err = check("pipeline[P]{a}; algorithm a { nonexistent_fn(); }").unwrap_err();
        assert!(err.errors[0].message.contains("unknown function"));
    }

    #[test]
    fn rejects_bad_builtin_arity() {
        let err = check("pipeline[P]{a}; algorithm a { drop(1, 2); }").unwrap_err();
        assert!(err.errors[0].message.contains("arguments"));
    }

    #[test]
    fn rejects_in_on_undeclared_table() {
        let err =
            check("pipeline[P]{a}; algorithm a { if (x in nowhere) { y = 1; } }").unwrap_err();
        assert!(err.errors[0].message.contains("undeclared extern"));
    }

    #[test]
    fn rejects_void_builtin_as_value() {
        let err = check("pipeline[P]{a}; algorithm a { x = drop(); }").unwrap_err();
        assert!(err.errors[0].message.contains("no result"));
    }

    #[test]
    fn rejects_bad_slice() {
        let err = check("pipeline[P]{a}; algorithm a { if (x[0:5] == 1) { y = 1; } }").unwrap_err();
        assert!(err.errors[0].message.contains("hi < lo"));
    }

    #[test]
    fn header_field_validation() {
        let err = check(
            r#"
            header_type ipv4_t { fields { bit[32] src_ip; } }
            pipeline[P]{a};
            algorithm a { x = ipv4.no_such_field; }
        "#,
        )
        .unwrap_err();
        assert!(err.errors[0].message.contains("no field"));
    }

    #[test]
    fn implicit_metadata_warns_not_errors() {
        let info = check("pipeline[P]{a}; algorithm a { if (int_enable) { x = 1; } }").unwrap();
        assert!(!info.warnings.is_empty());
    }

    #[test]
    fn out_param_pattern_ok() {
        // Figure 8: int_info(int_info) writes its argument.
        let info = check(
            r#"
            pipeline[P]{a};
            algorithm a {
                bit[32] info;
                int_info(info);
                x = info;
            }
            func int_info(bit[32] v) { v = 1; }
        "#,
        )
        .unwrap();
        let _ = info;
    }

    #[test]
    fn rejects_shadowing_builtin() {
        let err =
            check("pipeline[P]{a}; algorithm a { x = 1; } func drop() { y = 1; }").unwrap_err();
        assert!(err.errors[0].message.contains("shadows"));
    }
}
