//! Algorithm scope specifications (§3.3, Figure 7):
//!
//! ```text
//! int_in:       [ ToR* | PER-SW | - ]
//! int_transit:  [ Agg* | PER-SW | - ]
//! loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
//! ```
//!
//! Each line names an algorithm and gives `[ region | deploy | direct ]`:
//!
//! * **region** — candidate switches: a comma-separated list of switch names,
//!   each optionally ending in `*` as a prefix wildcard (`ToR*` = every
//!   switch whose name starts with `ToR`);
//! * **deploy** — `PER-SW` (copy the algorithm onto every switch in region)
//!   or `MULTI-SW` (realize one logical instance across the region); `-`
//!   defaults to `PER-SW`;
//! * **direct** — for MULTI-SW, the traffic direction
//!   `(ingress,...->egress,...)`; `-` if not applicable.

use lyra_diag::{codes, Diagnostic, Span};

/// How an algorithm maps onto its region (§3.3 "Deploy").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployMode {
    /// A copy of the whole algorithm on each switch of the region.
    PerSwitch,
    /// One logical instance realized across the switches of the region.
    MultiSwitch,
}

/// A traffic direction `(A,B -> C,D)` for MULTI-SW scopes (§3.3 "Direct").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Direction {
    /// Switch names traffic enters through.
    pub from: Vec<String>,
    /// Switch names traffic leaves through.
    pub to: Vec<String>,
}

/// A region pattern: an exact switch name or a `prefix*` wildcard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionPat {
    /// Exact switch name.
    Exact(String),
    /// Prefix wildcard (`ToR*`).
    Prefix(String),
}

impl RegionPat {
    /// Does `name` match this pattern?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            RegionPat::Exact(s) => s == name,
            RegionPat::Prefix(p) => name.starts_with(p.as_str()),
        }
    }
}

/// The scope of one algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeSpec {
    /// Algorithm name.
    pub algorithm: String,
    /// Candidate switch patterns.
    pub region: Vec<RegionPat>,
    /// Deployment mode.
    pub deploy: DeployMode,
    /// Optional traffic direction (MULTI-SW only).
    pub direct: Option<Direction>,
    /// Byte span of this scope's line within the scope source, so later
    /// phases (scope resolution over the topology) can point back at it.
    pub span: Span,
}

impl ScopeSpec {
    /// Resolve the region against a universe of switch names, preserving the
    /// universe's order.
    pub fn resolve<'a>(&self, universe: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        universe
            .into_iter()
            .filter(|name| self.region.iter().any(|p| p.matches(name)))
            .map(str::to_string)
            .collect()
    }
}

/// Errors from parsing a scope specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeError {
    /// 1-based line number.
    pub line: usize,
    /// Byte span of the offending line within the scope source.
    pub span: Span,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ScopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scope error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScopeError {}

impl ScopeError {
    /// Convert to a structured diagnostic (code `LYR0201`). The span's
    /// source id is attached by the driver.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::error(codes::SCOPE_SYNTAX, self.message.clone()).with_anonymous_span(self.span)
    }
}

/// Parse a scope specification document (one `name: [ .. | .. | .. ]` per
/// line; `#` and `//` comments and blank lines are skipped).
pub fn parse_scopes(src: &str) -> Result<Vec<ScopeSpec>, ScopeError> {
    let mut out = Vec::new();
    let mut offset = 0u32;
    for (i, raw) in src.lines().enumerate() {
        let line_no = i + 1;
        // Span of the trimmed content of this line.
        let leading = (raw.len() - raw.trim_start().len()) as u32;
        let span = Span::new(offset + leading, offset + leading + raw.trim().len() as u32);
        offset += raw.len() as u32 + 1;
        let err = |message: String| ScopeError {
            line: line_no,
            span,
            message,
        };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| err("expected `name: [ region | deploy | direct ]`".into()))?;
        let rest = rest.trim();
        if !rest.starts_with('[') || !rest.ends_with(']') {
            return Err(err(
                "scope body must be bracketed: `[ region | deploy | direct ]`".into(),
            ));
        }
        let inner = &rest[1..rest.len() - 1];
        let parts: Vec<&str> = inner.split('|').map(str::trim).collect();
        if parts.len() != 3 {
            return Err(err(format!(
                "expected 3 `|`-separated fields, found {}",
                parts.len()
            )));
        }
        let region = parse_region(parts[0], line_no, span)?;
        let deploy = match parts[1] {
            "PER-SW" | "-" => DeployMode::PerSwitch,
            "MULTI-SW" => DeployMode::MultiSwitch,
            other => {
                return Err(err(format!(
                    "deploy must be PER-SW, MULTI-SW or `-`, found `{other}`"
                )))
            }
        };
        let direct = match parts[2] {
            "-" | "" => None,
            d => Some(parse_direction(d, line_no, span)?),
        };
        if deploy == DeployMode::MultiSwitch && direct.is_none() {
            return Err(err(
                "MULTI-SW scopes require a direction `(A,B->C,D)`".into()
            ));
        }
        out.push(ScopeSpec {
            algorithm: name.trim().to_string(),
            region,
            deploy,
            direct,
            span,
        });
    }
    Ok(out)
}

fn parse_region(s: &str, line: usize, span: Span) -> Result<Vec<RegionPat>, ScopeError> {
    if s.is_empty() {
        return Err(ScopeError {
            line,
            span,
            message: "empty region".into(),
        });
    }
    s.split(',')
        .map(str::trim)
        .map(|item| {
            if item.is_empty() {
                Err(ScopeError {
                    line,
                    span,
                    message: "empty region element".into(),
                })
            } else if let Some(prefix) = item.strip_suffix('*') {
                Ok(RegionPat::Prefix(prefix.to_string()))
            } else {
                Ok(RegionPat::Exact(item.to_string()))
            }
        })
        .collect()
}

fn parse_direction(s: &str, line: usize, span: Span) -> Result<Direction, ScopeError> {
    let s = s.trim();
    if !s.starts_with('(') || !s.ends_with(')') {
        return Err(ScopeError {
            line,
            span,
            message: "direction must be parenthesized: `(A,B->C,D)`".into(),
        });
    }
    let inner = &s[1..s.len() - 1];
    let (from, to) = inner.split_once("->").ok_or_else(|| ScopeError {
        line,
        span,
        message: "direction must contain `->`".into(),
    })?;
    let split = |part: &str| -> Vec<String> {
        part.split(',')
            .map(str::trim)
            .filter(|x| !x.is_empty())
            .map(str::to_string)
            .collect()
    };
    let d = Direction {
        from: split(from),
        to: split(to),
    };
    if d.from.is_empty() || d.to.is_empty() {
        return Err(ScopeError {
            line,
            span,
            message: "direction sides must be non-empty".into(),
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG7: &str = r#"
        int_in: [ ToR* | PER-SW | - ]
        int_transit: [ Agg* | PER-SW | - ]
        int_out: [ ToR* | PER-SW | - ]
        loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
    "#;

    #[test]
    fn parses_figure7() {
        let scopes = parse_scopes(FIG7).unwrap();
        assert_eq!(scopes.len(), 4);
        assert_eq!(scopes[0].algorithm, "int_in");
        assert_eq!(scopes[0].deploy, DeployMode::PerSwitch);
        assert_eq!(scopes[3].deploy, DeployMode::MultiSwitch);
        let d = scopes[3].direct.as_ref().unwrap();
        assert_eq!(d.from, vec!["Agg3", "Agg4"]);
        assert_eq!(d.to, vec!["ToR3", "ToR4"]);
    }

    #[test]
    fn wildcard_resolution() {
        let scopes = parse_scopes(FIG7).unwrap();
        let universe = ["ToR1", "ToR2", "ToR3", "Agg1", "Core1"];
        assert_eq!(scopes[0].resolve(universe), vec!["ToR1", "ToR2", "ToR3"]);
        assert_eq!(scopes[1].resolve(universe), vec!["Agg1"]);
    }

    #[test]
    fn exact_region_resolution() {
        let scopes = parse_scopes(FIG7).unwrap();
        let universe = ["ToR3", "ToR4", "Agg3", "Agg4", "Core1"];
        assert_eq!(
            scopes[3].resolve(universe),
            vec!["ToR3", "ToR4", "Agg3", "Agg4"]
        );
    }

    #[test]
    fn multi_sw_requires_direction() {
        let err = parse_scopes("lb: [ ToR* | MULTI-SW | - ]").unwrap_err();
        assert!(err.message.contains("require a direction"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_scopes("nonsense").is_err());
        assert!(parse_scopes("a: [ x | PER-SW ]").is_err());
        assert!(parse_scopes("a: [ x | SOMETIMES | - ]").is_err());
        assert!(parse_scopes("a: [ | PER-SW | - ]").is_err());
        assert!(parse_scopes("a: [ x | MULTI-SW | A->B ]").is_err());
        assert!(parse_scopes("a: [ x | MULTI-SW | (->B) ]").is_err());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let s = parse_scopes("# comment\n\n// another\nx: [ S1 | - | - ]").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].deploy, DeployMode::PerSwitch);
    }
}
