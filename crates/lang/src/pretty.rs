//! Pretty-printer for Lyra programs. Output re-parses to an equivalent AST
//! (round-trip property-tested), and is used for LoC accounting and for
//! emitting preprocessed programs in diagnostics.

use crate::ast::*;

/// Render a full program as Lyra source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    if !p.headers.is_empty() || !p.packets.is_empty() || !p.parser_nodes.is_empty() {
        out.push_str(">HEADER:\n");
        for h in &p.headers {
            out.push_str(&print_header(h));
        }
        for pk in &p.packets {
            out.push_str(&print_packet(pk));
        }
        for n in &p.parser_nodes {
            out.push_str(&print_parser_node(n));
        }
    }
    if !p.pipelines.is_empty() || !p.algorithms.is_empty() {
        out.push_str(">PIPELINES:\n");
        for pl in &p.pipelines {
            out.push_str(&format!(
                "pipeline[{}]{{{}}};\n",
                pl.name,
                pl.algorithms.join(" -> ")
            ));
        }
        for a in &p.algorithms {
            out.push_str(&format!("algorithm {} {{\n", a.name));
            for s in &a.body {
                print_stmt(&mut out, s, 1);
            }
            out.push_str("}\n");
        }
    }
    if !p.functions.is_empty() {
        out.push_str(">FUNCTIONS:\n");
        for f in &p.functions {
            let params: Vec<String> = f
                .params
                .iter()
                .map(|p| format!("bit[{}] {}", p.ty.width, p.name))
                .collect();
            out.push_str(&format!("func {}({}) {{\n", f.name, params.join(", ")));
            for s in &f.body {
                print_stmt(&mut out, s, 1);
            }
            out.push_str("}\n");
        }
    }
    out
}

fn print_header(h: &HeaderType) -> String {
    let mut s = format!("header_type {} {{\n", h.name);
    s.push_str("    fields {\n");
    for f in &h.fields {
        s.push_str(&format!("        bit[{}] {};\n", f.ty.width, f.name));
    }
    s.push_str("    }\n}\n");
    s
}

fn print_packet(p: &PacketDecl) -> String {
    let mut s = format!("packet {} {{\n", p.name);
    s.push_str("    fields {\n");
    for f in &p.fields {
        s.push_str(&format!("        bit[{}] {};\n", f.ty.width, f.name));
    }
    s.push_str("    }\n}\n");
    s
}

fn print_parser_node(n: &ParserNode) -> String {
    let mut s = format!("parser_node {} {{\n", n.name);
    for e in &n.extracts {
        s.push_str(&format!("    extract({e});\n"));
    }
    for (dst, src) in &n.sets {
        s.push_str(&format!(
            "    set_metadata({}, {});\n",
            dst.join("."),
            src.to_src()
        ));
    }
    if let Some(sel) = &n.select {
        s.push_str(&format!("    select({}) {{\n", sel.join(".")));
        for (v, next) in &n.transitions {
            s.push_str(&format!("        0x{v:x}: {next};\n"));
        }
        if let Some(d) = &n.default {
            s.push_str(&format!("        default: {d};\n"));
        }
        s.push_str("    }\n");
    }
    s.push_str("}\n");
    s
}

/// Print a single statement at the given indent level.
pub fn print_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::VarDecl { ty, name, init, .. } => {
            match init {
                Some(e) => out.push_str(&format!(
                    "{pad}bit[{}] {} = {};\n",
                    ty.width,
                    name,
                    e.to_src()
                )),
                None => out.push_str(&format!("{pad}bit[{}] {};\n", ty.width, name)),
            };
        }
        Stmt::GlobalDecl { ty, len, name, .. } => {
            if *len == 1 {
                out.push_str(&format!("{pad}global bit[{}] {};\n", ty.width, name));
            } else {
                out.push_str(&format!(
                    "{pad}global bit[{}][{}] {};\n",
                    ty.width, len, name
                ));
            }
        }
        Stmt::ExternDecl { var, .. } => {
            let kw = match var.match_kind {
                MatchKind::Exact => None,
                MatchKind::Lpm => Some("lpm"),
                MatchKind::Ternary => Some("ternary"),
                MatchKind::Range => Some("range"),
            };
            let kind = match &var.kind {
                ExternKind::List { elem } => {
                    format!("list<bit[{}] {}>", elem.ty.width, elem.name)
                }
                ExternKind::Dict { keys, values } => {
                    let part = |fs: &[TypedField]| -> String {
                        let inner: Vec<String> = fs
                            .iter()
                            .map(|f| format!("bit[{}] {}", f.ty.width, f.name))
                            .collect();
                        if fs.len() == 1 {
                            inner.into_iter().next().unwrap()
                        } else {
                            format!("<{}>", inner.join(", "))
                        }
                    };
                    format!("{}<{}, {}>", kw.unwrap_or("dict"), part(keys), part(values))
                }
            };
            out.push_str(&format!("{pad}extern {kind}[{}] {};\n", var.size, var.name));
        }
        Stmt::Assign { lhs, rhs, .. } => {
            out.push_str(&format!("{pad}{} = {};\n", lhs.to_src(), rhs.to_src()));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            out.push_str(&format!("{pad}if ({}) {{\n", cond.to_src()));
            for st in then_body {
                print_stmt(out, st, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
            if let Some(eb) = else_body {
                out.push_str(&format!("{pad}else {{\n"));
                for st in eb {
                    print_stmt(out, st, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        Stmt::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| a.to_src()).collect();
            out.push_str(&format!("{pad}{name}({});\n", args.join(", ")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    const SRC: &str = r#"
        >HEADER:
        header_type probe_t { fields { bit[8] hop; } }
        >PIPELINES:
        pipeline[P]{a -> b};
        algorithm a {
            extern dict<bit[32] k, bit[32] v>[64] t;
            bit[32] h;
            h = crc32_hash(x, y);
            if (h in t) {
                z = t[h];
            } else {
                z = 0;
            }
        }
        algorithm b { f(); }
        >FUNCTIONS:
        func f() { q = 1; }
    "#;

    #[test]
    fn roundtrip_preserves_ast_shape() {
        let p1 = parse_program(SRC).unwrap();
        let printed = print_program(&p1);
        let p2 =
            parse_program(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1.headers.len(), p2.headers.len());
        assert_eq!(p1.pipelines, strip_spans_pipelines(&p2));
        assert_eq!(strip(&p1.algorithms[0].body), strip(&p2.algorithms[0].body));
    }

    // Spans differ between original and printed sources; compare via
    // re-printed text which ignores spans entirely.
    fn strip(b: &[Stmt]) -> String {
        let mut s = String::new();
        for st in b {
            print_stmt(&mut s, st, 0);
        }
        s
    }

    fn strip_spans_pipelines(p: &Program) -> Vec<Pipeline> {
        let orig = parse_program(SRC).unwrap();
        p.pipelines
            .iter()
            .zip(&orig.pipelines)
            .map(|(x, o)| Pipeline {
                span: o.span,
                ..x.clone()
            })
            .collect()
    }
}
