#![warn(missing_docs)]
//! # lyra-lang — the Lyra data-plane language
//!
//! This crate implements the front half of the Lyra language from
//! *Lyra: A Cross-Platform Language and Compiler for Data Plane Programming
//! on Heterogeneous ASICs* (SIGCOMM 2020): the lexer, the recursive-descent
//! parser producing a typed AST (the grammar of Figure 6 plus every construct
//! used by the paper's examples in Figures 4, 5 and 8), the semantic checker
//! (§4.1), a pretty-printer, and the *algorithm scope* specification language
//! of §3.3 (`name: [ region | deploy | direct ]`).
//!
//! A Lyra program has three parts (§3.2):
//!
//! * **header definitions** — `header_type`, `packet`, and `parser_node`
//!   declarations;
//! * **pipeline & algorithm definitions** — `pipeline[INT]{a -> b -> c};`
//!   declares a *one-big-pipeline* (OBP) over named `algorithm` blocks;
//! * **functions** — C-like `func` bodies with by-reference parameters,
//!   `extern` table variables, `global` register arrays, and `if`/assignment
//!   statements over bit-typed expressions.
//!
//! ```
//! use lyra_lang::parse_program;
//!
//! let src = r#"
//!     >PIPELINES:
//!     pipeline[DEMO]{ filter };
//!     algorithm filter {
//!         extern list<bit[32] ip>[1024] known_ip;
//!         if (ipv4.src_ip in known_ip) {
//!             drop();
//!         }
//!     }
//! "#;
//! let prog = parse_program(src).expect("parses");
//! assert_eq!(prog.pipelines.len(), 1);
//! assert_eq!(prog.algorithms[0].name, "filter");
//! ```

pub mod ast;
pub mod check;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod scope;

pub use ast::*;
pub use check::{check_program, CheckError};
pub use parser::{parse_program, ParseError};
pub use scope::{parse_scopes, DeployMode, Direction, ScopeError, ScopeSpec};

// The span type is shared across the whole workspace via `lyra-diag` so a
// single `SourceMap` can render snippets for diagnostics from any phase.
pub use lyra_diag::Span;

/// Count the *logic* lines of code of a Lyra source: non-empty, non-comment
/// lines, excluding header/parser definitions. This matches the paper's
/// "Logic LoC" metric in Figure 9 ("the code ignoring the header and parser
/// because this is a better metric to show the labor on writing a program").
pub fn logic_loc(src: &str) -> usize {
    let prog = match parse_program(src) {
        Ok(p) => p,
        Err(_) => return count_loc(src),
    };
    let mut skip_ranges: Vec<(u32, u32)> = Vec::new();
    for h in &prog.headers {
        skip_ranges.push((h.span.lo, h.span.hi));
    }
    for p in &prog.packets {
        skip_ranges.push((p.span.lo, p.span.hi));
    }
    for n in &prog.parser_nodes {
        skip_ranges.push((n.span.lo, n.span.hi));
    }
    let mut count = 0;
    let mut offset = 0u32;
    for line in src.lines() {
        let len = line.len() as u32;
        let t = line.trim();
        let in_header = skip_ranges
            .iter()
            .any(|&(lo, hi)| offset >= lo && offset < hi);
        if !t.is_empty() && !t.starts_with("//") && !t.starts_with('>') && !in_header {
            count += 1;
        }
        offset += len + 1;
    }
    count
}

/// Count total non-empty, non-comment lines (the paper's "LoC" column).
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|t| !t.is_empty() && !t.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_line_col() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 2));
    }

    #[test]
    fn loc_counting_ignores_comments() {
        let src = "// comment\n\nfoo();\nbar();\n";
        assert_eq!(count_loc(src), 2);
    }
}
