//! Recursive-descent parser for the Lyra language.
//!
//! Operator precedence follows C (the paper positions Lyra as "the C of data
//! planes"), with the membership test `key in table` sitting at the
//! relational level.

use crate::ast::*;
use crate::lexer::{lex, LexError, Punct, SpannedTok, Tok};
use crate::Span;

/// Errors produced by parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Unexpected token.
    Unexpected {
        /// What was found.
        found: String,
        /// What was expected.
        expected: String,
        /// Where.
        span: Span,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                found,
                expected,
                span,
            } => write!(
                f,
                "parse error at byte {}: expected {expected}, found {found}",
                span.lo
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

impl ParseError {
    /// The span of the offending source region.
    pub fn span(&self) -> Span {
        match self {
            ParseError::Lex(e) => e.span,
            ParseError::Unexpected { span, .. } => *span,
        }
    }

    /// Convert to a structured diagnostic (`LYR0001` for lex errors,
    /// `LYR0002` for parse errors). The span's source id is attached by
    /// the driver.
    pub fn to_diagnostic(&self) -> lyra_diag::Diagnostic {
        use lyra_diag::{codes, Diagnostic};
        match self {
            ParseError::Lex(e) => {
                Diagnostic::error(codes::LEX, e.message.clone()).with_anonymous_span(e.span)
            }
            ParseError::Unexpected {
                found,
                expected,
                span,
            } => Diagnostic::error(codes::PARSE, format!("expected {expected}, found {found}"))
                .with_anonymous_span(*span),
        }
    }
}

/// Parse a complete Lyra program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError::Unexpected {
            found: format!("{:?}", self.peek()),
            expected: expected.to_string(),
            span: self.span(),
        })
    }

    fn eat_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.peek() == &Tok::Punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(&format!("{p:?}"))
        }
    }

    fn at_punct(&self, p: Punct) -> bool {
        self.peek() == &Tok::Punct(p)
    }

    fn eat_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => self.err("identifier"),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            _ => self.err(&format!("keyword `{kw}`")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_num(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(n)
            }
            _ => self.err("number"),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Section(_) => {
                    self.bump();
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "header_type" => prog.headers.push(self.header_type()?),
                    "packet" => prog.packets.push(self.packet_decl()?),
                    "parser_node" => prog.parser_nodes.push(self.parser_node()?),
                    "pipeline" => prog.pipelines.push(self.pipeline()?),
                    "algorithm" => prog.algorithms.push(self.algorithm()?),
                    "func" => prog.functions.push(self.function()?),
                    _ => return self.err("declaration keyword"),
                },
                _ => return self.err("declaration"),
            }
        }
        Ok(prog)
    }

    fn bit_ty(&mut self) -> Result<BitTy, ParseError> {
        self.eat_kw("bit")?;
        self.eat_punct(Punct::LBracket)?;
        let width = self.eat_num()? as u32;
        self.eat_punct(Punct::RBracket)?;
        Ok(BitTy { width })
    }

    fn typed_field(&mut self) -> Result<TypedField, ParseError> {
        let ty = self.bit_ty()?;
        let name = self.eat_ident()?;
        Ok(TypedField { ty, name })
    }

    /// `{ fields { f* } }` or `{ f* }` — both accepted.
    fn field_block(&mut self) -> Result<Vec<TypedField>, ParseError> {
        self.eat_punct(Punct::LBrace)?;
        let mut fields = Vec::new();
        if self.at_kw("fields") {
            self.bump();
            self.eat_punct(Punct::LBrace)?;
            while !self.at_punct(Punct::RBrace) {
                let f = self.typed_field()?;
                self.eat_punct(Punct::Semi)?;
                fields.push(f);
            }
            self.eat_punct(Punct::RBrace)?;
        } else {
            while !self.at_punct(Punct::RBrace) {
                let f = self.typed_field()?;
                self.eat_punct(Punct::Semi)?;
                fields.push(f);
            }
        }
        self.eat_punct(Punct::RBrace)?;
        Ok(fields)
    }

    fn header_type(&mut self) -> Result<HeaderType, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("header_type")?;
        let name = self.eat_ident()?;
        let fields = self.field_block()?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        Ok(HeaderType {
            name,
            fields,
            span: Span::new(lo, hi),
        })
    }

    fn packet_decl(&mut self) -> Result<PacketDecl, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("packet")?;
        let name = self.eat_ident()?;
        let fields = self.field_block()?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        Ok(PacketDecl {
            name,
            fields,
            span: Span::new(lo, hi),
        })
    }

    fn parser_node(&mut self) -> Result<ParserNode, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("parser_node")?;
        let name = self.eat_ident()?;
        self.eat_punct(Punct::LBrace)?;
        let mut node = ParserNode {
            name,
            extracts: Vec::new(),
            select: None,
            transitions: Vec::new(),
            default: None,
            sets: Vec::new(),
            span: Span::default(),
        };
        while !self.at_punct(Punct::RBrace) {
            if self.at_kw("extract") {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                node.extracts.push(self.eat_ident()?);
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
            } else if self.at_kw("set_metadata") {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                let dst = self.path()?;
                self.eat_punct(Punct::Comma)?;
                let src = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::Semi)?;
                node.sets.push((dst, src));
            } else if self.at_kw("select") {
                self.bump();
                self.eat_punct(Punct::LParen)?;
                node.select = Some(self.path()?);
                self.eat_punct(Punct::RParen)?;
                self.eat_punct(Punct::LBrace)?;
                while !self.at_punct(Punct::RBrace) {
                    if self.at_kw("default") {
                        self.bump();
                        self.eat_punct(Punct::Colon)?;
                        node.default = Some(self.eat_ident()?);
                        self.eat_punct(Punct::Semi)?;
                    } else {
                        let v = self.eat_num()?;
                        self.eat_punct(Punct::Colon)?;
                        let next = self.eat_ident()?;
                        self.eat_punct(Punct::Semi)?;
                        node.transitions.push((v, next));
                    }
                }
                self.eat_punct(Punct::RBrace)?;
            } else {
                return self.err("extract, select, or set_metadata");
            }
        }
        self.eat_punct(Punct::RBrace)?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        node.span = Span::new(lo, hi);
        Ok(node)
    }

    fn pipeline(&mut self) -> Result<Pipeline, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("pipeline")?;
        self.eat_punct(Punct::LBracket)?;
        let name = self.eat_ident()?;
        self.eat_punct(Punct::RBracket)?;
        self.eat_punct(Punct::LBrace)?;
        let mut algorithms = vec![self.eat_ident()?];
        while self.at_punct(Punct::Arrow) {
            self.bump();
            algorithms.push(self.eat_ident()?);
        }
        self.eat_punct(Punct::RBrace)?;
        self.eat_punct(Punct::Semi)?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        Ok(Pipeline {
            name,
            algorithms,
            span: Span::new(lo, hi),
        })
    }

    fn algorithm(&mut self) -> Result<Algorithm, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("algorithm")?;
        let name = self.eat_ident()?;
        let body = self.block()?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        Ok(Algorithm {
            name,
            body,
            span: Span::new(lo, hi),
        })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("func")?;
        let name = self.eat_ident()?;
        self.eat_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            params.push(self.typed_field()?);
            while self.at_punct(Punct::Comma) {
                self.bump();
                params.push(self.typed_field()?);
            }
        }
        self.eat_punct(Punct::RParen)?;
        let body = self.block()?;
        let hi = self.toks[self.pos.saturating_sub(1)].span.hi;
        Ok(Function {
            name,
            params,
            body,
            span: Span::new(lo, hi),
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.eat_punct(Punct::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span().lo;
        if self.at_kw("bit") {
            let ty = self.bit_ty()?;
            let name = self.eat_ident()?;
            let init = if self.at_punct(Punct::Assign) {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.eat_punct(Punct::Semi)?;
            let hi = self.toks[self.pos - 1].span.hi;
            return Ok(Stmt::VarDecl {
                ty,
                name,
                init,
                span: Span::new(lo, hi),
            });
        }
        if self.at_kw("global") {
            self.bump();
            let ty = self.bit_ty()?;
            let len = if self.at_punct(Punct::LBracket) {
                self.bump();
                let n = self.eat_num()?;
                self.eat_punct(Punct::RBracket)?;
                n
            } else {
                1
            };
            let name = self.eat_ident()?;
            self.eat_punct(Punct::Semi)?;
            let hi = self.toks[self.pos - 1].span.hi;
            return Ok(Stmt::GlobalDecl {
                ty,
                len,
                name,
                span: Span::new(lo, hi),
            });
        }
        if self.at_kw("extern") {
            let var = self.extern_decl()?;
            let hi = self.toks[self.pos - 1].span.hi;
            return Ok(Stmt::ExternDecl {
                var,
                span: Span::new(lo, hi),
            });
        }
        if self.at_kw("if") {
            return self.if_stmt();
        }
        if self.at_kw("switch") {
            return self.switch_stmt();
        }
        // Call statement or assignment.
        let first = self.eat_ident()?;
        if self.at_punct(Punct::LParen) {
            // call statement
            self.bump();
            let mut args = Vec::new();
            if !self.at_punct(Punct::RParen) {
                args.push(self.expr()?);
                while self.at_punct(Punct::Comma) {
                    self.bump();
                    args.push(self.expr()?);
                }
            }
            self.eat_punct(Punct::RParen)?;
            self.eat_punct(Punct::Semi)?;
            let hi = self.toks[self.pos - 1].span.hi;
            return Ok(Stmt::Call {
                name: first,
                args,
                span: Span::new(lo, hi),
            });
        }
        // lvalue: path or index
        let lhs = if self.at_punct(Punct::LBracket) {
            self.bump();
            let index = self.expr()?;
            self.eat_punct(Punct::RBracket)?;
            LValue::Index {
                base: first,
                index: Box::new(index),
            }
        } else {
            let mut path = vec![first];
            while self.at_punct(Punct::Dot) {
                self.bump();
                path.push(self.eat_ident()?);
            }
            LValue::Path(path)
        };
        self.eat_punct(Punct::Assign)?;
        let rhs = self.expr()?;
        self.eat_punct(Punct::Semi)?;
        let hi = self.toks[self.pos - 1].span.hi;
        Ok(Stmt::Assign {
            lhs,
            rhs,
            span: Span::new(lo, hi),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("if")?;
        self.eat_punct(Punct::LParen)?;
        let cond = self.expr()?;
        self.eat_punct(Punct::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.at_kw("else") {
            self.bump();
            if self.at_kw("if") {
                Some(vec![self.if_stmt()?])
            } else {
                Some(self.block()?)
            }
        } else {
            None
        };
        let hi = self.toks[self.pos - 1].span.hi;
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span: Span::new(lo, hi),
        })
    }

    /// `switch (e) { case N: { ... } ... default: { ... } }` — syntax sugar
    /// that desugars into an if/else-if chain (§5.2 mentions "different
    /// cases in the switch statement" as a source of mutually exclusive
    /// predicate blocks, which is exactly what the chain lowers to).
    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lo = self.span().lo;
        self.eat_kw("switch")?;
        self.eat_punct(Punct::LParen)?;
        let scrutinee = self.expr()?;
        self.eat_punct(Punct::RParen)?;
        self.eat_punct(Punct::LBrace)?;
        let mut cases: Vec<(u64, Vec<Stmt>)> = Vec::new();
        let mut default: Option<Vec<Stmt>> = None;
        while !self.at_punct(Punct::RBrace) {
            if self.at_kw("case") {
                self.bump();
                let v = self.eat_num()?;
                self.eat_punct(Punct::Colon)?;
                let body = self.block()?;
                cases.push((v, body));
            } else if self.at_kw("default") {
                self.bump();
                self.eat_punct(Punct::Colon)?;
                default = Some(self.block()?);
            } else {
                return self.err("`case N:` or `default:`");
            }
        }
        self.eat_punct(Punct::RBrace)?;
        let hi = self.toks[self.pos - 1].span.hi;
        let span = Span::new(lo, hi);
        // Desugar from the last case backwards into nested if/else.
        let mut tail: Option<Vec<Stmt>> = default;
        for (v, body) in cases.into_iter().rev() {
            let cond = Expr::Bin {
                op: BinOp::Eq,
                lhs: Box::new(scrutinee.clone()),
                rhs: Box::new(Expr::Num(v)),
            };
            let stmt = Stmt::If {
                cond,
                then_body: body,
                else_body: tail,
                span,
            };
            tail = Some(vec![stmt]);
        }
        match tail {
            Some(mut stmts) if stmts.len() == 1 => Ok(stmts.pop().unwrap()),
            _ => self.err("switch with at least one case"),
        }
    }

    fn extern_decl(&mut self) -> Result<ExternVar, ParseError> {
        self.eat_kw("extern")?;
        // Optional match kind: `extern lpm<...>` / `ternary<...>` /
        // `range<...>` behave like dicts with TCAM-resident keys.
        let match_kind = if self.at_kw("lpm") {
            MatchKind::Lpm
        } else if self.at_kw("ternary") {
            MatchKind::Ternary
        } else if self.at_kw("range") {
            MatchKind::Range
        } else {
            MatchKind::Exact
        };
        let tcam_dict = match_kind != MatchKind::Exact;
        let kind = if self.at_kw("list") {
            self.bump();
            self.eat_punct(Punct::Lt)?;
            let elem = self.typed_field()?;
            self.eat_punct(Punct::Gt)?;
            ExternKind::List { elem }
        } else if self.at_kw("dict") || tcam_dict {
            self.bump();
            self.split_shl();
            self.eat_punct(Punct::Lt)?;
            self.split_shl();
            let keys = self.tuple_or_single()?;
            self.eat_punct(Punct::Comma)?;
            let values = self.tuple_or_single()?;
            self.eat_punct(Punct::Gt)?;
            ExternKind::Dict { keys, values }
        } else {
            return self.err("`list` or `dict`");
        };
        self.eat_punct(Punct::LBracket)?;
        let size = self.eat_num()?;
        self.eat_punct(Punct::RBracket)?;
        let name = self.eat_ident()?;
        self.eat_punct(Punct::Semi)?;
        Ok(ExternVar {
            name,
            kind,
            match_kind,
            size,
        })
    }

    /// If the next token is `<<`, split it into two `<` tokens. Needed for
    /// tuple keys: `dict<<bit[32] a, bit[32] b>, ...>` lexes the leading
    /// `<<` as a shift operator.
    fn split_shl(&mut self) {
        if self.peek() == &Tok::Punct(Punct::Shl) {
            let span = self.toks[self.pos].span;
            let lo = Span::new(span.lo, span.lo + 1);
            let hi = Span::new(span.lo + 1, span.hi);
            self.toks[self.pos] = SpannedTok {
                tok: Tok::Punct(Punct::Lt),
                span: lo,
            };
            self.toks.insert(
                self.pos + 1,
                SpannedTok {
                    tok: Tok::Punct(Punct::Lt),
                    span: hi,
                },
            );
        }
    }

    /// Either a single `bit[w] name` or a tuple `<bit[w] a, bit[w] b>`.
    fn tuple_or_single(&mut self) -> Result<Vec<TypedField>, ParseError> {
        if self.at_punct(Punct::Lt) {
            self.bump();
            let mut fields = vec![self.typed_field()?];
            while self.at_punct(Punct::Comma) {
                self.bump();
                fields.push(self.typed_field()?);
            }
            self.eat_punct(Punct::Gt)?;
            Ok(fields)
        } else {
            Ok(vec![self.typed_field()?])
        }
    }

    fn path(&mut self) -> Result<Vec<String>, ParseError> {
        let mut p = vec![self.eat_ident()?];
        while self.at_punct(Punct::Dot) {
            self.bump();
            p.push(self.eat_ident()?);
        }
        Ok(p)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.lor()
    }

    fn lor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.land()?;
        while self.at_punct(Punct::OrOr) {
            self.bump();
            let rhs = self.land()?;
            lhs = Expr::Bin {
                op: BinOp::LOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn land(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitor()?;
        while self.at_punct(Punct::AndAnd) {
            self.bump();
            let rhs = self.bitor()?;
            lhs = Expr::Bin {
                op: BinOp::LAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bitor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitxor()?;
        while self.at_punct(Punct::Pipe) {
            self.bump();
            let rhs = self.bitxor()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bitxor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitand()?;
        while self.at_punct(Punct::Caret) {
            self.bump();
            let rhs = self.bitand()?;
            lhs = Expr::Bin {
                op: BinOp::Xor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bitand(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.at_punct(Punct::Amp) {
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.at_punct(Punct::EqEq) {
                BinOp::Eq
            } else if self.at_punct(Punct::NotEq) {
                BinOp::Ne
            } else {
                break;
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            if self.at_kw("in") {
                self.bump();
                let table = self.eat_ident()?;
                lhs = Expr::InTable {
                    key: Box::new(lhs),
                    table,
                };
                continue;
            }
            let op = if self.at_punct(Punct::Lt) {
                BinOp::Lt
            } else if self.at_punct(Punct::Le) {
                BinOp::Le
            } else if self.at_punct(Punct::Gt) {
                BinOp::Gt
            } else if self.at_punct(Punct::Ge) {
                BinOp::Ge
            } else {
                break;
            };
            self.bump();
            let rhs = self.shift()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.at_punct(Punct::Shl) {
                BinOp::Shl
            } else if self.at_punct(Punct::Shr) {
                BinOp::Shr
            } else {
                break;
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.at_punct(Punct::Plus) {
                BinOp::Add
            } else if self.at_punct(Punct::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.at_punct(Punct::Star) {
                BinOp::Mul
            } else if self.at_punct(Punct::Slash) {
                BinOp::Div
            } else if self.at_punct(Punct::Percent) {
                BinOp::Mod
            } else {
                break;
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.at_punct(Punct::Bang) {
            Some(UnOp::Not)
        } else if self.at_punct(Punct::Tilde) {
            Some(UnOp::BitNot)
        } else if self.at_punct(Punct::Minus) {
            Some(UnOp::Neg)
        } else {
            None
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            return Ok(Expr::Un {
                op,
                expr: Box::new(expr),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Punct(Punct::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.eat_punct(Punct::RParen)?;
                Ok(e)
            }
            Tok::Ident(_) => {
                let first = self.eat_ident()?;
                // Call?
                if self.at_punct(Punct::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        args.push(self.expr()?);
                        while self.at_punct(Punct::Comma) {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.eat_punct(Punct::RParen)?;
                    return Ok(Expr::Call { name: first, args });
                }
                // Dotted path.
                let mut path = vec![first];
                while self.at_punct(Punct::Dot) {
                    self.bump();
                    path.push(self.eat_ident()?);
                }
                // Index or slice?
                if self.at_punct(Punct::LBracket) {
                    // Slice if `[num:num]`, else index.
                    if let (Tok::Num(hi), Tok::Punct(Punct::Colon)) = (
                        self.peek2().clone(),
                        self.toks[(self.pos + 2).min(self.toks.len() - 1)]
                            .tok
                            .clone(),
                    ) {
                        self.bump(); // [
                        self.bump(); // hi
                        self.bump(); // :
                        let lo = self.eat_num()? as u32;
                        self.eat_punct(Punct::RBracket)?;
                        return Ok(Expr::Slice {
                            base: path,
                            hi: hi as u32,
                            lo,
                        });
                    }
                    if path.len() == 1 {
                        self.bump();
                        let index = self.expr()?;
                        self.eat_punct(Punct::RBracket)?;
                        return Ok(Expr::Index {
                            base: path.pop().unwrap(),
                            index: Box::new(index),
                        });
                    }
                }
                Ok(Expr::Path(path))
            }
            _ => self.err("expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_motivating_example_subset() {
        let src = r#"
            >HEADER:
            header_type int_probe_hdr_t {
                bit[8] hop_count;
                bit[8] msg_type;
            }
            packet in_pkt { fields { bit[9] ingress_port; } }

            >PIPELINES:
            pipeline[INT]{int_in -> int_transit -> int_out};
            pipeline[LB]{loadbalancer};

            algorithm loadbalancer {
                load_balancing();
            }
            algorithm int_in {
                global bit[32][1024] packet_counter;
                int_filtering();
                if (int_enable) {
                    add_int_probe_header();
                }
            }
            algorithm int_transit { transit(); }
            algorithm int_out { egress(); }

            >FUNCTIONS:
            func load_balancing() {
                extern dict<bit[32] hash, bit[32] ip>[1024] conn_table;
                extern dict<bit[32] vip, bit[8] group>[1024] vip_table;
                bit[32] hash;
                hash = crc32_hash(ipv4.srcAddr, ipv4.dstAddr, ipv4.protocol, tcp.srcPort, tcp.dstPort);
                if (hash in conn_table) {
                    ipv4.dstAddr = conn_table[hash];
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.headers.len(), 1);
        assert_eq!(p.packets.len(), 1);
        assert_eq!(p.pipelines.len(), 2);
        assert_eq!(
            p.pipelines[0].algorithms,
            vec!["int_in", "int_transit", "int_out"]
        );
        assert_eq!(p.algorithms.len(), 4);
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        // extern decls + var decl + assign + if
        assert_eq!(f.body.len(), 5);
    }

    #[test]
    fn parses_tuple_dict() {
        let src = r#"
            func f() {
                extern dict<<bit[32] src, bit[32] dst>, bit[8] p>[1024] route;
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.functions[0].body[0] {
            Stmt::ExternDecl { var, .. } => {
                assert_eq!(var.key_width(), 64);
                assert_eq!(var.value_width(), 8);
            }
            other => panic!("expected extern, got {other:?}"),
        }
    }

    #[test]
    fn parses_figure5_bitops() {
        let src = r#"
            algorithm a {
                extern list<bit[32] ip>[10] get_v16_1;
                if (src_ip in get_v16_1) {
                    v16 = (v8_a << 8 | v8_b);
                }
                if (smac == dmac) {
                    x = 1;
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.algorithms[0].body.len(), 3);
        // `<<` binds tighter than `|`
        if let Stmt::If { then_body, .. } = &p.algorithms[0].body[1] {
            if let Stmt::Assign { rhs, .. } = &then_body[0] {
                assert_eq!(rhs.to_src(), "((v8_a << 8) | v8_b)");
            } else {
                panic!("expected assign");
            }
        } else {
            panic!("expected if");
        }
    }

    #[test]
    fn parses_else_if_chains() {
        let src = r#"
            algorithm a {
                if (x == 1) { y = 1; }
                else if (x == 2) { y = 2; }
                else { y = 3; }
            }
        "#;
        let p = parse_program(src).unwrap();
        if let Stmt::If {
            else_body: Some(eb),
            ..
        } = &p.algorithms[0].body[0]
        {
            assert!(matches!(
                &eb[0],
                Stmt::If {
                    else_body: Some(_),
                    ..
                }
            ));
        } else {
            panic!("bad structure");
        }
    }

    #[test]
    fn parses_parser_nodes() {
        let src = r#"
            parser_node start {
                extract(ethernet);
                select(ethernet.ether_type) {
                    0x0800: parse_ipv4;
                    default: ingress;
                }
            }
            parser_node parse_ipv4 {
                extract(ipv4);
                set_metadata(md.is_ip, 1);
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.parser_nodes.len(), 2);
        assert_eq!(
            p.parser_nodes[0].transitions,
            vec![(0x0800, "parse_ipv4".to_string())]
        );
        assert_eq!(p.parser_nodes[0].default.as_deref(), Some("ingress"));
        assert_eq!(p.parser_nodes[1].sets.len(), 1);
    }

    #[test]
    fn parses_slices_and_indexing() {
        let src = r#"
            algorithm a {
                if (smac[47:32] == dmac[47:32]) { t = 1; }
                counter[idx] = counter[idx] + 1;
            }
        "#;
        let p = parse_program(src).unwrap();
        if let Stmt::If { cond, .. } = &p.algorithms[0].body[0] {
            assert!(matches!(cond, Expr::Bin { op: BinOp::Eq, .. }));
        }
        assert!(matches!(
            &p.algorithms[0].body[1],
            Stmt::Assign {
                lhs: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn error_reports_position() {
        let src = "algorithm a { if (x == ) { } }";
        let err = parse_program(src).unwrap_err();
        match err {
            ParseError::Unexpected { expected, .. } => assert_eq!(expected, "expression"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_declarations() {
        assert!(parse_program("banana x {}").is_err());
    }
}

#[cfg(test)]
mod switch_tests {
    use super::*;

    #[test]
    fn switch_desugars_to_if_chain() {
        let src = r#"
            pipeline[P]{a};
            algorithm a {
                switch (op) {
                    case 1: { x = 10; }
                    case 2: { x = 20; }
                    default: { x = 0; }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        // Outer if: op == 1.
        let Stmt::If {
            cond, else_body, ..
        } = &p.algorithms[0].body[0]
        else {
            panic!("expected if");
        };
        assert_eq!(cond.to_src(), "(op == 1)");
        // else contains the op == 2 case, which has the default as else.
        let inner = else_body.as_ref().unwrap();
        let Stmt::If {
            cond: c2,
            else_body: e2,
            ..
        } = &inner[0]
        else {
            panic!("expected nested if");
        };
        assert_eq!(c2.to_src(), "(op == 2)");
        assert!(e2.is_some());
    }

    #[test]
    fn switch_without_default() {
        let src = "pipeline[P]{a}; algorithm a { switch (k) { case 5: { y = 1; } } }";
        let p = parse_program(src).unwrap();
        let Stmt::If { else_body, .. } = &p.algorithms[0].body[0] else {
            panic!("expected if");
        };
        assert!(else_body.is_none());
    }

    #[test]
    fn empty_switch_rejected() {
        assert!(parse_program("pipeline[P]{a}; algorithm a { switch (k) { } }").is_err());
    }
}
