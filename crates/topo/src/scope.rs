//! Scope resolution: bind a parsed [`ScopeSpec`](lyra_lang::ScopeSpec) to a
//! concrete [`Topology`], producing the candidate switch set and the flow
//! paths the back-end encodes constraints over (§4.3 "Deployment constraints
//! generation").

use lyra_diag::{codes, Code, Diagnostic, Span};
use lyra_lang::{DeployMode, ScopeSpec};

use crate::paths::enumerate_paths;
use crate::{SwitchId, Topology};

/// A scope bound to a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedScope {
    /// Algorithm name.
    pub algorithm: String,
    /// Candidate switches (region ∩ topology), in topology order.
    pub switches: Vec<SwitchId>,
    /// Deployment mode.
    pub deploy: DeployMode,
    /// Flow paths through the scope. For PER-SW scopes each switch is its
    /// own single-hop path; for MULTI-SW scopes these follow the `direct`
    /// specification.
    pub paths: Vec<Vec<SwitchId>>,
}

/// Errors binding a scope to a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScopeResolutionError {
    /// Problem description.
    pub message: String,
    /// Stable diagnostic code (`LYR0204`..`LYR0207`).
    pub code: Code,
    /// The scope line this error refers to, within the scope source.
    pub span: Option<Span>,
}

impl std::fmt::Display for ScopeResolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scope resolution error: {}", self.message)
    }
}

impl std::error::Error for ScopeResolutionError {}

impl ScopeResolutionError {
    /// Convert to a structured diagnostic; the span's source id (the scope
    /// file) is attached by the driver.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let d = Diagnostic::error(self.code, self.message.clone());
        match self.span {
            Some(sp) => d.with_anonymous_span(sp),
            None => d,
        }
    }
}

/// Maximum path length (hops) enumerated within a scope.
const MAX_PATH_LEN: usize = 8;

/// Bind `spec` to `topo`.
pub fn resolve_scope(
    topo: &Topology,
    spec: &ScopeSpec,
) -> Result<ResolvedScope, ScopeResolutionError> {
    let names: Vec<&str> = topo.names();
    let matched = spec.resolve(names.iter().copied());
    if matched.is_empty() {
        return Err(ScopeResolutionError {
            message: format!(
                "scope for `{}` matches no switch in the topology",
                spec.algorithm
            ),
            code: codes::SCOPE_EMPTY_REGION,
            span: Some(spec.span),
        });
    }
    let switches: Vec<SwitchId> = matched.iter().map(|n| topo.find(n).unwrap()).collect();
    let paths = match spec.deploy {
        DeployMode::PerSwitch => switches.iter().map(|&s| vec![s]).collect(),
        DeployMode::MultiSwitch => {
            let direct = spec.direct.as_ref().ok_or_else(|| ScopeResolutionError {
                message: format!("MULTI-SW scope for `{}` lacks a direction", spec.algorithm),
                code: codes::SCOPE_SYNTAX,
                span: Some(spec.span),
            })?;
            let lookup = |ns: &[String]| -> Result<Vec<SwitchId>, ScopeResolutionError> {
                ns.iter()
                    .map(|n| {
                        topo.find(n).ok_or_else(|| ScopeResolutionError {
                            message: format!("direction names unknown switch `{n}`"),
                            code: codes::SCOPE_UNKNOWN_SWITCH,
                            span: Some(spec.span),
                        })
                    })
                    .collect()
            };
            let from = lookup(&direct.from)?;
            let to = lookup(&direct.to)?;
            for s in from.iter().chain(&to) {
                if !switches.contains(s) {
                    return Err(ScopeResolutionError {
                        message: format!(
                            "direction switch `{}` is outside the scope region of `{}`",
                            topo.switch(*s).name,
                            spec.algorithm
                        ),
                        code: codes::SCOPE_OUTSIDE_REGION,
                        span: Some(spec.span),
                    });
                }
            }
            let paths = enumerate_paths(topo, &from, &to, &switches, MAX_PATH_LEN);
            if paths.is_empty() {
                return Err(ScopeResolutionError {
                    message: format!(
                        "no flow path exists through the scope of `{}`",
                        spec.algorithm
                    ),
                    code: codes::SCOPE_NO_PATH,
                    span: Some(spec.span),
                });
            }
            paths
        }
    };
    Ok(ResolvedScope {
        algorithm: spec.algorithm.clone(),
        switches,
        deploy: spec.deploy,
        paths,
    })
}

/// Bind `spec` to a *degraded* topology, tolerating direction endpoints
/// that the fault removed. Where [`resolve_scope`] rejects a MULTI-SW
/// direction naming any switch absent from the topology
/// (`SCOPE_UNKNOWN_SWITCH`), a failover recompile must accept the same
/// scope text against a network that just lost switches: dead endpoints
/// are silently dropped from the `from`/`to` lists, and only when *all*
/// ingress or *all* egress endpoints are gone does resolution fail (with
/// the usual no-path error, since no traffic can traverse the scope).
///
/// Scope-region wildcards already tolerate missing switches (they match
/// whatever exists), so PER-SW scopes behave identically under both entry
/// points.
pub fn resolve_scope_degraded(
    topo: &Topology,
    spec: &ScopeSpec,
) -> Result<ResolvedScope, ScopeResolutionError> {
    match spec.deploy {
        DeployMode::PerSwitch => resolve_scope(topo, spec),
        DeployMode::MultiSwitch => {
            let Some(direct) = spec.direct.as_ref() else {
                return resolve_scope(topo, spec); // surfaces SCOPE_SYNTAX
            };
            let keep = |ns: &[String]| -> Vec<String> {
                ns.iter()
                    .filter(|n| topo.find(n).is_some())
                    .cloned()
                    .collect()
            };
            let (from, to) = (keep(&direct.from), keep(&direct.to));
            if from.is_empty() || to.is_empty() {
                return Err(ScopeResolutionError {
                    message: format!(
                        "no flow path exists through the scope of `{}` (all {} endpoints failed)",
                        spec.algorithm,
                        if from.is_empty() { "ingress" } else { "egress" },
                    ),
                    code: codes::SCOPE_NO_PATH,
                    span: Some(spec.span),
                });
            }
            let mut narrowed = spec.clone();
            narrowed.direct = Some(lyra_lang::Direction { from, to });
            resolve_scope(topo, &narrowed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::figure1_network;
    use crate::FaultSet;
    use lyra_lang::parse_scopes;

    #[test]
    fn figure7_scopes_resolve() {
        let topo = figure1_network();
        let scopes = parse_scopes(
            r#"
            int_in: [ ToR* | PER-SW | - ]
            int_transit: [ Agg* | PER-SW | - ]
            int_out: [ ToR* | PER-SW | - ]
            loadbalancer: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]
            "#,
        )
        .unwrap();
        let int_in = resolve_scope(&topo, &scopes[0]).unwrap();
        assert_eq!(int_in.switches.len(), 4);
        assert_eq!(int_in.paths.len(), 4); // one per ToR

        let lb = resolve_scope(&topo, &scopes[3]).unwrap();
        assert_eq!(lb.switches.len(), 4);
        assert_eq!(lb.paths.len(), 4); // the paper's four Agg→ToR paths
    }

    #[test]
    fn empty_region_is_error() {
        let topo = figure1_network();
        let scopes = parse_scopes("x: [ Spine* | PER-SW | - ]").unwrap();
        assert!(resolve_scope(&topo, &scopes[0]).is_err());
    }

    #[test]
    fn direction_outside_region_is_error() {
        let topo = figure1_network();
        let scopes = parse_scopes("lb: [ Agg3,ToR3 | MULTI-SW | (Agg3->ToR4) ]").unwrap();
        let err = resolve_scope(&topo, &scopes[0]).unwrap_err();
        assert!(err.message.contains("outside the scope region"));
    }

    #[test]
    fn unknown_direction_switch_is_error() {
        let topo = figure1_network();
        let scopes = parse_scopes("lb: [ Agg* | MULTI-SW | (Agg3->Banana) ]").unwrap();
        assert!(resolve_scope(&topo, &scopes[0]).is_err());
    }

    #[test]
    fn disconnected_direction_is_error() {
        let topo = figure1_network();
        // Agg1 and ToR3 are in different pods; with only those two switches
        // allowed there is no path.
        let scopes = parse_scopes("lb: [ Agg1,ToR3 | MULTI-SW | (Agg1->ToR3) ]").unwrap();
        let err = resolve_scope(&topo, &scopes[0]).unwrap_err();
        assert!(err.message.contains("no flow path"));
    }

    #[test]
    fn degraded_resolution_drops_dead_direction_endpoints() {
        let topo = figure1_network();
        let degraded = topo.degrade(&FaultSet::new().with_switch("Agg3")).topology;
        let scopes =
            parse_scopes("lb: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
                .unwrap();
        // Strict resolution rejects the now-unknown `Agg3` endpoint…
        let err = resolve_scope(&degraded, &scopes[0]).unwrap_err();
        assert_eq!(err.code, codes::SCOPE_UNKNOWN_SWITCH);
        // …while the degraded entry point narrows the direction and succeeds.
        let resolved = resolve_scope_degraded(&degraded, &scopes[0]).unwrap();
        assert_eq!(resolved.switches.len(), 3);
        assert_eq!(resolved.paths.len(), 2); // Agg4→ToR3, Agg4→ToR4
    }

    #[test]
    fn degraded_resolution_fails_when_all_ingress_dead() {
        let topo = figure1_network();
        let degraded = topo
            .degrade(&FaultSet::new().with_switch("Agg3").with_switch("Agg4"))
            .topology;
        let scopes =
            parse_scopes("lb: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
                .unwrap();
        let err = resolve_scope_degraded(&degraded, &scopes[0]).unwrap_err();
        assert_eq!(err.code, codes::SCOPE_NO_PATH);
        assert!(err.message.contains("ingress"));
    }

    #[test]
    fn degraded_resolution_matches_strict_on_healthy_topology() {
        let topo = figure1_network();
        let scopes =
            parse_scopes("lb: [ ToR3,ToR4,Agg3,Agg4 | MULTI-SW | (Agg3,Agg4->ToR3,ToR4) ]")
                .unwrap();
        assert_eq!(
            resolve_scope(&topo, &scopes[0]).unwrap(),
            resolve_scope_degraded(&topo, &scopes[0]).unwrap()
        );
    }
}
