//! Topology generators: the paper's Figure 1 network, the §7 evaluation
//! testbed, and fat-tree pods for the Figure 10 scalability study.

use crate::{Layer, SwitchId, Topology};

/// The Figure 1 motivating-example network: two pods behind a core layer.
///
/// * Pod 1: `ToR1` (Tofino-032Q), `ToR2` (Tofino-064Q), `Agg1`/`Agg2`
///   (Trident-4);
/// * Pod 2: `ToR3`/`ToR4` (Silicon One), `Agg3`/`Agg4` (Trident-4);
/// * Core: `Core1`/`Core2` (Tomahawk, fixed-function).
pub fn figure1_network() -> Topology {
    let mut t = Topology::new();
    let tor1 = t.add_switch("ToR1", Layer::ToR, "tofino-32q");
    let tor2 = t.add_switch("ToR2", Layer::ToR, "tofino-64q");
    let tor3 = t.add_switch("ToR3", Layer::ToR, "silicon-one");
    let tor4 = t.add_switch("ToR4", Layer::ToR, "silicon-one");
    let agg1 = t.add_switch("Agg1", Layer::Agg, "trident4");
    let agg2 = t.add_switch("Agg2", Layer::Agg, "trident4");
    let agg3 = t.add_switch("Agg3", Layer::Agg, "trident4");
    let agg4 = t.add_switch("Agg4", Layer::Agg, "trident4");
    let core1 = t.add_switch("Core1", Layer::Core, "tomahawk");
    let core2 = t.add_switch("Core2", Layer::Core, "tomahawk");
    // Pod 1 full bipartite ToR×Agg.
    for tor in [tor1, tor2] {
        for agg in [agg1, agg2] {
            t.add_link(tor, agg);
        }
    }
    // Pod 2.
    for tor in [tor3, tor4] {
        for agg in [agg3, agg4] {
            t.add_link(tor, agg);
        }
    }
    // Aggs to cores.
    for agg in [agg1, agg2, agg3, agg4] {
        for core in [core1, core2] {
            t.add_link(agg, core);
        }
    }
    t
}

/// The §7 evaluation testbed: "a fat-tree data-center testbed consisting of
/// eight servers and ten programmable switches: four ToR switches (Tofino),
/// four Agg switches (Trident-4), and two Core switches (Tofino)".
pub fn evaluation_testbed() -> Topology {
    let mut t = Topology::new();
    let tors: Vec<SwitchId> = (1..=4)
        .map(|i| t.add_switch(format!("ToR{i}"), Layer::ToR, "tofino-32q"))
        .collect();
    let aggs: Vec<SwitchId> = (1..=4)
        .map(|i| t.add_switch(format!("Agg{i}"), Layer::Agg, "trident4"))
        .collect();
    let cores: Vec<SwitchId> = (1..=2)
        .map(|i| t.add_switch(format!("Core{i}"), Layer::Core, "tofino-32q"))
        .collect();
    // Two pods of 2 ToR × 2 Agg.
    for pod in 0..2 {
        for &tor in &tors[pod * 2..pod * 2 + 2] {
            for &agg in &aggs[pod * 2..pod * 2 + 2] {
                t.add_link(tor, agg);
            }
        }
    }
    for &agg in &aggs {
        for &core in &cores {
            t.add_link(agg, core);
        }
    }
    t
}

/// One pod of a k-ary fat tree with a configurable ASIC assignment, as used
/// in the Figure 10 scalability study: `k/2` aggregation switches and `k/2`
/// ToR switches, fully bipartite. The paper varies k from 4 to 32, "where k
/// is the number of ports per switch and also equals the total number of
/// switches deployed".
pub fn fat_tree_pod(k: usize, tor_asic: &str, agg_asic: &str) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree pod requires even k >= 2, got {k}"
    );
    let mut t = Topology::new();
    let aggs: Vec<SwitchId> = (1..=k / 2)
        .map(|i| t.add_switch(format!("Agg{i}"), Layer::Agg, agg_asic))
        .collect();
    let tors: Vec<SwitchId> = (1..=k / 2)
        .map(|i| t.add_switch(format!("ToR{i}"), Layer::ToR, tor_asic))
        .collect();
    for &agg in &aggs {
        for &tor in &tors {
            t.add_link(agg, tor);
        }
    }
    t
}

/// A full k-ary fat tree (k pods plus a core layer) — used by examples and
/// extension tests beyond the paper's pod-level experiment.
pub fn fat_tree(k: usize, tor_asic: &str, agg_asic: &str, core_asic: &str) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree requires even k >= 2, got {k}"
    );
    let mut t = Topology::new();
    let num_core = (k / 2) * (k / 2);
    let cores: Vec<SwitchId> = (1..=num_core)
        .map(|i| t.add_switch(format!("Core{i}"), Layer::Core, core_asic))
        .collect();
    for pod in 1..=k {
        let aggs: Vec<SwitchId> = (1..=k / 2)
            .map(|i| t.add_switch(format!("P{pod}Agg{i}"), Layer::Agg, agg_asic))
            .collect();
        let tors: Vec<SwitchId> = (1..=k / 2)
            .map(|i| t.add_switch(format!("P{pod}ToR{i}"), Layer::ToR, tor_asic))
            .collect();
        for &agg in &aggs {
            for &tor in &tors {
                t.add_link(agg, tor);
            }
        }
        // Each agg connects to k/2 cores (the standard fat-tree wiring).
        for (ai, &agg) in aggs.iter().enumerate() {
            for j in 0..k / 2 {
                t.add_link(agg, cores[ai * (k / 2) + j]);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let t = figure1_network();
        assert_eq!(t.len(), 10);
        assert_eq!(t.links.len(), 4 + 4 + 8);
        assert_eq!(t.switch(t.find("ToR1").unwrap()).asic, "tofino-32q");
        assert_eq!(t.switch(t.find("ToR3").unwrap()).asic, "silicon-one");
        assert_eq!(t.switch(t.find("Agg3").unwrap()).asic, "trident4");
        assert_eq!(t.switch(t.find("Core1").unwrap()).asic, "tomahawk");
    }

    #[test]
    fn testbed_shape() {
        let t = evaluation_testbed();
        assert_eq!(t.len(), 10);
        let tofinos = t.switches.iter().filter(|s| s.asic == "tofino-32q").count();
        assert_eq!(tofinos, 6); // 4 ToR + 2 Core
    }

    #[test]
    fn pod_shape() {
        for k in [4usize, 8, 16, 32] {
            let t = fat_tree_pod(k, "tofino-32q", "trident4");
            assert_eq!(t.len(), k);
            assert_eq!(t.links.len(), (k / 2) * (k / 2));
        }
    }

    #[test]
    #[should_panic]
    fn odd_k_rejected() {
        fat_tree_pod(5, "a", "b");
    }

    #[test]
    fn full_fat_tree_counts() {
        let k = 4;
        let t = fat_tree(k, "tofino-32q", "trident4", "tomahawk");
        // k pods × k switches + (k/2)^2 cores
        assert_eq!(t.len(), k * k + (k / 2) * (k / 2));
    }
}
